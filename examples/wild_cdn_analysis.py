"""Section 3 end to end: how much queueing do real flows see?

Generates the synthetic CDN sRTT dataset (calibrated to the aggregates
the paper reports for its 430M-connection corpus), runs the max-minus-
min queueing-delay estimation and prints Figure 1's panels as ASCII
along with the headline statistics.

Run:  python examples/wild_cdn_analysis.py
"""

from repro.wild import analyze, generate_dataset
from repro.wild.analysis import render_fig1


def main(n_flows=200_000, seed=7):
    """Generate ``n_flows`` synthetic flows, analyze and render Fig. 1."""
    dataset = generate_dataset(n_flows=n_flows, seed=seed)
    analysis = analyze(dataset)
    print(render_fig1(analysis))
    print()
    print("Conclusion (as in the paper): excessive queueing delays do occur,")
    print("but only for a small fraction of flows and hosts -- the magnitude")
    print("of bufferbloat in the wild is modest.")


if __name__ == "__main__":
    main()
