"""Figure 7b in miniature: VoIP QoE vs uplink buffer size.

Sweeps the access testbed's buffer sizes under upload congestion and
prints the two heatmap halves ("user talks" / "user listens"), showing
the paper's key asymmetry: the uplink queue delays *both* directions of
the conversation through the delay impairment z2.

Run:  python examples/bufferbloat_voip.py
"""

from repro.core.voip_study import fig7_grid, render_fig7

BUFFERS = (8, 32, 64, 256)
WORKLOADS = ("noBG", "long-few", "long-many")

results = fig7_grid("up", BUFFERS, workloads=WORKLOADS, calls=1,
                    warmup=10.0, duration=6.0, seed=3)
print(render_fig7(results, "up", BUFFERS, workloads=WORKLOADS))
print()
print("Markers: + fine   o degraded   ! bad (Figure 6a bands)")
print("Compare with the paper's Figure 7b: talks collapses to ~1.0 at")
print(">= 64 packets; listens loses 1.5-2 MOS points from delay alone.")
