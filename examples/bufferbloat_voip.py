"""Figure 7b in miniature: VoIP QoE vs uplink buffer size.

Sweeps the access testbed's buffer sizes under upload congestion and
prints the two heatmap halves ("user talks" / "user listens"), showing
the paper's key asymmetry: the uplink queue delays *both* directions of
the conversation through the delay impairment z2.

The grid runs through the stable ``repro.api`` facade (parallel cached
runner underneath); the full registered version of this sweep is
``python -m repro run fig7b``.

Run:  python examples/bufferbloat_voip.py
"""

from repro import api
from repro.core.registry import access, adhoc_sweep
from repro.core.voip_study import render_fig7


def main(buffers=(8, 32, 64, 256), workloads=("noBG", "long-few", "long-many"),
         warmup=10.0, duration=6.0, runner=None):
    """Render the miniature Figure 7b; times in simulated seconds."""
    spec = adhoc_sweep(
        "example-fig7b", "voip",
        scenarios=[access(w, "up") for w in workloads],
        buffers=buffers, seed=3, warmup=warmup, duration=duration,
        params=(("calls", 1), ("directions", ("talks", "listens"))))
    results = api.run_sweep(spec, scale=1.0, runner=runner)
    print(render_fig7(results.to_mapping(), "up", buffers,
                      workloads=workloads))
    print()
    print("Markers: + fine   o degraded   ! bad (Figure 6a bands)")
    print("Compare with the paper's Figure 7b: talks collapses to ~1.0 at")
    print(">= 64 packets; listens loses 1.5-2 MOS points from delay alone.")


if __name__ == "__main__":
    main()
