"""Quickstart: one VoIP call through a congested DSL uplink.

Reproduces the paper's headline bufferbloat case in ~20 lines: a G.711
call crossing a home-router uplink that eight long-lived TCP uploads
keep full, once with a sanely-sized buffer and once with a bloated one.

Run:  python examples/quickstart.py
"""

from repro.core.scenarios import access_scenario
from repro.core.voip_study import median_mos, run_voip_cell
from repro.qoe.scales import voip_mos_class


def main(buffers=(8, 256), warmup=10.0, duration=6.0):
    """Score one call per uplink buffer size (packets); times in seconds."""
    scenario = access_scenario("long-many", "up")  # 8 uploading long flows

    for packets in buffers:
        scores = run_voip_cell(scenario, packets, calls=1, warmup=warmup,
                               duration=duration, seed=1)
        talks = median_mos(scores["talks"])
        listens = median_mos(scores["listens"])
        sample = scores["talks"][0]
        print("uplink buffer %3d pkts: user talks MOS %.1f (%s), "
              "listens MOS %.1f | m2e delay %.0f ms, frame loss %.0f%%"
              % (packets, talks, voip_mos_class(talks), listens,
                 sample.mouth_to_ear_delay * 1000,
                 sample.effective_loss * 100))

    print()
    print("The workload, not the buffer, ruins the call -- but the bloated")
    print("buffer turns 'bad' into 'unusable' by adding seconds of delay.")


if __name__ == "__main__":
    main()
