"""Figure 8 + 11 in miniature: one backbone sweep, two applications.

Runs the OC-3 backbone testbed from idle to a sustained long-flow
workload across three buffer schemes (tiny / BDP / 10x BDP) and scores
both a VoIP call and a web page fetch per cell — the paper's
demonstration that the *workload row*, not the *buffer column*, decides
the user experience.

Run:  python examples/backbone_sweep.py   (takes a couple of minutes)
"""

from repro import api
from repro.core.registry import adhoc_sweep, backbone


def main(workloads=("noBG", "short-medium", "long"),
         buffers=(8, 749, 7490),  # ~TinyBuf / BDP / 10x BDP
         warmup=10.0, voip_duration=5.0, fetches=3):
    """Score VoIP and web per (workload, buffer); times in seconds."""
    scenarios = [backbone(w) for w in workloads]
    voip = api.run_sweep(adhoc_sweep(
        "example-backbone-voip", "voip", scenarios=scenarios,
        buffers=buffers, seed=3, warmup=warmup, duration=voip_duration,
        params=(("calls", 1), ("directions", ("listens",)))), scale=1.0)
    web = api.run_sweep(adhoc_sweep(
        "example-backbone-web", "web", scenarios=scenarios,
        buffers=buffers, seed=5, warmup=warmup,
        params=(("fetches", fetches),)), scale=1.0)

    print("%-14s %-6s %-10s %-12s" % ("workload", "buf", "VoIP MOS",
                                      "web PLT"))
    for workload in workloads:
        for packets in buffers:
            call = voip[(workload, packets)]
            page = web[(workload, packets)]
            print("%-14s %-6d %-10.1f %6.2f s (MOS %.1f)"
                  % (workload, packets, call.mos("listens"),
                     page.median_plt, page.mos))
        print()


if __name__ == "__main__":
    main()
