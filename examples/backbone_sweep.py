"""Figure 8 + 11 in miniature: one backbone sweep, two applications.

Runs the OC-3 backbone testbed from idle to a sustained long-flow
workload across three buffer schemes (tiny / BDP / 10x BDP) and scores
both a VoIP call and a web page fetch per cell — the paper's
demonstration that the *workload row*, not the *buffer column*, decides
the user experience.

Run:  python examples/backbone_sweep.py   (takes a couple of minutes)
"""

from repro.core.scenarios import backbone_scenario
from repro.core.voip_study import median_mos, run_voip_cell
from repro.core.web_study import run_web_cell


def main(workloads=("noBG", "short-medium", "long"),
         buffers=(8, 749, 7490),  # ~TinyBuf / BDP / 10x BDP
         warmup=10.0, voip_duration=5.0, fetches=3):
    """Score VoIP and web per (workload, buffer); times in seconds."""
    print("%-14s %-6s %-10s %-12s" % ("workload", "buf", "VoIP MOS",
                                      "web PLT"))
    for workload in workloads:
        scenario = backbone_scenario(workload)
        for packets in buffers:
            voip = run_voip_cell(scenario, packets, calls=1, warmup=warmup,
                                 duration=voip_duration, seed=3,
                                 directions=("listens",))
            web = run_web_cell(scenario, packets, fetches=fetches,
                               warmup=warmup, seed=5)
            print("%-14s %-6d %-10.1f %6.2f s (MOS %.1f)"
                  % (workload, packets, median_mos(voip["listens"]),
                     web["median_plt"], web["mos"]))
        print()


if __name__ == "__main__":
    main()
