"""Figure 9 in miniature: IPTV video quality is binary in the workload.

Streams the "movie" clip (SD and HD) through the access downlink under
increasing congestion and prints SSIM + MOS per cell.  The buffer size
column barely matters; available bandwidth decides everything — and HD
survives loss slightly better than SD, as the paper observes.

Run:  python examples/iptv_video.py
"""

from repro.core.scenarios import access_scenario
from repro.core.video_study import run_video_cell

print("%-12s %-4s %-6s %-6s %-6s %-9s" %
      ("workload", "res", "buf", "SSIM", "MOS", "pkt loss"))
for workload in ("noBG", "short-few", "long-few", "long-many"):
    scenario = access_scenario(workload, "down")
    for resolution in ("SD", "HD"):
        for packets in (8, 256):
            cell = run_video_cell(scenario, packets, resolution=resolution,
                                  duration=6.0, warmup=6.0, seed=4)
            print("%-12s %-4s %-6d %-6.2f %-6.1f %-9.3f" %
                  (workload, resolution, packets, cell["ssim"],
                   cell["mos"], cell["packet_loss"]))
