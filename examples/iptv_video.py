"""Figure 9 in miniature: IPTV video quality is binary in the workload.

Streams the "movie" clip (SD and HD) through the access downlink under
increasing congestion and prints SSIM + MOS per cell.  The buffer size
column barely matters; available bandwidth decides everything — and HD
survives loss slightly better than SD, as the paper observes.

Run:  python examples/iptv_video.py
"""

from repro import api
from repro.core.registry import access, adhoc_sweep


def main(workloads=("noBG", "short-few", "long-few", "long-many"),
         resolutions=("SD", "HD"), buffers=(8, 256), duration=6.0,
         warmup=6.0):
    """Print one SSIM/MOS row per cell; times in simulated seconds."""
    spec = adhoc_sweep(
        "example-iptv", "video",
        scenarios=[access(w, "down") for w in workloads],
        buffers=buffers, seed=4, warmup=warmup, duration=duration,
        params=(("clip", "C"),),
        axes=(("resolution", tuple(resolutions)),))
    results = api.run_sweep(spec, scale=1.0)

    print("%-12s %-4s %-6s %-6s %-6s %-9s" %
          ("workload", "res", "buf", "SSIM", "MOS", "pkt loss"))
    for workload in workloads:
        for resolution in resolutions:
            for packets in buffers:
                cell = results[(workload, packets, resolution)]
                print("%-12s %-4s %-6d %-6.2f %-6.1f %-9.3f" %
                      (workload, resolution, packets, cell.ssim,
                       cell.mos, cell.packet_loss))


if __name__ == "__main__":
    main()
