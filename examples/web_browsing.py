"""Figure 10 in miniature: WebQoE's two-sided buffer story.

Fetches the paper's 80 KB page through the access testbed and shows
both regimes: under *moderate* load, larger buffers absorb bursts and
help; under *heavy* load (or upload congestion) they inflate the RTT
and PLT becomes delay-dominated, so smaller buffers win — yet the MOS
often doesn't care, because 5 s and 9 s are both "bad".

Run:  python examples/web_browsing.py
"""

from repro.core.scenarios import access_scenario
from repro.core.web_study import run_web_cell
from repro.qoe.scales import mos_class

CASES = (
    ("short-few", "down", "moderate download load"),
    ("long-many", "down", "heavy download load"),
    ("long-few", "up", "upload congestion (bufferbloat)"),
)


def main(cases=CASES, buffers=(8, 64, 256), fetches=5, warmup=8.0):
    """Print PLT/MOS per (case, buffer); warmup in simulated seconds."""
    for workload, activity, label in cases:
        scenario = access_scenario(workload, activity)
        print("%s — %s" % (scenario, label))
        for packets in buffers:
            cell = run_web_cell(scenario, packets, fetches=fetches,
                                warmup=warmup, seed=5)
            print("  buffer %3d pkts: median PLT %5.2f s -> MOS %.1f (%s)"
                  % (packets, cell["median_plt"], cell["mos"],
                     mos_class(cell["mos"])))
        print()


if __name__ == "__main__":
    main()
