"""Figure 10 in miniature: WebQoE's two-sided buffer story.

Fetches the paper's 80 KB page through the access testbed and shows
both regimes: under *moderate* load, larger buffers absorb bursts and
help; under *heavy* load (or upload congestion) they inflate the RTT
and PLT becomes delay-dominated, so smaller buffers win — yet the MOS
often doesn't care, because 5 s and 9 s are both "bad".

Run:  python examples/web_browsing.py
"""

from repro import api
from repro.core.registry import access, adhoc_sweep
from repro.qoe.scales import mos_class

CASES = (
    ("short-few", "down", "moderate download load"),
    ("long-many", "down", "heavy download load"),
    ("long-few", "up", "upload congestion (bufferbloat)"),
)


def main(cases=CASES, buffers=(8, 64, 256), fetches=5, warmup=8.0):
    """Print PLT/MOS per (case, buffer); warmup in simulated seconds."""
    for workload, activity, label in cases:
        spec = adhoc_sweep(
            "example-web-%s-%s" % (workload, activity), "web",
            scenarios=[access(workload, activity)], buffers=buffers,
            seed=5, warmup=warmup, params=(("fetches", fetches),))
        results = api.run_sweep(spec, scale=1.0)
        print("%s — %s" % (results[0].scenario, label))
        for record in results:
            print("  buffer %3d pkts: median PLT %5.2f s -> MOS %.1f (%s)"
                  % (record.buffer_packets, record.median_plt, record.mos,
                     mos_class(record.mos)))
        print()


if __name__ == "__main__":
    main()
