"""Integration tests: AQM disciplines under real TCP load."""

import numpy as np

from repro.sim import Simulator
from repro.sim.queues import CoDelQueue, DropTailQueue, REDQueue
from repro.sim.topology import AccessNetwork
from repro.tcp import Cubic, TcpConnection, TcpListener


def _run_upload(queue_factory, seconds=15):
    """One long CUBIC upload through a 256-packet uplink buffer."""
    sim = Simulator()
    net = AccessNetwork(sim, down_buffer_packets=64, up_buffer_packets=256,
                        queue_factory=queue_factory)
    TcpListener(sim, net.media_server, 81)
    client = TcpConnection(sim, net.media_client,
                           peer_addr=net.media_server.addr, peer_port=81,
                           cc=Cubic())
    client.on_established = lambda c: c.send_forever()
    client.connect()
    sim.run(until=5)
    net.reset_measurements()
    sim.run(until=5 + seconds)
    return net


def test_droptail_builds_standing_queue():
    net = _run_upload(lambda p: DropTailQueue(capacity_packets=p))
    assert net.up_bottleneck.queue.stats.mean_delay > 0.4


def test_codel_bounds_standing_queue():
    net = _run_upload(lambda p: CoDelQueue(capacity_packets=p))
    # CoDel's whole point: sojourn times near its 5 ms target, orders of
    # magnitude below the drop-tail standing queue.
    assert net.up_bottleneck.queue.stats.mean_delay < 0.15
    # ... while keeping the link well utilized.
    assert net.up_bottleneck.utilization() > 0.7


def test_red_sits_between():
    droptail = _run_upload(lambda p: DropTailQueue(capacity_packets=p))
    red = _run_upload(lambda p: REDQueue(capacity_packets=p,
                                         rng=np.random.default_rng(1)))
    assert (red.up_bottleneck.queue.stats.mean_delay
            < droptail.up_bottleneck.queue.stats.mean_delay)


def test_aqm_drops_recorded():
    net = _run_upload(lambda p: CoDelQueue(capacity_packets=p), seconds=8)
    assert net.up_bottleneck.queue.stats.dropped > 0
