"""Tests for the core study layer: catalogs, cells, wild, adaptive, viz."""

import numpy as np
import pytest

from repro.core.adaptive import LoadAdaptiveBuffer
from repro.core.buffers import (
    ACCESS_BUFFERS,
    BACKBONE_BUFFERS,
    BufferConfig,
    bdp_packets,
    max_queueing_delay,
    stanford_packets,
)
from repro.core.experiment import build_network, run_qos_cell
from repro.core.scenarios import (
    ACCESS_SCENARIOS,
    BACKBONE_SCENARIOS,
    access_scenario,
    backbone_scenario,
)
from repro.core import paper_data
from repro.sim import Simulator
from repro.sim.topology import AccessNetwork, BackboneNetwork
from repro.util.units import MBPS
from repro.viz.heatmap import render_grid, render_table
from repro.wild import analyze, generate_dataset
from repro.wild.dataset import AccessTech, to_records


class TestBufferCatalog:
    def test_bdp_matches_paper_access(self):
        # ~8 packets uplink, ~64 packets downlink at 50 ms RTT.
        assert bdp_packets(1 * MBPS, 0.100) in (8, 9)
        assert abs(bdp_packets(16 * MBPS, 0.050) - 64) <= 3

    def test_bdp_matches_paper_backbone(self):
        assert abs(bdp_packets(BackboneNetwork.RATE, 0.060) - 749) <= 1

    def test_stanford_rule(self):
        bdp = bdp_packets(BackboneNetwork.RATE, 0.060)
        stanford = stanford_packets(BackboneNetwork.RATE, 0.060, 768)
        assert stanford == pytest.approx(bdp / np.sqrt(768), abs=2)
        assert 25 <= stanford <= 30  # the paper uses 28

    def test_stanford_requires_flows(self):
        with pytest.raises(ValueError):
            stanford_packets(BackboneNetwork.RATE, 0.060, 0)

    def test_catalog_sizes(self):
        assert [b.packets for b in ACCESS_BUFFERS] == [8, 16, 32, 64, 128, 256]
        assert [b.packets for b in BACKBONE_BUFFERS] == [8, 28, 749, 7490]

    def test_delay_formula(self):
        assert max_queueing_delay(8, 1 * MBPS) == pytest.approx(0.096)
        config = BufferConfig(64, "~BDP")
        assert config.delay_at(16 * MBPS) == pytest.approx(0.048)
        assert "BDP" in str(config)


class TestScenarioCatalog:
    def test_access_catalog_complete(self):
        # noBG + 4 workloads x 3 directions.
        assert len(ACCESS_SCENARIOS) == 13

    def test_backbone_catalog_complete(self):
        assert len(BACKBONE_SCENARIOS) == 6

    def test_direction_filtering(self):
        down = access_scenario("short-few", "down")
        assert down.down_sessions == 8
        assert down.up_sessions == 0
        up = access_scenario("short-few", "up")
        assert up.down_sessions == 0
        assert up.up_sessions == 1
        bidir = access_scenario("long-many", "bidir")
        assert bidir.up_flows == 8
        assert bidir.down_flows == 64

    def test_backbone_session_counts(self):
        assert backbone_scenario("short-overload").down_sessions == 768
        assert backbone_scenario("long").down_flows == 768

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError):
            access_scenario("mystery")
        with pytest.raises(ValueError):
            backbone_scenario("mystery")
        with pytest.raises(ValueError):
            access_scenario("short-few", "diagonal")

    def test_cc_defaults(self):
        assert access_scenario("short-few").cc == "cubic"
        assert backbone_scenario("short-low").cc == "reno"


class TestExperimentCell:
    def test_nobg_cell_is_idle(self):
        report = run_qos_cell(access_scenario("noBG"), 64, warmup=1,
                              duration=3)
        assert report.down_utilization == 0.0
        assert report.down_loss == 0.0

    def test_per_direction_buffers(self):
        sim, network = build_network(access_scenario("noBG"), (64, 8))
        assert network.down_bottleneck.queue.capacity_packets == 64
        assert network.up_bottleneck.queue.capacity_packets == 8

    def test_loaded_cell_reports_everything(self):
        report = run_qos_cell(access_scenario("long-few", "down"), 64,
                              warmup=3, duration=6)
        assert report.down_utilization > 0.5
        assert len(report.down_utilization_samples) >= 5
        box = report.down_utilization_boxplot()
        assert box[0] <= box[2] <= box[4]

    def test_unknown_testbed_rejected(self):
        from repro.core.scenarios import Scenario

        bad = Scenario(name="x", testbed="space", direction="down",
                       kind="short")
        with pytest.raises(ValueError):
            build_network(bad, 64)


class TestWild:
    @pytest.fixture(scope="class")
    def analysis(self):
        return analyze(generate_dataset(60_000, seed=7))

    def test_headline_statistics(self, analysis):
        stats = analysis.stats
        assert stats["qd_below_100ms"] > 0.7
        assert 0.01 < stats["qd_above_500ms"] < 0.05
        assert stats["qd_above_1s"] < stats["qd_above_500ms"]
        assert stats["near_qd_below_100ms"] >= stats["qd_below_100ms"]

    def test_filter_applied(self, analysis):
        assert analysis.n_filtered < analysis.n_total

    def test_tech_ordering(self, analysis):
        # FTTH queues less than ADSL: compare PDF mass above 100 ms.
        def tail(tech):
            centers, density = analysis.qd_pdfs[tech]
            return float(density[centers > 2.0].sum())

        assert tail("ftth") < tail("adsl")

    def test_records_consistent(self):
        dataset = generate_dataset(200, seed=1)
        records = to_records(dataset)
        assert len(records) == 200
        for record in records[:20]:
            assert record.min_srtt <= record.avg_srtt <= record.max_srtt
            assert record.estimated_queueing_delay >= 0
            assert isinstance(record.tech, AccessTech)

    def test_mix_fractions(self):
        dataset = generate_dataset(50_000, seed=2)
        adsl = np.mean(dataset["tech"] == "adsl")
        assert adsl == pytest.approx(0.70, abs=0.02)


class TestAdaptiveBuffer:
    def test_shrinks_under_load(self):
        from repro.apps.bulk import BulkTraffic

        sim = Simulator()
        net = AccessNetwork(sim, down_buffer_packets=256)
        controller = LoadAdaptiveBuffer(sim, net.down_bottleneck, 16, 256,
                                        interval=0.5).start()
        bulk = BulkTraffic(sim, net.traffic_servers(), net.traffic_clients(),
                           count=8, direction="down")
        bulk.start()
        sim.run(until=10)
        assert controller.current_packets == 16
        assert controller.switches >= 1
        bulk.stop()
        controller.stop()

    def test_grows_when_idle(self):
        sim = Simulator()
        net = AccessNetwork(sim, down_buffer_packets=16)
        controller = LoadAdaptiveBuffer(sim, net.down_bottleneck, 16, 256,
                                        interval=0.5).start()
        sim.run(until=3)
        assert controller.current_packets == 256
        controller.stop()

    def test_invalid_sizes(self):
        sim = Simulator()
        net = AccessNetwork(sim)
        with pytest.raises(ValueError):
            LoadAdaptiveBuffer(sim, net.down_bottleneck, 256, 16)


class TestViz:
    def test_render_grid(self):
        out = render_grid("T", ["r1", "r2"], [8, 64],
                          lambda r, c: "%s-%d" % (r, c))
        assert "T" in out
        assert "r1-8" in out
        assert "r2-64" in out

    def test_render_grid_empty_cells(self):
        out = render_grid("T", ["r"], [1], lambda r, c: None)
        assert "T" in out

    def test_render_table(self):
        out = render_table("T", ("a", "bb"), [(1, 2), (3, 4)])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]


class TestPaperData:
    def test_grids_complete(self):
        for table, cols in ((paper_data.FIG7B_TALKS, 6),
                            (paper_data.FIG9A_SD, 6),
                            (paper_data.FIG10A, 6),
                            (paper_data.FIG8, 4),
                            (paper_data.FIG11, 4)):
            rows = {k[0] for k in table}
            sizes = {k[1] for k in table}
            assert len(sizes) == cols
            assert len(table) == len(rows) * cols

    def test_known_anchor_values(self):
        assert paper_data.FIG8[("short-overload", 8)] == 1.5
        assert paper_data.FIG7B_TALKS[("long-many", 256)] == 1.0
        assert paper_data.FIG10B[("long-few", 256)] == 20.5
        assert paper_data.FIG9A_SD[("noBG", 8)] == 1
