"""Tests for the traffic generators (Harpoon and bulk flows)."""

import numpy as np
import pytest

from repro.apps.bulk import BulkTraffic
from repro.apps.harpoon import (
    HarpoonGenerator,
    weibull_file_sizer,
    weibull_mean,
)
from repro.sim import Simulator
from repro.sim.topology import AccessNetwork


class TestFileSizes:
    def test_weibull_mean_matches_paper(self):
        # The paper quotes a mean flow size of ~50 KB.
        assert weibull_mean() == pytest.approx(50_000, rel=0.05)

    def test_sampler_statistics(self):
        rng = np.random.default_rng(0)
        sampler = weibull_file_sizer(rng)
        samples = [sampler() for __ in range(20_000)]
        assert np.mean(samples) == pytest.approx(weibull_mean(), rel=0.15)
        assert min(samples) >= 1

    def test_heavy_tail(self):
        rng = np.random.default_rng(1)
        sampler = weibull_file_sizer(rng)
        samples = [sampler() for __ in range(20_000)]
        # Median far below mean: the hallmark of the shape-0.35 Weibull.
        assert np.median(samples) < 0.2 * np.mean(samples)


class TestHarpoon:
    def _run(self, direction, sessions=4, seconds=20, **kwargs):
        sim = Simulator()
        net = AccessNetwork(sim)
        generator = HarpoonGenerator(
            sim, net.traffic_servers(), net.traffic_clients(),
            sessions=sessions, direction=direction, interarrival_mean=0.5,
            rng=np.random.default_rng(2), **kwargs)
        generator.start()
        sim.run(until=seconds)
        return sim, net, generator

    def test_download_transfers_complete(self):
        __, __, generator = self._run("down")
        assert generator.stats.completed > 10
        assert generator.stats.bytes_completed > 0
        assert generator.stats.failed == 0

    def test_upload_transfers_complete(self):
        __, __, generator = self._run("up")
        assert generator.stats.completed > 5

    def test_fcts_recorded(self):
        __, __, generator = self._run("down")
        fcts = generator.stats.flow_completion_times
        assert len(fcts) == generator.stats.completed
        assert all(fct > 0 for fct in fcts)

    def test_session_cap_limits_pileup(self):
        # Saturating the 1 Mbit/s uplink with one session: the cap bounds
        # the number of simultaneously active transfers.
        sim = Simulator()
        net = AccessNetwork(sim)
        generator = HarpoonGenerator(
            sim, net.traffic_servers(), net.traffic_clients(), sessions=1,
            direction="up", interarrival_mean=0.05, session_cap=5,
            rng=np.random.default_rng(3))
        generator.start()
        sim.run(until=30)
        assert generator.stats.active <= 5
        assert generator.stats.skipped > 0

    def test_stop_aborts_everything(self):
        sim, net, generator = self._run("down", seconds=5)
        generator.stop()
        sim.run(until=10)
        active_conns = sum(len(h.tcp_connections) for h in net.clients)
        assert active_conns == 0

    def test_concurrency_sampling(self):
        __, __, generator = self._run("down")
        assert len(generator.stats.active_samples) > 10
        assert generator.stats.mean_concurrent_flows >= 0

    def test_invalid_direction(self):
        sim = Simulator()
        net = AccessNetwork(sim)
        with pytest.raises(ValueError):
            HarpoonGenerator(sim, net.servers, net.clients, 1,
                             direction="sideways")

    def test_double_start_rejected(self):
        sim = Simulator()
        net = AccessNetwork(sim)
        generator = HarpoonGenerator(sim, net.traffic_servers(),
                                     net.traffic_clients(), 1)
        generator.start()
        with pytest.raises(RuntimeError):
            generator.start()


class TestBulk:
    def test_download_flows_saturate(self):
        sim = Simulator()
        net = AccessNetwork(sim)
        bulk = BulkTraffic(sim, net.traffic_servers(), net.traffic_clients(),
                           count=4, direction="down")
        bulk.start()
        sim.run(until=5)
        net.reset_measurements()
        sim.run(until=15)
        assert net.down_bottleneck.utilization() > 0.9

    def test_upload_flows_saturate(self):
        sim = Simulator()
        net = AccessNetwork(sim)
        bulk = BulkTraffic(sim, net.traffic_servers(), net.traffic_clients(),
                           count=2, direction="up")
        bulk.start()
        sim.run(until=5)
        net.reset_measurements()
        sim.run(until=15)
        assert net.up_bottleneck.utilization() > 0.9

    def test_sender_connections_listed(self):
        sim = Simulator()
        net = AccessNetwork(sim)
        bulk = BulkTraffic(sim, net.traffic_servers(), net.traffic_clients(),
                           count=3, direction="down")
        bulk.start()
        sim.run(until=3)
        assert len(bulk.sender_connections()) == 3

    def test_stop_aborts(self):
        sim = Simulator()
        net = AccessNetwork(sim)
        bulk = BulkTraffic(sim, net.traffic_servers(), net.traffic_clients(),
                           count=2, direction="down")
        bulk.start()
        sim.run(until=3)
        bulk.stop()
        tx_before = net.down_bottleneck.stats.tx_bytes
        sim.run(until=6)
        # Only in-flight packets drain; no new data is generated.
        assert net.down_bottleneck.stats.tx_bytes - tx_before < 200_000

    def test_invalid_direction(self):
        sim = Simulator()
        net = AccessNetwork(sim)
        with pytest.raises(ValueError):
            BulkTraffic(sim, net.servers, net.clients, 1, direction="both")

    def test_double_start_rejected(self):
        sim = Simulator()
        net = AccessNetwork(sim)
        bulk = BulkTraffic(sim, net.traffic_servers(), net.traffic_clients(),
                           count=1)
        bulk.start()
        with pytest.raises(RuntimeError):
            bulk.start()
