"""Fast integration tests for the per-figure study runners."""

import pytest

from repro.core.scenarios import access_scenario, backbone_scenario
from repro.core.study import (
    fig4_delay_grid,
    fig5_utilization,
    render_fig4,
    render_fig5,
    render_table1,
    render_table2,
    table1_rows,
)
from repro.core.video_study import run_video_cell
from repro.core.voip_study import median_mos, run_voip_cell
from repro.core.web_study import run_web_cell
from repro.sim.queues import CoDelQueue


class _Buf:
    def __init__(self, packets):
        self.packets = packets


class TestQosStudies:
    def test_fig4_grid_and_render(self):
        buffers = [_Buf(8), _Buf(64)]
        results = fig4_delay_grid("up", buffers=buffers,
                                  workloads=("long-few",), warmup=3,
                                  duration=5, seed=2)
        assert set(results) == {("long-few", 8), ("long-few", 64)}
        # Bigger buffer, bigger mean uplink delay.
        assert (results[("long-few", 64)].up_mean_delay
                > results[("long-few", 8)].up_mean_delay)
        text = render_fig4(results, "up", buffers=buffers,
                           workloads=("long-few",))
        assert "UPLINK" in text and "DOWNLINK" in text

    def test_fig5_and_render(self):
        results = fig5_utilization(buffers=[_Buf(64)], warmup=3, duration=5,
                                   seed=1)
        report = results[64]
        assert len(report.up_utilization_samples) >= 4
        assert "utilization" in render_fig5(results)

    def test_table1_rows_and_render(self):
        rows = table1_rows("backbone", warmup=2, duration=4, seed=1,
                           include_overload=False)
        assert len(rows) == 4
        text = render_table1(rows, "backbone")
        assert "short-low" in text

    def test_table2_render(self):
        text = render_table2()
        assert "96" in text  # 8-packet uplink delay
        assert "7490" in text


class TestVoipCells:
    def test_nobg_cell_excellent(self):
        scores = run_voip_cell(access_scenario("noBG"), 64, calls=1,
                               warmup=1, duration=2.0)
        assert median_mos(scores["talks"]) > 4.0
        assert median_mos(scores["listens"]) > 4.0

    def test_single_direction(self):
        scores = run_voip_cell(backbone_scenario("noBG"), 749, calls=1,
                               warmup=1, duration=2.0,
                               directions=("listens",))
        assert set(scores) == {"listens"}
        assert median_mos(scores["listens"]) > 4.0

    def test_queue_factory_plumbs_through(self):
        scores = run_voip_cell(
            access_scenario("noBG"), 64, calls=1, warmup=1, duration=2.0,
            queue_factory=lambda p: CoDelQueue(capacity_packets=p))
        assert median_mos(scores["talks"]) > 4.0

    def test_median_mos_empty(self):
        assert median_mos([]) == 0.0


class TestVideoCells:
    def test_nobg_cell_is_perfect(self):
        cell = run_video_cell(access_scenario("noBG"), 64, duration=2.0,
                              warmup=1)
        assert cell["ssim"] == pytest.approx(1.0, abs=1e-6)
        assert cell["mos"] == 5.0
        assert cell["packet_loss"] == 0.0

    def test_arq_flag(self):
        cell = run_video_cell(access_scenario("noBG"), 64, duration=2.0,
                              warmup=1, arq=True)
        assert cell["ssim"] == pytest.approx(1.0, abs=1e-6)


class TestWebCells:
    def test_nobg_cell_fast(self):
        cell = run_web_cell(access_scenario("noBG"), 64, fetches=2, warmup=1)
        assert cell["median_plt"] < 1.0
        assert cell["mos"] > 4.0
        assert len(cell["plts"]) == 2

    def test_backbone_anchor_used(self):
        cell = run_web_cell(backbone_scenario("noBG"), 749, fetches=2,
                            warmup=1)
        assert cell["mos"] == 5.0  # under the 0.85 s backbone anchor
