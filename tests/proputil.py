"""Property-test helper: hypothesis when available, seeded sweep if not.

The golden-trace harness pins *results*; these property tests pin
*invariants* (event ordering, queue conservation) under randomized
operation sequences.  They are written against a single integer seed so
the suite still runs — deterministically — on environments where
hypothesis is unwanted: the decorator then degrades to a parametrized
sweep over fixed seeds.
"""

import pytest

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without the dep
    HAVE_HYPOTHESIS = False


def seeded_property(max_examples=60):
    """Decorate ``fn(seed: int)`` as a property test.

    With hypothesis installed the seed is drawn (and shrunk) by the
    framework; without it the test runs over ``range(max_examples)``.
    """
    if HAVE_HYPOTHESIS:
        def wrap(fn):
            return settings(
                max_examples=max_examples,
                deadline=None,
                derandomize=True,  # CI stability: no flaky example drift
                suppress_health_check=[HealthCheck.function_scoped_fixture],
            )(given(seed=st.integers(min_value=0, max_value=2 ** 32 - 1))(fn))
        return wrap

    def wrap(fn):  # pragma: no cover - exercised only without the dep
        return pytest.mark.parametrize("seed", range(max_examples))(fn)
    return wrap
