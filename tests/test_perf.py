"""Tests for the repro.perf benchmark/profiler subsystem."""

import json

import pytest

from repro.perf import bench
from repro.perf.profile import profile_cell, timeit_cell
from repro.sim import engine
from repro.sim.engine import Simulator


class TestSimRunTimer:
    def test_accumulates_and_restores(self):
        original = engine.Simulator.run
        with bench._SimRunTimer() as timer:
            sim = Simulator()
            for index in range(50):
                sim.schedule(float(index), lambda: None)
            sim.run()
        assert engine.Simulator.run is original
        assert timer.seconds >= 0.0

    def test_total_events_counts_executed_only(self):
        before = engine.total_events()
        sim = Simulator()
        kept = sim.schedule(1.0, lambda: None)
        cancelled = sim.schedule(2.0, lambda: None)
        cancelled.cancel()
        sim.run()
        assert engine.total_events() - before == 1
        assert not kept.cancelled


class TestBench:
    @pytest.fixture()
    def tiny_workloads(self, monkeypatch):
        tiny = (("fig7", (("fig7a", 0.1),)),)
        monkeypatch.setattr(bench, "FULL_WORKLOADS", tiny)
        monkeypatch.setattr(bench, "QUICK_WORKLOADS", tiny)
        return tiny

    def test_run_bench_document_shape(self, tiny_workloads, tmp_path):
        document = bench.run_bench(quick=True, repetitions=1,
                                   reference={"events_per_sec": {}})
        assert document["mode"] == "quick"
        workload = document["workloads"]["fig7"]
        assert workload["cells"] == 9
        assert workload["events"] > 0
        assert workload["events_per_sec"] > 0
        assert document["totals"]["events"] == workload["events"]
        assert document["totals"]["peak_rss_kb"] > 0
        assert document["reference"] == {"events_per_sec": {}}
        path = bench.write_bench(document, str(tmp_path / "bench.json"))
        assert bench.load_baseline(path) == json.loads(
            json.dumps(document))
        assert "ev/s" in bench.render_summary(document)

    def test_rejects_nonpositive_repetitions(self, tiny_workloads):
        with pytest.raises(ValueError):
            bench.run_bench(quick=True, repetitions=0)

    def test_event_counts_deterministic_across_reps(self, tiny_workloads):
        one = bench.run_bench(quick=True, repetitions=1)
        two = bench.run_bench(quick=True, repetitions=2)
        assert (one["workloads"]["fig7"]["events"]
                == two["workloads"]["fig7"]["events"])


class TestRegressionCheck:
    def _doc(self, events_per_sec):
        return {"workloads": {"fig5": {"events_per_sec": events_per_sec}}}

    def test_ok_within_tolerance(self, capsys):
        assert bench.check_regression(self._doc(80), self._doc(100),
                                      tolerance=0.30)

    def test_fails_beyond_tolerance(self):
        assert not bench.check_regression(self._doc(60), self._doc(100),
                                          tolerance=0.30)

    def test_missing_baseline_workload_is_skipped(self):
        current = self._doc(10)
        assert bench.check_regression(current, {"workloads": {}})


class TestProfileHarness:
    def test_profile_cell_smoke(self):
        text, task = profile_cell("fig7a", cell=0, scale=0.1, top=5)
        assert "profile: fig7a cell 0" in text
        assert "function calls" in text
        assert task.kind == "voip"

    def test_profile_cell_bad_args(self):
        with pytest.raises(ValueError):
            profile_cell("fig7a", sort="nonsense")
        with pytest.raises(IndexError):
            profile_cell("fig7a", cell=999, scale=0.1)

    def test_timeit_cell(self):
        assert timeit_cell("fig7a", cell=0, scale=0.1, repetitions=1) >= 0.0


def test_committed_baseline_is_wellformed():
    """BENCH_simcore.json at the repo root stays loadable and complete."""
    from pathlib import Path

    path = Path(__file__).resolve().parent.parent / "BENCH_simcore.json"
    document = json.loads(path.read_text())
    assert document["kind"] == "simcore-bench"
    assert set(document["workloads"]) == {"fig5", "fig7"}
    for workload in document["workloads"].values():
        assert workload["events_per_sec"] > 0
    assert document["reference"]["events_per_sec"]["fig5"] > 0
