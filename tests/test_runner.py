"""Tests for the parallel grid runner and its result cache."""

import pytest

from repro.core.experiment import run_qos_cell
from repro.core.scenarios import access_scenario
from repro.core.study import fig4_delay_grid, table1_rows
from repro.runner import CellTask, GridRunner, ResultCache, resolve_workers
from repro.runner.execute import execute_task, jsonify, queue_factory_for
from repro.sim.queues import CoDelQueue, REDQueue


class _Buf:
    def __init__(self, packets):
        self.packets = packets


def _flaky_execute(task):
    """Module-level (so it pickles into pool workers): fail one cell."""
    if task.buffer_packets == 32:
        raise RuntimeError("boom")
    return execute_task(task)


def qos_task(packets=16, seed=1, warmup=1.0, duration=2.0):
    return CellTask.make("qos", access_scenario("long-few", "down"), packets,
                         seed=seed, warmup=warmup, duration=duration)


def fresh_runner(tmp_path, **kwargs):
    kwargs.setdefault("cache", ResultCache(directory=str(tmp_path / "cache"),
                                           enabled=True))
    kwargs.setdefault("progress", False)
    return GridRunner(**kwargs)


class TestCellTask:
    def test_hash_is_stable(self):
        assert qos_task().content_hash() == qos_task().content_hash()

    def test_hash_covers_every_knob(self):
        base = qos_task()
        assert qos_task(packets=32).content_hash() != base.content_hash()
        assert qos_task(seed=2).content_hash() != base.content_hash()
        assert qos_task(warmup=2.0).content_hash() != base.content_hash()
        assert qos_task(duration=4.0).content_hash() != base.content_hash()
        other_scenario = CellTask.make(
            "qos", access_scenario("long-few", "up"), 16,
            seed=1, warmup=1.0, duration=2.0)
        assert other_scenario.content_hash() != base.content_hash()

    def test_hash_covers_params_and_discipline(self):
        scenario = access_scenario("noBG")
        web = CellTask.make("web", scenario, 16, fetches=5)
        assert (CellTask.make("web", scenario, 16, fetches=6).content_hash()
                != web.content_hash())
        assert (CellTask.make("web", scenario, 16, fetches=5,
                              discipline="codel").content_hash()
                != web.content_hash())

    def test_tuple_buffer_is_hashable_and_stable(self):
        task = CellTask.make("qos", access_scenario("noBG"), (64, 8))
        same = CellTask.make("qos", access_scenario("noBG"), [64, 8])
        assert task.content_hash() == same.content_hash()
        assert task.buffer_packets == (64, 8)

    def test_web_ignored_duration_normalized_out_of_hash(self):
        # Web cells run a fixed fetch count; the unused duration knob
        # must not split semantically identical cells across cache keys.
        scenario = access_scenario("noBG")
        short = CellTask.make("web", scenario, 16, fetches=5, duration=5.0)
        long = CellTask.make("web", scenario, 16, fetches=5, duration=20.0)
        assert short == long
        assert short.content_hash() == long.content_hash()

    def test_unknown_kind_and_discipline_rejected(self):
        with pytest.raises(ValueError):
            CellTask.make("quantum", access_scenario("noBG"), 16)
        with pytest.raises(ValueError):
            CellTask.make("qos", access_scenario("noBG"), 16,
                          discipline="madmax")

    def test_queue_factory_mapping(self):
        assert queue_factory_for("droptail") is None
        assert queue_factory_for(None) is None
        assert isinstance(queue_factory_for("red")(16), REDQueue)
        assert isinstance(queue_factory_for("codel")(16), CoDelQueue)
        with pytest.raises(ValueError):
            queue_factory_for("madmax")

    def test_jsonify_numpy_and_tuples(self):
        import numpy as np

        payload = jsonify({"a": np.float64(1.5), "b": (1, np.int32(2)),
                           "c": [True, None, "x"]})
        assert payload == {"a": 1.5, "b": [1, 2], "c": [True, None, "x"]}
        assert type(payload["a"]) is float
        with pytest.raises(TypeError):
            jsonify(object())


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path), enabled=True)
        task = qos_task()
        assert cache.get(task) is None
        cache.put(task, {"x": 1.25})
        assert cache.get(task) == {"x": 1.25}

    def test_disabled_cache_is_a_noop(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path), enabled=False)
        cache.put(qos_task(), {"x": 1})
        assert cache.get(qos_task()) is None
        assert not list(tmp_path.iterdir())

    def test_env_kill_switch(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert not ResultCache(directory=str(tmp_path)).enabled
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert ResultCache(directory=str(tmp_path)).enabled

    def test_code_fingerprint_partitions_keys(self, tmp_path):
        task = qos_task()
        old = ResultCache(directory=str(tmp_path), enabled=True,
                          fingerprint="old-code")
        new = ResultCache(directory=str(tmp_path), enabled=True,
                          fingerprint="new-code")
        old.put(task, {"x": 1})
        assert old.get(task) == {"x": 1}
        assert new.get(task) is None  # code changed -> cache invalidated

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path), enabled=True)
        task = qos_task()
        cache.put(task, {"x": 1})
        with open(cache.path(task), "w") as handle:
            handle.write("not json {")
        assert cache.get(task) is None


class TestGridRunner:
    def test_resolve_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(3) == 3
        assert resolve_workers() >= 1
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers() == 7
        monkeypatch.setenv("REPRO_WORKERS", "banana")
        assert resolve_workers() >= 1

    def test_workers_1_never_spawns_a_pool(self, tmp_path, monkeypatch):
        import repro.runner.grid as grid_module

        def boom(*args, **kwargs):
            raise AssertionError("serial path must not build a pool")

        monkeypatch.setattr(grid_module, "ProcessPoolExecutor", boom)
        runner = fresh_runner(tmp_path, workers=1)
        results = runner.run([qos_task(16), qos_task(32)])
        assert len(results) == 2
        assert results[0].down_utilization > 0.0

    def test_parallel_matches_serial_and_direct(self, tmp_path):
        tasks = [qos_task(16), qos_task(32)]
        serial = fresh_runner(tmp_path / "a", workers=1).run(tasks)
        parallel = fresh_runner(tmp_path / "b", workers=2).run(tasks)
        direct = [run_qos_cell(access_scenario("long-few", "down"), packets,
                               warmup=1.0, duration=2.0, seed=1)
                  for packets in (16, 32)]
        assert serial == parallel
        assert parallel == direct

    def test_warm_cache_skips_all_simulations(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path), enabled=True)
        tasks = [qos_task(16), qos_task(32)]
        cold = GridRunner(workers=2, cache=cache, progress=False)
        first = cold.run(tasks)
        assert cold.last_stats["computed"] == 2
        warm = GridRunner(workers=2, cache=cache, progress=False)
        second = warm.run(tasks)
        assert warm.last_stats["computed"] == 0
        assert warm.last_stats["cached"] == 2
        assert first == second

    def test_failed_cell_still_caches_finished_siblings(self, tmp_path,
                                                        monkeypatch):
        import repro.runner.grid as grid_module

        monkeypatch.setattr(grid_module, "execute_task", _flaky_execute)
        cache = ResultCache(directory=str(tmp_path), enabled=True)
        runner = GridRunner(workers=2, cache=cache, progress=False)
        with pytest.raises(RuntimeError, match="boom"):
            runner.run([qos_task(16), qos_task(32), qos_task(48)])
        # The healthy siblings' results survived the failure.
        assert cache.get(qos_task(16)) is not None
        assert cache.get(qos_task(48)) is not None
        assert cache.get(qos_task(32)) is None

    def test_failed_run_still_populates_last_stats(self, tmp_path,
                                                   monkeypatch):
        # Regression: a worker failure used to leave last_stats at its
        # previous value (empty on a fresh runner), so callers reporting
        # cells/cached/elapsed crashed or lied after a failed grid.
        import repro.runner.grid as grid_module

        monkeypatch.setattr(grid_module, "execute_task", _flaky_execute)
        cache = ResultCache(directory=str(tmp_path), enabled=True)
        runner = GridRunner(workers=2, cache=cache, progress=False)
        with pytest.raises(RuntimeError, match="boom"):
            runner.run([qos_task(16), qos_task(32), qos_task(48)])
        stats = runner.last_stats
        assert stats["failed"] is True
        assert stats["cells"] == 3
        assert stats["cached"] == 0
        assert stats["computed"] == 2  # siblings finished before re-raise
        assert stats["elapsed"] > 0.0

        # Serial path: the failure aborts immediately, stats still land.
        serial = GridRunner(workers=1, cache=ResultCache(
            directory=str(tmp_path / "serial"), enabled=True),
            progress=False)
        with pytest.raises(RuntimeError, match="boom"):
            serial.run([qos_task(32), qos_task(16)])
        assert serial.last_stats["failed"] is True
        assert serial.last_stats["cells"] == 2
        assert serial.last_stats["computed"] == 0

    def test_successful_run_reports_not_failed(self, tmp_path):
        runner = fresh_runner(tmp_path, workers=1)
        runner.run([qos_task(16)])
        assert runner.last_stats["failed"] is False
        assert runner.last_stats["computed"] == 1

    def test_run_is_a_collector_over_the_payload_stream(self, tmp_path):
        # run() and iter_run() must agree cell for cell.
        tasks = [qos_task(16), qos_task(32)]
        batch = fresh_runner(tmp_path / "a", workers=1).run(tasks)
        streamed = list(fresh_runner(tmp_path / "b",
                                     workers=1).iter_run(tasks))
        assert [task for task, __ in streamed] == tasks
        for (__, record), revived in zip(streamed, batch):
            assert record.report == revived
            assert record.kind == "qos"

    def test_progress_lines_report_cells_and_eta(self, tmp_path):
        lines = []
        runner = fresh_runner(tmp_path, workers=1, progress=True,
                              log=lines.append)
        runner.run([qos_task(16)])
        assert any("running 1 cells" in line for line in lines)
        assert any("eta" in line for line in lines)

    def test_voip_cell_payload_matches_direct_run(self, tmp_path):
        from repro.core.voip_study import median_mos, run_voip_cell

        scenario = access_scenario("noBG")
        task = CellTask.make("voip", scenario, 64, seed=0, warmup=0.5,
                             duration=2.0, calls=1,
                             directions=("listens",))
        result = fresh_runner(tmp_path, workers=1).run([task])[0]
        scores = run_voip_cell(scenario, 64, calls=1, warmup=0.5,
                               duration=2.0, seed=0,
                               directions=("listens",))
        assert result["listens"] == median_mos(scores["listens"])
        assert result["delay"]["listens"] == pytest.approx(
            scores["listens"][0].mouth_to_ear_delay)


class TestStudyGridsThroughRunner:
    def test_fig4_parallel_identical_to_serial(self, tmp_path):
        kwargs = dict(buffers=[_Buf(8), _Buf(16)], workloads=("long-few",),
                      warmup=1.0, duration=2.0, seed=3)
        serial = fig4_delay_grid(
            "down", runner=fresh_runner(tmp_path / "a", workers=1), **kwargs)
        parallel = fig4_delay_grid(
            "down", runner=fresh_runner(tmp_path / "b", workers=2), **kwargs)
        assert list(serial) == list(parallel)
        assert serial == parallel

    def test_table1_parallel_identical_to_serial(self, tmp_path):
        workloads = [("long-few", "down"), ("short-few", "down")]
        kwargs = dict(warmup=1.0, duration=2.0, seed=3, workloads=workloads)
        serial = table1_rows(
            "access", runner=fresh_runner(tmp_path / "a", workers=1),
            **kwargs)
        parallel = table1_rows(
            "access", runner=fresh_runner(tmp_path / "b", workers=2),
            **kwargs)
        assert serial == parallel
        assert [row["workload"] for row in serial] == ["long-few",
                                                       "short-few"]
        # Table 1 access cells use per-direction BDP buffers.
        assert serial[0]["down_util"] > 0.0

    def test_fig4_warm_cache_repeat(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path), enabled=True)
        kwargs = dict(buffers=[_Buf(8)], workloads=("long-few",),
                      warmup=1.0, duration=2.0, seed=3)
        first_runner = GridRunner(workers=1, cache=cache, progress=False)
        first = fig4_delay_grid("down", runner=first_runner, **kwargs)
        warm_runner = GridRunner(workers=1, cache=cache, progress=False)
        second = fig4_delay_grid("down", runner=warm_runner, **kwargs)
        assert warm_runner.last_stats["computed"] == 0
        assert first == second
