"""Tests for the declarative sweep registry (repro.core.registry)."""

import json

import pytest

from repro.core import registry
from repro.core.registry import (
    REGISTRY,
    ScenarioSpec,
    SweepSpec,
    access,
    adhoc_sweep,
    backbone,
    get,
)
from repro.core.scenarios import access_scenario
from repro.runner import CellTask, GridRunner, ResultCache

PAPER_NAMES = ("fig4-up", "fig4-down", "fig5", "table1-access",
               "table1-backbone", "fig7a", "fig7b", "fig8", "fig9a",
               "fig9b", "fig10a", "fig10b", "fig11")
EXTENSION_NAMES = ("aqm-voip", "aqm-video", "aqm-web", "wireless-voip",
                   "wireless-qos", "bufferbloat-mixed")


def runner_for(tmp_path):
    return GridRunner(workers=1, progress=False,
                      cache=ResultCache(directory=str(tmp_path), enabled=True))


class TestScenarioSpec:
    def test_build_access(self):
        scenario = access("long-many", "bidir").build()
        assert scenario.testbed == "access"
        assert scenario.up_flows == 8 and scenario.down_flows == 64

    def test_build_backbone_ignores_direction(self):
        scenario = backbone("short-low").build()
        assert scenario.testbed == "backbone"
        assert scenario.direction == "down"

    def test_loss_plumbs_into_scenario(self):
        scenario = access("long-few", "up", loss=0.02).build()
        assert scenario.down_loss == 0.02
        assert scenario.up_loss == 0.02
        assert scenario.is_lossy

    def test_key_defaults_to_workload(self):
        assert access("noBG").key == "noBG"
        assert access("noBG", label="clean").key == "clean"

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec("space", "noBG")
        with pytest.raises(ValueError):
            ScenarioSpec("access", "noBG", loss=1.5)

    def test_json_round_trip(self):
        spec = access("long-few", "up", loss=0.01, label="lossy")
        assert ScenarioSpec.from_json(spec.to_json()) == spec


class TestRegistryCatalog:
    def test_all_paper_grids_registered(self):
        for name in PAPER_NAMES:
            assert get(name).provenance != "extension"

    def test_extension_families_registered(self):
        for name in EXTENSION_NAMES:
            assert get(name).provenance == "extension"
        # The issue's acceptance bar: at least three new families.
        families = {name.split("-")[0] for name in EXTENSION_NAMES}
        assert len(families) >= 3

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            get("fig99")

    def test_names_cover_registry(self):
        assert set(registry.names()) == set(REGISTRY)
        assert (len(registry.paper_sweeps())
                + len(registry.extension_sweeps())) == len(REGISTRY)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            registry.register(get("fig5"))

    def test_every_spec_json_round_trips(self):
        for spec in REGISTRY.values():
            data = json.loads(json.dumps(spec.to_json()))
            assert SweepSpec.from_json(data) == spec, spec.name

    def test_every_spec_lowers_to_tasks(self):
        for spec in REGISTRY.values():
            tasks = spec.tasks(scale=1.0)
            assert len(tasks) == spec.cell_count(scale=1.0), spec.name
            assert len(tasks) == len(spec.cells(scale=1.0)), spec.name
            for task in tasks:
                assert task.content_hash()


class TestSweepSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            SweepSpec(name="x", kind="quantum", title="", provenance="")

    def test_unknown_discipline(self):
        with pytest.raises(ValueError):
            SweepSpec(name="x", kind="qos", title="", provenance="",
                      disciplines=("madmax",))

    def test_duplicate_labels(self):
        with pytest.raises(ValueError):
            SweepSpec(name="x", kind="qos", title="", provenance="",
                      scenarios=(access("noBG", "down"),
                                 access("noBG", "up")))


class TestScaleResolution:
    def test_duration_floor(self):
        spec = get("fig5")  # duration 15 s, floor 10 s
        assert spec.resolved_duration(scale=1.0) == 15.0
        assert spec.resolved_duration(scale=0.1) == 10.0
        assert spec.resolved_duration(scale=4.0) == 60.0

    def test_axis_switching(self):
        spec = get("fig7b")
        assert len(spec.scenario_axis(scale=1.0)) == 3
        assert len(spec.scenario_axis(scale=4.0)) == 5
        assert spec.buffer_axis(scale=1.0) == (8, 64, 256)
        assert len(spec.buffer_axis(scale=4.0)) == 6

    def test_count_scaling(self):
        spec = get("fig10a")  # fetches base 8, floor 4
        assert spec.resolved_counts(scale=1.0) == {"fetches": 8}
        assert spec.resolved_counts(scale=0.25) == {"fetches": 4}
        assert spec.resolved_counts(scale=2.0) == {"fetches": 16}

    def test_env_scale_used_by_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "4")
        assert registry.resolve_scale() == 4.0
        assert len(get("fig7b").scenario_axis()) == 5

    def test_describe_is_jsonable(self):
        for spec in REGISTRY.values():
            json.dumps(spec.describe(scale=1.0))


class TestTaskEquivalence:
    def test_fig5_spec_encodes_benchmark_grid(self):
        """The registered fig5 cells ARE the benchmark's historical grid."""
        spec = get("fig5")
        expected = [
            CellTask.make("qos", access_scenario("long-many", "bidir"),
                          packets, seed=1, warmup=8.0, duration=15.0)
            for packets in (8, 16, 32, 64, 128, 256)
        ]
        assert ([task.content_hash() for task in spec.tasks(scale=1.0)]
                == [task.content_hash() for task in expected])

    def test_aqm_axis_multiplies_disciplines(self):
        spec = get("aqm-voip")
        tasks = spec.tasks(scale=1.0)
        assert {task.discipline for task in tasks} == {"droptail", "red",
                                                       "codel"}
        keys = spec.cells(scale=1.0)
        assert ("long-few", 256, "codel") in keys

    def test_wireless_labels_distinguish_loss(self):
        spec = get("wireless-voip")
        keys = spec.cells(scale=1.0)
        assert ("long-few", 64) in keys
        assert ("long-few+loss1%", 64) in keys
        tasks = dict(zip(keys, spec.tasks(scale=1.0)))
        assert tasks[("long-few+loss1%", 64)].scenario.up_loss == 0.01
        assert tasks[("long-few", 64)].scenario.up_loss == 0.0


class TestAdhocSweep:
    def test_duration_passes_through_verbatim(self):
        spec = adhoc_sweep("t", "qos", [access("noBG")], [8], duration=2.5)
        assert spec.resolved_duration(scale=1.0) == 2.5
        assert spec.resolved_duration(scale=0.01) == 2.5

    def test_run_returns_keyed_reports(self, tmp_path):
        spec = adhoc_sweep("t", "qos", [access("long-few", "down")], [8, 16],
                           seed=3, warmup=1.0, duration=2.0)
        results = spec.run(runner=runner_for(tmp_path), scale=1.0)
        assert set(results) == {("long-few", 8), ("long-few", 16)}
        for report in results.values():
            assert report.down_utilization > 0.0

    def test_axes_extend_cell_keys(self, tmp_path):
        spec = adhoc_sweep("t", "video", [access("noBG")], [8],
                           warmup=0.5, duration=1.0,
                           params=(("clip", "C"),),
                           axes=(("resolution", ("SD",)),))
        results = spec.run(runner=runner_for(tmp_path), scale=1.0)
        assert set(results) == {("noBG", 8, "SD")}
        assert results[("noBG", 8, "SD")]["ssim"] > 0.9
