"""Shared helpers for building small test networks."""

from repro.sim import Simulator
from repro.sim.link import Interface
from repro.sim.node import Node
from repro.sim.queues import DropTailQueue
from repro.tcp import TcpConnection, TcpListener
from repro.util.units import MBPS, ms


def two_hosts(rate_bps=10 * MBPS, delay=ms(10), queue_packets=100):
    """Two hosts joined by a symmetric full-duplex link.

    Returns ``(sim, a, b)``.  The queue on each direction holds
    ``queue_packets`` packets.
    """
    sim = Simulator()
    a = Node(sim, "a", 1)
    b = Node(sim, "b", 2)
    a_to_b = Interface(sim, "a->b", rate_bps, delay,
                       DropTailQueue(capacity_packets=queue_packets), b)
    b_to_a = Interface(sim, "b->a", rate_bps, delay,
                       DropTailQueue(capacity_packets=queue_packets), a)
    a.set_default_route(a_to_b)
    b.set_default_route(b_to_a)
    return sim, a, b


class TransferRecorder:
    """Collects receiver-side events for assertions."""

    def __init__(self):
        self.bytes = 0
        self.messages = []
        self.established = 0
        self.peer_fin = 0
        self.closed = 0
        self.close_times = []

    def attach(self, connection):
        connection.on_data = self._on_data
        connection.on_message = self._on_message
        connection.on_established = self._on_established
        connection.on_peer_fin = self._on_peer_fin
        connection.on_close = self._on_close
        return connection

    def _on_data(self, connection, nbytes):
        self.bytes += nbytes

    def _on_message(self, connection, meta):
        self.messages.append(meta)

    def _on_established(self, connection):
        self.established += 1

    def _on_peer_fin(self, connection):
        self.peer_fin += 1

    def _on_close(self, connection):
        self.closed += 1
        self.close_times.append(connection.sim.now)


def run_transfer(nbytes, rate_bps=10 * MBPS, delay=ms(10), queue_packets=100,
                 cc_factory=None, until=60.0):
    """Server sends ``nbytes`` to a connecting client; returns recorder + conns.

    The server closes after sending; the client closes on peer FIN, so the
    whole exchange finishes with both endpoints closed.
    """
    sim, a, b = two_hosts(rate_bps, delay, queue_packets)
    recorder = TransferRecorder()

    def on_server_conn(conn):
        conn.send(nbytes, meta="file")
        conn.close()

    TcpListener(sim, b, 80, on_connection=on_server_conn,
                cc_factory=cc_factory)
    client = TcpConnection(sim, a, peer_addr=b.addr, peer_port=80)
    recorder.attach(client)
    client.on_peer_fin = lambda c: (recorder._on_peer_fin(c), c.close())
    client.connect()
    sim.run(until=until)
    return sim, recorder, client
