"""Tests for the typed results layer (repro.results).

The round-trip suite executes one real cell per kind (tiny windows) and
checks payload → record → rows/CSV/JSON → parse-back fidelity; the
ResultSet verb tests run on synthetic records and stay sim-free.
"""

import csv
import io
import json

import pytest

from repro.core.scenarios import access_scenario
from repro.results import (
    CellResult,
    QosResult,
    ResultSet,
    StreamAggregator,
    VideoResult,
    VoipResult,
    WebResult,
    aggregate_stream,
    flatten_metrics,
    format_buffer,
    jsonify,
    key_str,
    record_from_payload,
    summarize,
)
from repro.runner import CellTask
from repro.runner.execute import execute_task

# ---------------------------------------------------------------------------
# One real payload per kind (executed once per test session).
# ---------------------------------------------------------------------------
KIND_TASKS = {
    "qos": lambda: CellTask.make(
        "qos", access_scenario("long-few", "down"), 16, seed=1,
        warmup=0.5, duration=1.0),
    "voip": lambda: CellTask.make(
        "voip", access_scenario("noBG"), 64, seed=0, warmup=0.5,
        duration=1.5, calls=1, directions=("listens",)),
    "video": lambda: CellTask.make(
        "video", access_scenario("noBG"), 64, seed=0, warmup=0.5,
        duration=1.0, clip="C", resolution="SD"),
    "web": lambda: CellTask.make(
        "web", access_scenario("noBG"), 64, seed=0, warmup=0.5, fetches=2),
}

RECORD_CLASSES = {"qos": QosResult, "voip": VoipResult,
                  "video": VideoResult, "web": WebResult}


@pytest.fixture(scope="module")
def executed():
    """``{kind: (task, payload)}`` — each cell simulated exactly once."""
    out = {}
    for kind, make in KIND_TASKS.items():
        task = make()
        out[kind] = (task, execute_task(task))
    return out


class TestRecordRoundTrip:
    @pytest.mark.parametrize("kind", sorted(KIND_TASKS))
    def test_payload_to_record_to_rows_preserves_every_metric(self, kind,
                                                              executed):
        task, payload = executed[kind]
        record = record_from_payload(task, payload, key=("cell", 1),
                                     index=0)
        assert isinstance(record, RECORD_CLASSES[kind])
        assert record.kind == kind
        assert record.payload == payload  # wire format untouched
        metrics = record.metrics
        assert metrics, "every kind must expose scalar metrics"

        (row,) = ResultSet([record]).to_rows()
        for name, value in metrics.items():
            assert row[name] == value, name

        text = ResultSet([record]).to_csv()
        (parsed,) = list(csv.DictReader(io.StringIO(text)))
        for name, value in metrics.items():
            assert float(parsed[name]) == value, (
                "metric %s did not survive the CSV round trip" % name)
        assert parsed["kind"] == kind
        assert parsed["scenario"] == str(task.scenario)
        assert parsed["key"] == "cell/1"

    @pytest.mark.parametrize("kind", sorted(KIND_TASKS))
    def test_json_export_keeps_payload_bit_identical(self, kind, executed):
        task, payload = executed[kind]
        rs = ResultSet.from_payloads([task], [payload])
        (entry,) = json.loads(rs.to_json())
        assert entry["payload"] == payload
        assert entry["kind"] == kind
        assert entry["seed"] == task.seed

    @pytest.mark.parametrize("kind", sorted(KIND_TASKS))
    def test_summary_matches_payload_helper(self, kind, executed):
        task, payload = executed[kind]
        record = record_from_payload(task, payload)
        assert record.summary() == summarize(kind, payload)
        assert record.summary()  # non-empty

    def test_qos_record_revives_and_delegates(self, executed):
        from repro.core.experiment import QosReport

        task, payload = executed["qos"]
        record = record_from_payload(task, payload)
        assert isinstance(record.report, QosReport)
        assert record.report is record.report  # cached
        assert record.down_utilization == payload["down_utilization"]
        assert record.buffer_packets == 16  # axis value, not payload echo
        box = record.down_utilization_boxplot()
        assert box[0] <= box[2] <= box[4]
        assert record.qoe is None

    def test_voip_record_accessors(self, executed):
        task, payload = executed["voip"]
        record = record_from_payload(task, payload)
        assert record.directions == ("listens",)
        assert record.mos("listens") == payload["listens"]
        assert record.delay("listens") == payload["delay"]["listens"]
        assert record.qoe == payload["listens"]
        assert record.metrics["delay.listens"] == payload["delay"]["listens"]
        assert record["listens"] == payload["listens"]  # dict-style

    def test_video_and_web_accessors(self, executed):
        __, video_payload = executed["video"]
        video = record_from_payload(KIND_TASKS["video"](), video_payload)
        assert video.ssim == video_payload["ssim"]
        assert video.qoe == video_payload["mos"]

        __, web_payload = executed["web"]
        web = record_from_payload(KIND_TASKS["web"](), web_payload)
        assert web.median_plt == web_payload["median_plt"]
        assert web.plts == web_payload["plts"]  # series kept on payload
        assert "plts" not in web.metrics  # ... but it is not a metric


# ---------------------------------------------------------------------------
# Sim-free ResultSet verbs on synthetic records.
# ---------------------------------------------------------------------------
def voip_record(scenario, packets, talks, listens, discipline="droptail",
                index=None):
    return VoipResult(
        scenario=scenario, buffer_packets=packets, seed=3,
        discipline=discipline, params=(("calls", 1),),
        payload={"talks": talks, "listens": listens,
                 "delay": {"talks": 0.1, "listens": 0.2}},
        key=(scenario, packets, discipline), index=index)


@pytest.fixture()
def synthetic():
    return ResultSet([
        voip_record("noBG", 8, 4.2, 4.3, index=0),
        voip_record("noBG", 256, 4.1, 4.2, index=1),
        voip_record("long-few", 8, 3.0, 3.6, index=2),
        voip_record("long-few", 256, 1.2, 2.8, index=3),
    ])


class TestResultSet:
    def test_len_iter_and_indexing(self, synthetic):
        assert len(synthetic) == 4
        assert [r.buffer_packets for r in synthetic] == [8, 256, 8, 256]
        assert synthetic[0].scenario == "noBG"
        assert synthetic[("long-few", 256, "droptail")].value("talks") == 1.2
        assert ("noBG", 8, "droptail") in synthetic
        assert ("ghost", 8, "droptail") not in synthetic
        assert len(synthetic[1:3]) == 2

    def test_column_and_value_lookup(self, synthetic):
        assert synthetic.column("talks") == [4.2, 4.1, 3.0, 1.2]
        assert synthetic.column("buffer") == [8, 256, 8, 256]
        assert synthetic.column("calls") == [1, 1, 1, 1]  # params
        with pytest.raises(KeyError):
            synthetic.column("mystery")

    def test_filter_equality_and_membership(self, synthetic):
        assert len(synthetic.filter(scenario="noBG")) == 2
        assert len(synthetic.filter(scenario="noBG", buffer=8)) == 1
        assert len(synthetic.filter(buffer=(8, 256))) == 4  # membership
        low = synthetic.filter(lambda r: r.value("talks") < 4.0)
        assert [r.scenario for r in low] == ["long-few", "long-few"]

    def test_group_by_and_aggregate(self, synthetic):
        groups = synthetic.group_by("scenario")
        assert set(groups) == {"noBG", "long-few"}
        assert len(groups["noBG"]) == 2
        means = synthetic.aggregate("talks", agg="mean", by="scenario")
        assert means["noBG"] == pytest.approx((4.2 + 4.1) / 2)
        assert synthetic.aggregate("talks", agg="min") == 1.2
        assert synthetic.aggregate("talks", agg="count") == 4
        assert synthetic.aggregate("talks", agg="median") == pytest.approx(
            (3.0 + 4.1) / 2)

    def test_pivot_is_heatmap_shaped(self, synthetic):
        grid = synthetic.pivot("scenario", "buffer", "talks")
        assert grid[("long-few", 256)] == 1.2
        assert grid[("noBG", 8)] == 4.2
        assert len(grid) == 4

    def test_sort_and_merge(self, synthetic):
        by_talks = synthetic.sort("talks")
        assert [r.value("talks") for r in by_talks] == [1.2, 3.0, 4.1, 4.2]
        merged = synthetic.merge(ResultSet([voip_record("x", 8, 2.0, 2.0)]))
        assert len(merged) == 5
        assert len(synthetic) == 4  # merge is non-destructive

    def test_from_stream_restores_task_order(self, synthetic):
        shuffled = [synthetic[2], synthetic[0], synthetic[3], synthetic[1]]
        rs = ResultSet.from_stream(shuffled)
        assert [r.index for r in rs] == [0, 1, 2, 3]
        assert rs == synthetic

    def test_from_stream_accepts_task_record_pairs(self, synthetic):
        rs = ResultSet.from_stream(
            (object(), record) for record in synthetic)
        assert rs == synthetic

    def test_to_mapping_requires_keys(self, synthetic):
        mapping = synthetic.to_mapping()
        assert mapping[("noBG", 8, "droptail")] == synthetic[0].payload
        keyless = ResultSet([VoipResult(
            scenario="s", buffer_packets=8, seed=0, discipline="droptail",
            params=(), payload={"talks": 1.0})])
        with pytest.raises(KeyError):
            keyless.to_mapping()

    def test_csv_handles_heterogeneous_columns(self, synthetic):
        other = ResultSet([WebResult(
            scenario="w", buffer_packets=8, seed=0, discipline="droptail",
            params=(), payload={"median_plt": 1.0, "mos": 4.0,
                                "p80_plt": 1.2, "plts": [1.0]},
            key=("w", 8))])
        text = synthetic.merge(other).to_csv()
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 5
        assert rows[0]["median_plt"] == ""  # missing column left empty
        assert rows[4]["median_plt"] == "1.0"


class TestStreamingAggregation:
    def test_matches_batch_aggregate(self, synthetic):
        streamed = StreamAggregator("talks", by="scenario").consume(
            synthetic).result()
        batch = synthetic.aggregate("talks", agg="mean", by="scenario")
        for scenario, stats in streamed.items():
            assert stats["mean"] == pytest.approx(batch[scenario])
        assert streamed["noBG"]["count"] == 2
        assert streamed["long-few"]["min"] == 1.2
        assert streamed["long-few"]["max"] == 3.0

    def test_groupless_and_helper(self, synthetic):
        flat = aggregate_stream(synthetic, "talks")
        assert flat["count"] == 4
        assert flat["sum"] == pytest.approx(4.2 + 4.1 + 3.0 + 1.2)

    def test_empty_stream_is_not_an_all_zero_aggregate(self):
        flat = aggregate_stream([], "talks")
        assert flat["count"] == 0
        assert flat["mean"] is None  # 'no data', not MOS 0.0
        assert flat["min"] is None and flat["max"] is None
        assert aggregate_stream([], "talks", by="scenario") == {}

    def test_constant_memory_contract(self, synthetic):
        # The aggregator must keep per-group counters, not records.
        agg = StreamAggregator("talks", by="scenario").consume(synthetic)
        assert len(agg._groups) == 2
        for state in agg._groups.values():
            assert isinstance(state, list) and len(state) == 4


class TestConvertHelpers:
    def test_key_str_and_format_buffer(self):
        assert key_str(("long-few", 64, "codel")) == "long-few/64/codel"
        assert format_buffer(64) == "64"
        assert format_buffer((64, 8)) == "64:8"

    def test_flatten_metrics(self):
        flat = flatten_metrics({"a": 1.5, "b": {"c": 2, "d": {"e": 3}},
                                "s": "text", "l": [1, 2], "f": True})
        assert flat == {"a": 1.5, "b.c": 2, "b.d.e": 3}

    def test_jsonify_reexported_and_canonical(self):
        import numpy as np

        assert jsonify({"a": np.float64(1.5), "b": (1, 2)}) == {
            "a": 1.5, "b": [1, 2]}
        from repro.runner.execute import jsonify as runner_jsonify

        assert runner_jsonify is jsonify  # one copy, not three

    def test_unknown_kind_rejected(self):
        class Fake:
            kind = "quantum"

        with pytest.raises(ValueError):
            record_from_payload(Fake(), {})

    def test_base_record_value_errors_name_unknown_columns(self):
        record = CellResult(scenario="s", buffer_packets=8, seed=0,
                            discipline="droptail", params=(),
                            payload={"x": 1.0})
        assert record.value("x") == 1.0
        with pytest.raises(KeyError):
            record.value("y")
