"""Tests for the ``python -m repro`` command line (repro.cli)."""

import csv
import io
import json

import pytest

from repro.cli import _parse_buffer, build_parser, main
from repro.core.registry import REGISTRY, get


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point every CLI run at a private cache and a single worker."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_WORKERS", "1")
    monkeypatch.delenv("REPRO_SCALE", raising=False)


class TestParsing:
    def test_buffer_tokens(self):
        assert _parse_buffer("64") == 64
        assert _parse_buffer("64:8") == (64, 8)

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_sweep_exits_cleanly(self):
        with pytest.raises(SystemExit):
            main(["describe", "fig99"])


class TestList:
    def test_lists_every_registered_sweep(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in REGISTRY:
            assert name in out

    def test_json_output(self, capsys):
        assert main(["list", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert {entry["name"] for entry in entries} == set(REGISTRY)
        for entry in entries:
            assert entry["cells"] > 0


class TestDescribe:
    def test_plain(self, capsys):
        assert main(["describe", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "long-many" in out

    def test_hashes_match_spec_tasks(self, capsys):
        assert main(["describe", "fig5", "--json", "--hashes"]) == 0
        description = json.loads(capsys.readouterr().out)
        spec = get("fig5")
        expected = {task.content_hash() for task in spec.tasks()}
        assert set(description["cell_hashes"].values()) == expected

    def test_scale_override(self, capsys):
        assert main(["describe", "fig7b", "--json", "--scale", "4"]) == 0
        description = json.loads(capsys.readouterr().out)
        assert len(description["workloads"]) == 5


class TestRun:
    def test_tiny_override_run(self, capsys):
        code = main(["run", "wireless-qos", "--workloads", "long-few",
                     "--buffers", "8", "--duration", "2", "--warmup", "1",
                     "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "long-few/8" in out
        assert "util" in out

    def test_json_run(self, capsys):
        code = main(["run", "wireless-qos", "--workloads", "long-few",
                     "--buffers", "8", "--duration", "2", "--warmup", "1",
                     "--no-cache", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "long-few/8" in payload
        assert payload["long-few/8"]["duration"] == 2.0

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig5", "--workloads", "mystery"])

    def test_unknown_discipline_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig5", "--discipline", "fifo"])

    def test_malformed_buffers_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig5", "--buffers", "8x"])

    def test_duration_override_is_literal_under_scale(self, capsys,
                                                      monkeypatch):
        # --duration must mean simulated seconds, not seconds*REPRO_SCALE.
        monkeypatch.setenv("REPRO_SCALE", "4")
        code = main(["run", "wireless-qos", "--workloads", "long-few",
                     "--buffers", "8", "--duration", "2", "--warmup", "1",
                     "--no-cache", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["long-few/8"]["duration"] == 2.0

    def test_per_direction_buffer_override(self, capsys):
        code = main(["run", "wireless-qos", "--workloads", "long-few",
                     "--buffers", "16:4", "--duration", "2", "--warmup",
                     "1", "--no-cache"])
        assert code == 0
        assert "long-few/(16, 4)" in capsys.readouterr().out

    def test_format_json_matches_json_flag(self, capsys):
        argv = ["run", "wireless-qos", "--workloads", "long-few",
                "--buffers", "8", "--duration", "2", "--warmup", "1"]
        assert main(argv + ["--json"]) == 0
        legacy = capsys.readouterr().out
        assert main(argv + ["--format", "json"]) == 0
        assert capsys.readouterr().out == legacy

    def test_format_csv(self, capsys):
        code = main(["run", "wireless-qos", "--workloads", "long-few",
                     "--buffers", "8", "--duration", "2", "--warmup", "1",
                     "--format", "csv"])
        assert code == 0
        rows = list(csv.DictReader(io.StringIO(capsys.readouterr().out)))
        assert len(rows) == 1
        assert rows[0]["key"] == "long-few/8"
        assert float(rows[0]["down_utilization"]) > 0.0


#: One tiny export per cell kind (the CI smoke runs the same quartet).
EXPORT_CASES = {
    "qos": ["export", "wireless-qos", "--workloads", "long-few",
            "--buffers", "8", "--duration", "1", "--warmup", "0.5"],
    "voip": ["export", "fig7a", "--workloads", "noBG", "--buffers", "8",
             "--duration", "1", "--warmup", "0.5"],
    "video": ["export", "fig9a", "--workloads", "noBG", "--buffers", "8",
              "--duration", "1", "--warmup", "0.5"],
    "web": ["export", "fig10b", "--workloads", "noBG", "--buffers", "8",
            "--warmup", "0.5"],
}


class TestExport:
    @pytest.mark.parametrize("kind", sorted(EXPORT_CASES))
    def test_csv_per_kind_is_parseable_and_nonempty(self, kind, capsys):
        assert main(EXPORT_CASES[kind]) == 0
        rows = list(csv.DictReader(io.StringIO(capsys.readouterr().out)))
        assert rows, "export produced an empty CSV"
        assert all(row["kind"] == kind for row in rows)
        # Every row carries at least one parseable numeric metric.
        metric = {"qos": "down_utilization", "voip": "listens",
                  "video": "ssim", "web": "median_plt"}[kind]
        for row in rows:
            float(row[metric])

    def test_json_format(self, capsys):
        assert main(EXPORT_CASES["qos"] + ["--format", "json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert len(entries) == 1
        assert entries[0]["kind"] == "qos"
        assert entries[0]["payload"]["duration"] == 1.0

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "out.csv"
        assert main(EXPORT_CASES["qos"] + ["--output", str(target)]) == 0
        assert "wrote 1 records" in capsys.readouterr().err
        rows = list(csv.DictReader(target.open()))
        assert len(rows) == 1

    def test_cached_only_round_trip(self, capsys):
        # Cold cache: nothing to export.
        argv = EXPORT_CASES["qos"]
        assert main(argv + ["--cached-only"]) == 1
        capsys.readouterr()
        # Run once (fills the isolated cache), then export cache-only.
        assert main(argv) == 0
        ran = capsys.readouterr().out
        assert main(argv + ["--cached-only"]) == 0
        captured = capsys.readouterr()
        assert captured.out == ran
        assert "partial" not in captured.err  # full grid, no warning

    def test_cached_only_partial_grid_is_reported(self, capsys):
        # Cache only one of two cells, then export the two-cell grid.
        one = EXPORT_CASES["qos"]
        assert main(one) == 0
        capsys.readouterr()
        two = [arg if arg != "8" else "8,16" for arg in one]
        assert main(two + ["--cached-only"]) == 0
        captured = capsys.readouterr()
        assert "partial grid — only 1 of 2 cells cached" in captured.err
        assert len(captured.out.strip().splitlines()) == 2  # header + 1 row
