"""Tests for the ``python -m repro`` command line (repro.cli)."""

import json

import pytest

from repro.cli import _parse_buffer, build_parser, main
from repro.core.registry import REGISTRY, get


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point every CLI run at a private cache and a single worker."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_WORKERS", "1")
    monkeypatch.delenv("REPRO_SCALE", raising=False)


class TestParsing:
    def test_buffer_tokens(self):
        assert _parse_buffer("64") == 64
        assert _parse_buffer("64:8") == (64, 8)

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_sweep_exits_cleanly(self):
        with pytest.raises(SystemExit):
            main(["describe", "fig99"])


class TestList:
    def test_lists_every_registered_sweep(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in REGISTRY:
            assert name in out

    def test_json_output(self, capsys):
        assert main(["list", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert {entry["name"] for entry in entries} == set(REGISTRY)
        for entry in entries:
            assert entry["cells"] > 0


class TestDescribe:
    def test_plain(self, capsys):
        assert main(["describe", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "long-many" in out

    def test_hashes_match_spec_tasks(self, capsys):
        assert main(["describe", "fig5", "--json", "--hashes"]) == 0
        description = json.loads(capsys.readouterr().out)
        spec = get("fig5")
        expected = {task.content_hash() for task in spec.tasks()}
        assert set(description["cell_hashes"].values()) == expected

    def test_scale_override(self, capsys):
        assert main(["describe", "fig7b", "--json", "--scale", "4"]) == 0
        description = json.loads(capsys.readouterr().out)
        assert len(description["workloads"]) == 5


class TestRun:
    def test_tiny_override_run(self, capsys):
        code = main(["run", "wireless-qos", "--workloads", "long-few",
                     "--buffers", "8", "--duration", "2", "--warmup", "1",
                     "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "long-few/8" in out
        assert "util" in out

    def test_json_run(self, capsys):
        code = main(["run", "wireless-qos", "--workloads", "long-few",
                     "--buffers", "8", "--duration", "2", "--warmup", "1",
                     "--no-cache", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "long-few/8" in payload
        assert payload["long-few/8"]["duration"] == 2.0

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig5", "--workloads", "mystery"])

    def test_unknown_discipline_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig5", "--discipline", "fifo"])

    def test_malformed_buffers_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig5", "--buffers", "8x"])

    def test_duration_override_is_literal_under_scale(self, capsys,
                                                      monkeypatch):
        # --duration must mean simulated seconds, not seconds*REPRO_SCALE.
        monkeypatch.setenv("REPRO_SCALE", "4")
        code = main(["run", "wireless-qos", "--workloads", "long-few",
                     "--buffers", "8", "--duration", "2", "--warmup", "1",
                     "--no-cache", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["long-few/8"]["duration"] == 2.0

    def test_per_direction_buffer_override(self, capsys):
        code = main(["run", "wireless-qos", "--workloads", "long-few",
                     "--buffers", "16:4", "--duration", "2", "--warmup",
                     "1", "--no-cache"])
        assert code == 0
        assert "long-few/(16, 4)" in capsys.readouterr().out
