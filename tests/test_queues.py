"""Tests for drop-tail, RED and CoDel queue disciplines."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from proputil import seeded_property
from repro.sim.packet import Packet
from repro.sim.queues import (
    CoDelQueue,
    DropTailQueue,
    Queue,
    REDQueue,
    UnmeteredDropTailQueue,
)


def make_packet(size=1500):
    return Packet(src=1, dst=2, sport=1, dport=2, proto="udp", size=size)


class TestDropTail:
    def test_fifo_order(self):
        queue = DropTailQueue(capacity_packets=10)
        packets = [make_packet() for __ in range(5)]
        for index, packet in enumerate(packets):
            assert queue.push(packet, now=float(index))
        popped = [queue.pop(now=10.0) for __ in range(5)]
        assert popped == packets
        assert queue.pop(now=11.0) is None

    def test_packet_capacity_enforced(self):
        queue = DropTailQueue(capacity_packets=3)
        assert all(queue.push(make_packet(), 0.0) for __ in range(3))
        assert not queue.push(make_packet(), 0.0)
        assert len(queue) == 3
        assert queue.stats.dropped == 1
        assert queue.stats.enqueued == 3

    def test_byte_capacity_enforced(self):
        queue = DropTailQueue(capacity_bytes=4000)
        assert queue.push(make_packet(1500), 0.0)
        assert queue.push(make_packet(1500), 0.0)
        assert not queue.push(make_packet(1500), 0.0)  # 4500 > 4000
        assert queue.push(make_packet(500), 0.0)
        assert queue.byte_length == 3500

    def test_requires_some_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue()

    def test_sojourn_stats(self):
        queue = DropTailQueue(capacity_packets=10)
        queue.push(make_packet(), now=1.0)
        queue.push(make_packet(), now=1.5)
        queue.pop(now=2.0)
        queue.pop(now=3.0)
        assert queue.stats.delay_samples == 2
        assert queue.stats.mean_delay == pytest.approx((1.0 + 1.5) / 2)
        assert queue.stats.delay_max == pytest.approx(1.5)

    def test_loss_rate(self):
        queue = DropTailQueue(capacity_packets=2)
        for __ in range(4):
            queue.push(make_packet(), 0.0)
        assert queue.stats.loss_rate == pytest.approx(0.5)

    def test_stats_reset_preserves_contents(self):
        queue = DropTailQueue(capacity_packets=5)
        queue.push(make_packet(), 0.0)
        queue.stats.reset()
        assert queue.stats.enqueued == 0
        assert len(queue) == 1

    def test_occupancy_recorded_on_enqueue(self):
        queue = DropTailQueue(capacity_packets=3)
        for __ in range(3):
            queue.push(make_packet(), 0.0)
        assert queue.stats.occupancy_samples == [1, 2, 3]
        queue.push(make_packet(), 0.0)  # dropped: no occupancy sample
        assert queue.stats.occupancy_samples == [1, 2, 3]
        queue.pop(1.0)
        queue.push(make_packet(), 1.0)
        assert queue.stats.occupancy_samples == [1, 2, 3, 3]
        assert queue.stats.mean_occupancy == pytest.approx(2.25)

    def test_occupancy_cleared_on_reset(self):
        queue = DropTailQueue(capacity_packets=5)
        queue.push(make_packet(), 0.0)
        queue.stats.reset()
        assert queue.stats.occupancy_samples == []
        assert queue.stats.mean_occupancy == 0.0
        queue.push(make_packet(), 1.0)
        assert queue.stats.occupancy_samples == [2]


class TestRed:
    def test_no_drops_below_min_threshold(self):
        rng = np.random.default_rng(1)
        queue = REDQueue(capacity_packets=100, min_th=20, max_th=60, rng=rng)
        for __ in range(10):
            assert queue.push(make_packet(), 0.0)
        assert queue.stats.dropped == 0

    def test_probabilistic_drops_between_thresholds(self):
        rng = np.random.default_rng(2)
        queue = REDQueue(capacity_packets=1000, min_th=5, max_th=15,
                         max_p=0.5, weight=0.5, rng=rng)
        drops = 0
        now = 0.0
        for __ in range(500):
            if not queue.push(make_packet(), now):
                drops += 1
            now += 0.001
        assert drops > 0
        assert drops < 500

    def test_forced_drop_above_gentle_region(self):
        queue = REDQueue(capacity_packets=1000, min_th=1, max_th=2,
                         max_p=0.1, weight=1.0)
        # Fill until the EWMA is far above 2*max_th: every push must drop.
        for __ in range(20):
            queue.push(make_packet(), 0.0)
        assert not queue.push(make_packet(), 0.0)

    def test_average_decays_when_idle(self):
        queue = REDQueue(capacity_packets=100, min_th=5, max_th=20, weight=0.5)
        for __ in range(10):
            queue.push(make_packet(), 0.0)
        while queue.pop(1.0) is not None:
            pass
        high = queue.avg
        queue.push(make_packet(), 10.0)  # long idle period decays the EWMA
        assert queue.avg < high


class TestCoDel:
    def test_behaves_like_fifo_at_low_delay(self):
        queue = CoDelQueue(capacity_packets=100)
        now = 0.0
        dropped = 0
        for step in range(200):
            if not queue.push(make_packet(), now):
                dropped += 1
            packet = queue.pop(now + 0.001)  # 1 ms sojourn << 5 ms target
            assert packet is not None
            now += 0.002
        assert dropped == 0
        assert queue.stats.dropped == 0

    def test_drops_under_sustained_delay(self):
        queue = CoDelQueue(capacity_packets=10_000, target=0.005, interval=0.1)
        # Arrivals at 2x the drain rate: sojourn times build far above target.
        now = 0.0
        for __ in range(2000):
            queue.push(make_packet(), now)
            now += 0.001
            if int(now * 1000) % 2 == 0:
                queue.pop(now)
        assert queue.stats.dropped > 0

    def test_capacity_still_enforced(self):
        queue = CoDelQueue(capacity_packets=3)
        for __ in range(5):
            queue.push(make_packet(), 0.0)
        assert len(queue) == 3

    def test_dropping_state_reentry_fast_restart(self):
        """Re-entering the dropping state shortly after leaving it resumes
        the control law near the old rate (drop_count = prev - 2) instead
        of restarting from 1."""
        queue = CoDelQueue(capacity_packets=100, target=0.005, interval=0.1)
        for __ in range(30):
            queue.push(make_packet(), 0.0)
        assert queue.pop(1.0) is not None   # arms first_above_time
        assert queue.pop(1.2) is not None   # enters dropping, count = 1
        assert queue.dropping
        assert queue.drop_count == 1
        queue.pop(1.35)                     # control-law drops build count
        queue.pop(1.45)
        # Drain to a small backlog so the sojourn test passes and the
        # queue leaves the dropping state.
        while len(queue) > 4:
            queue.pop(1.5)
        assert not queue.dropping
        prev = queue.drop_count
        assert prev > 2                     # precondition of the fast path
        # Congest again within 8*interval of drop_next.
        for __ in range(10):
            queue.push(make_packet(), 1.5)
        assert queue.pop(1.7) is not None   # re-arms first_above_time
        assert queue.pop(1.81) is not None  # re-enters the dropping state
        assert queue.dropping
        assert queue.drop_count == prev - 2

    def test_dropping_state_reentry_cold_after_long_gap(self):
        """Well beyond 8*interval after the last drop, re-entry restarts
        the control law from drop_count = 1."""
        queue = CoDelQueue(capacity_packets=100, target=0.005, interval=0.1)
        for __ in range(30):
            queue.push(make_packet(), 0.0)
        queue.pop(1.0)
        queue.pop(1.2)
        queue.pop(1.35)
        queue.pop(1.45)
        while len(queue) > 4:
            queue.pop(1.5)
        assert not queue.dropping
        assert queue.drop_count > 2
        for __ in range(10):
            queue.push(make_packet(), 10.0)
        queue.pop(11.0)                     # sojourn 1 s: arms first_above
        assert queue.pop(11.11) is not None
        assert queue.dropping
        assert queue.drop_count == 1


@given(
    st.lists(
        st.tuples(st.sampled_from(["push", "pop"]), st.integers(40, 1500)),
        max_size=200,
    ),
    st.integers(min_value=1, max_value=20),
)
@settings(max_examples=100)
def test_property_droptail_never_exceeds_capacity(ops, capacity):
    queue = DropTailQueue(capacity_packets=capacity)
    now = 0.0
    model = []
    for op, size in ops:
        now += 0.001
        if op == "push":
            accepted = queue.push(make_packet(size), now)
            assert accepted == (len(model) < capacity)
            if accepted:
                model.append(size)
        else:
            packet = queue.pop(now)
            if model:
                assert packet is not None and packet.size == model.pop(0)
            else:
                assert packet is None
        assert len(queue) == len(model)
        assert queue.byte_length == sum(model)
        assert len(queue) <= capacity


@given(st.lists(st.integers(40, 1500), min_size=1, max_size=100))
@settings(max_examples=50)
def test_property_conservation(sizes):
    """enqueued == dequeued + still queued, in packets and bytes."""
    queue = DropTailQueue(capacity_packets=30)
    for index, size in enumerate(sizes):
        queue.push(make_packet(size), float(index))
        if index % 3 == 0:
            queue.pop(float(index))
    stats = queue.stats
    assert stats.enqueued == stats.dequeued + len(queue)
    assert stats.bytes_enqueued == stats.bytes_dequeued + queue.byte_length
    assert stats.enqueued + stats.dropped == len(sizes)


# ---------------------------------------------------------------------------
# Conservation property across every discipline: whatever the drop
# policy does, packets and bytes must balance exactly.
# ---------------------------------------------------------------------------
def _discipline_queues(rng):
    capacity = rng.randint(1, 24)
    return [
        DropTailQueue(capacity_packets=capacity),
        REDQueue(capacity_packets=max(capacity, 4),
                 rng=random.Random(rng.randrange(2 ** 31))),
        # Tight CoDel knobs so pop-time drops actually trigger within a
        # short random schedule.
        CoDelQueue(capacity_packets=max(capacity, 4), target=0.001,
                   interval=0.005),
        UnmeteredDropTailQueue(capacity_packets=capacity),
    ]


@seeded_property()
def test_property_conservation_all_disciplines(seed):
    rng = random.Random(seed)
    for queue in _discipline_queues(rng):
        accepted = rejected = returned = 0
        bytes_accepted = bytes_returned = 0
        now = 0.0
        for __ in range(rng.randint(1, 250)):
            now += rng.random() * 0.01
            if rng.random() < 0.6:
                size = rng.randint(40, 1500)
                if queue.push(make_packet(size), now):
                    accepted += 1
                    bytes_accepted += size
                else:
                    rejected += 1
            else:
                packet = queue.pop(now)
                if packet is not None:
                    returned += 1
                    bytes_returned += packet.size

        stats = queue.stats
        # Universal invariants: counters never negative, rates bounded.
        for field in ("enqueued", "dropped", "dequeued", "bytes_enqueued",
                      "bytes_dropped", "bytes_dequeued", "delay_samples"):
            assert getattr(stats, field) >= 0, field
        assert 0.0 <= stats.loss_rate <= 1.0
        assert stats.delay_max >= 0.0
        assert stats.delay_sum >= 0.0
        assert queue.byte_length >= 0
        assert len(queue) >= 0

        if isinstance(queue, UnmeteredDropTailQueue):
            # Unmetered: conservation holds against the caller's ledger
            # (its stats stay zeroed unless a drop fires the fallback).
            assert len(queue) == accepted - returned
            assert queue.byte_length == bytes_accepted - bytes_returned
            assert stats.enqueued == stats.dequeued == 0
            assert stats.dropped == rejected
            continue

        # Metered disciplines: exact packet and byte conservation.
        assert stats.enqueued == accepted
        assert len(queue) == stats.enqueued - stats.dequeued
        assert queue.byte_length == stats.bytes_enqueued - stats.bytes_dequeued
        # CoDel drops at dequeue: those packets count in BOTH dequeued
        # and dropped; everything the caller got back plus pop-drops
        # equals the dequeue count.
        pop_drops = stats.dropped - rejected
        assert pop_drops >= 0
        assert stats.dequeued == returned + pop_drops
        assert stats.bytes_dequeued >= bytes_returned
        assert stats.delay_samples == stats.dequeued
        assert stats.enqueued + rejected == accepted + rejected


@seeded_property(max_examples=40)
def test_property_fifo_order_preserved(seed):
    """No discipline reorders the packets it actually delivers."""
    rng = random.Random(seed)
    for queue in _discipline_queues(rng):
        pushed, popped = [], []
        now = 0.0
        for index in range(rng.randint(1, 150)):
            now += rng.random() * 0.01
            if rng.random() < 0.6:
                packet = make_packet(rng.randint(40, 1500))
                if queue.push(packet, now):
                    pushed.append(packet.pid)
            else:
                packet = queue.pop(now)
                if packet is not None:
                    popped.append(packet.pid)
        # Delivered packets are a subsequence of accepted ones, in order.
        iterator = iter(pushed)
        assert all(pid in iterator for pid in popped)
