"""Tests for the reproduction-report subsystem (repro.report).

Covers the fidelity engine (known rank-correlation/deviation values,
verdict threshold edges, SKIP paths), the SVG layer (well-formedness),
the fidelity.json schema validator, report generation end to end, and
byte-identical regeneration of the committed ``docs/sample_report/``.
"""

import json
import os
import xml.etree.ElementTree as ElementTree

import pytest

from repro.report import build, fidelity, schema, svg
from repro.report.fidelity import (
    FAIL,
    PASS,
    SKIP,
    WARN,
    FigureCheck,
    MonotoneSpec,
    SeriesSpec,
    Thresholds,
    evaluate,
    spearman,
)
from repro.report.figures import REPORT_FIGURES
from repro.results.record import VoipResult
from repro.results.set import ResultSet

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_WORKERS", "1")
    monkeypatch.delenv("REPRO_SCALE", raising=False)


# ---------------------------------------------------------------------------
# Rank statistics.
# ---------------------------------------------------------------------------
class TestSpearman:
    def test_perfect_agreement(self):
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_inversion(self):
        assert spearman([1, 2, 3], [9, 5, 1]) == pytest.approx(-1.0)

    def test_known_value(self):
        # One adjacent swap in n=4: rho = 1 - 6*2/(4*15) = 0.8.
        assert spearman([1, 2, 3, 4], [1, 3, 2, 4]) == pytest.approx(0.8)

    def test_ties_share_average_ranks(self):
        assert spearman([1, 1, 2], [5, 5, 9]) == pytest.approx(1.0)

    def test_constant_side_is_undefined(self):
        assert spearman([1, 2, 3], [7, 7, 7]) is None

    def test_too_short_is_undefined(self):
        assert spearman([1], [2]) is None

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            spearman([1, 2], [1, 2, 3])


# ---------------------------------------------------------------------------
# Fidelity engine on hand-built ResultSets.
# ---------------------------------------------------------------------------
def voip_set(talks_by_cell):
    """A keyed VoIP ResultSet from ``{(workload, buffer): talks MOS}``."""
    records = []
    for index, (key, talks) in enumerate(sorted(talks_by_cell.items())):
        records.append(VoipResult(
            scenario=key[0], buffer_packets=key[1], seed=0,
            discipline="droptail", params=(),
            payload={"talks": talks, "delay": {"talks": 0.15}},
            key=key, index=index))
    return ResultSet(records)


PAPER = {("w", 8): 4.0, ("w", 64): 3.0, ("w", 256): 2.0}


def check_with(thresholds):
    return FigureCheck(figure="test", units="MOS",
                       series=(SeriesSpec("talks", PAPER, "talks"),),
                       thresholds=thresholds)


class TestEvaluate:
    def test_exact_reproduction_passes(self):
        results = voip_set({key: value for key, value in PAPER.items()})
        scored = evaluate(check_with(Thresholds(
            max_deviation_pass=0.5, rank_pass=0.9, trend_pass=0.9,
            flat_epsilon=0.5)), results)
        assert scored.verdict == PASS
        assert scored.compared == 3
        assert scored.metrics["max_abs_deviation"] == 0.0
        assert scored.metrics["buffer_rank_correlation"] \
            == pytest.approx(1.0)
        assert scored.metrics["trend_agreement"] == 1.0

    def test_known_deviation_value(self):
        results = voip_set({("w", 8): 4.2, ("w", 64): 3.0, ("w", 256): 1.7})
        scored = evaluate(check_with(Thresholds(max_deviation_pass=0.5)),
                          results)
        assert scored.metrics["max_abs_deviation"] == pytest.approx(0.3)
        assert scored.metrics["mean_abs_deviation"] \
            == pytest.approx(0.5 / 3)

    def test_deviation_threshold_edges(self):
        # Exactly at the pass bound -> PASS; between bounds -> WARN;
        # beyond the warn bound -> FAIL.
        results = voip_set({("w", 8): 4.5, ("w", 64): 3.0, ("w", 256): 2.0})
        for pass_bound, warn_bound, expected in (
                (0.5, 1.0, PASS), (0.49, 0.5, WARN), (0.2, 0.49, FAIL)):
            scored = evaluate(check_with(Thresholds(
                max_deviation_pass=pass_bound,
                max_deviation_warn=warn_bound)), results)
            assert scored.verdict == expected, (pass_bound, expected)

    def test_inverted_ordering_fails_rank_gate(self):
        results = voip_set({("w", 8): 2.0, ("w", 64): 3.0, ("w", 256): 4.0})
        scored = evaluate(check_with(Thresholds(
            rank_pass=0.6, rank_warn=0.0, flat_epsilon=0.5)), results)
        assert scored.metrics["buffer_rank_correlation"] \
            == pytest.approx(-1.0)
        assert scored.metrics["trend_agreement"] == 0.0
        assert scored.verdict == FAIL

    def test_flat_epsilon_excludes_row_from_rank_gate(self):
        # Paper range is 2.0; a flat_epsilon above that removes the only
        # row, the buffer-axis metrics become undefined and the pooled
        # rank correlation takes over the gate.
        results = voip_set({("w", 8): 2.0, ("w", 64): 3.0, ("w", 256): 4.0})
        scored = evaluate(check_with(Thresholds(
            rank_pass=0.6, rank_warn=0.0, flat_epsilon=2.5)), results)
        assert scored.metrics["buffer_rank_correlation"] is None
        assert scored.metrics["trend_agreement"] is None
        assert scored.gates["rank_correlation"]["value"] \
            == pytest.approx(-1.0)  # pooled
        assert scored.verdict == FAIL

    def test_verdict_is_worst_gate(self):
        results = voip_set({("w", 8): 4.0, ("w", 64): 3.0, ("w", 256): 2.0})
        scored = evaluate(check_with(Thresholds(
            max_deviation_pass=0.5,          # PASS (deviation 0)
            rank_pass=1.1, rank_warn=0.9,    # WARN (rho 1.0 < 1.1)
            flat_epsilon=0.5)), results)
        assert scored.verdict == WARN

    def test_no_overlap_skips(self):
        results = voip_set({("other", 8): 4.0})
        scored = evaluate(check_with(Thresholds(max_deviation_pass=0.5)),
                          results)
        assert scored.verdict == SKIP
        assert "no overlap" in scored.notes

    def test_empty_results_skip(self):
        scored = evaluate(check_with(Thresholds(max_deviation_pass=0.5)),
                          ResultSet())
        assert scored.verdict == SKIP

    def test_unknown_figure_skips(self):
        assert fidelity.check_for("aqm-voip") is None
        assert fidelity.skip("aqm-voip").verdict == SKIP

    def test_monotone_expectation(self):
        check = FigureCheck(
            figure="mono", units="pp",
            monotone=(MonotoneSpec("up", "talks", direction=1),),
            thresholds=Thresholds(rank_pass=0.8, rank_warn=0.0))
        rising = voip_set({("w", 8): 1.0, ("w", 64): 2.0, ("w", 256): 3.0})
        falling = voip_set({("w", 8): 3.0, ("w", 64): 2.0, ("w", 256): 1.0})
        assert evaluate(check, rising).verdict == PASS
        scored = evaluate(check, falling)
        assert scored.metrics["monotonicity"] == pytest.approx(-1.0)
        assert scored.verdict == FAIL

    def test_table2_closed_form_passes(self):
        scored = fidelity.table2_fidelity()
        assert scored.verdict == PASS
        assert scored.compared > 0

    def test_every_production_check_names_a_report_figure(self):
        for name in fidelity.CHECKS:
            assert name in REPORT_FIGURES, name

    def test_fidelity_json_roundtrip(self):
        results = voip_set({key: value for key, value in PAPER.items()})
        scored = evaluate(check_with(Thresholds(max_deviation_pass=0.5)),
                          results)
        document = scored.to_json()
        assert json.loads(json.dumps(document)) == document
        assert document["verdict"] == PASS


# ---------------------------------------------------------------------------
# SVG layer.
# ---------------------------------------------------------------------------
class TestSvg:
    def test_heatmap_is_well_formed_xml(self):
        markup = svg.heatmap_panels(
            "t & t", [("panel <1>", ["row"], [8, 64],
                       lambda row, col: ("4.2", "+", "4.0")
                       if col == 8 else None)])
        root = ElementTree.fromstring(markup)
        assert root.tag.endswith("svg")

    def test_heatmap_uses_marker_colors(self):
        from repro.viz.heatmap import MARKER_COLORS

        markup = svg.heatmap_panels(
            "t", [("p", ["r"], [1], lambda row, col: ("x", "!", None))])
        assert MARKER_COLORS["!"][1] in markup

    def test_line_chart_well_formed(self):
        markup = svg.line_chart(
            "util", [8, 64, 256],
            [("down", [10.0, None, 30.0], [(5.0, 15.0), None,
                                           (25.0, 35.0)])],
            y_label="%")
        ElementTree.fromstring(markup)

    def test_table_well_formed_and_escaped(self):
        markup = svg.table("T <2>", ("a", "b"), [("1 & 2", "x")])
        ElementTree.fromstring(markup)
        assert "&amp;" in markup

    def test_deterministic(self):
        build_one = lambda: svg.line_chart(
            "t", [1, 2], [("s", [0.5, 1.5], None)])
        assert build_one() == build_one()


# ---------------------------------------------------------------------------
# Schema validator.
# ---------------------------------------------------------------------------
class TestSchemaValidator:
    SCHEMA = {
        "type": "object",
        "required": ["verdict"],
        "additionalProperties": False,
        "properties": {
            "verdict": {"enum": ["PASS", "FAIL"]},
            "value": {"type": ["number", "null"]},
            "tags": {"type": "array", "items": {"type": "string"}},
        },
    }

    def test_valid_document(self):
        assert schema.validate({"verdict": "PASS", "value": None,
                                "tags": ["a"]}, self.SCHEMA) == []

    def test_violations_are_reported_with_paths(self):
        errors = schema.validate({"verdict": "MAYBE", "value": "x",
                                  "extra": 1, "tags": [2]}, self.SCHEMA)
        text = "\n".join(errors)
        assert "$.verdict" in text
        assert "$.value" in text
        assert "extra" in text
        assert "$.tags[0]" in text

    def test_missing_required(self):
        errors = schema.validate({}, self.SCHEMA)
        assert any("verdict" in error for error in errors)

    def test_booleans_are_not_numbers(self):
        assert schema.validate(True, {"type": "number"})

    def test_unsupported_keyword_raises(self):
        with pytest.raises(ValueError):
            schema.validate({}, {"patternProperties": {}})

    def test_checked_in_schema_loads(self):
        path = os.path.join(ROOT, "docs", "fidelity.schema.json")
        with open(path, encoding="utf-8") as handle:
            json.load(handle)


# ---------------------------------------------------------------------------
# Report generation end to end (tiny sample).
# ---------------------------------------------------------------------------
class TestGenerateReport:
    def test_sample_report_end_to_end(self, tmp_path):
        out = tmp_path / "report"
        summary = build.generate_report(sample=True, out_dir=str(out),
                                        quiet=True)
        assert sorted(entry["figure"] for entry in summary["figures"]) \
            == sorted(build.SAMPLE_FIGURES)
        for name in build.SAMPLE_FIGURES:
            ElementTree.parse(out / ("%s.svg" % name))
        document = json.loads((out / "fidelity.json").read_text())
        schema_path = os.path.join(ROOT, "docs", "fidelity.schema.json")
        with open(schema_path, encoding="utf-8") as handle:
            assert schema.validate(document,
                                   json.load(handle)) == []
        index = (out / "index.md").read_text()
        for name in build.SAMPLE_FIGURES:
            assert "%s.svg" % name in index

    def test_cached_only_cold_cache_is_graceful(self, tmp_path):
        # Nothing cached: the report must still be produced, with SKIP
        # verdicts and honest 0/N coverage — and must not simulate.
        out = tmp_path / "report"
        summary = build.generate_report(["fig7a"], str(out),
                                        cached_only=True, quiet=True)
        entry = summary["figures"][0]
        assert entry["verdict"] == SKIP
        assert entry["cells_present"] == 0
        assert entry["cells_expected"] > 0
        assert "partial grid" in (out / "index.md").read_text()

    def test_cached_only_after_run_matches_bytes(self, tmp_path):
        first = tmp_path / "first"
        second = tmp_path / "second"
        build.generate_report(sample=True, out_dir=str(first), quiet=True)
        # Second pass: cache-only, zero simulations, identical bytes.
        build.generate_report(sample=True, out_dir=str(second),
                              cached_only=True, quiet=True)
        for name in os.listdir(first):
            assert (first / name).read_bytes() \
                == (second / name).read_bytes(), name

    def test_unknown_figure_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fig99"):
            build.generate_report(["fig99"], str(tmp_path), quiet=True)

    def test_sample_conflicts_are_rejected(self, tmp_path):
        # --sample must not silently override explicit names or scale.
        with pytest.raises(ValueError, match="figure names"):
            build.generate_report(["fig8"], str(tmp_path), sample=True,
                                  quiet=True)
        with pytest.raises(ValueError, match="scale"):
            build.generate_report(None, str(tmp_path), sample=True,
                                  scale=2.0, quiet=True)

    def test_trend_uses_highlighted_buffers(self):
        # A non-highlighted extreme (16) must not anchor the trend when
        # highlighted sizes (8, 256) are present: paper rises end to
        # end at the anchors, and the reproduction matching at the
        # anchors passes even though it dips at 16.
        paper = {("w", 8): 3.0, ("w", 16): 1.0, ("w", 256): 4.0}
        results = voip_set({("w", 8): 3.0, ("w", 16): 3.5,
                            ("w", 256): 4.0})
        check = FigureCheck(
            figure="t", units="MOS",
            series=(SeriesSpec("talks", paper, "talks"),),
            thresholds=Thresholds(trend_pass=1.0, flat_epsilon=0.5))
        scored = evaluate(check, results)
        assert scored.metrics["trend_agreement"] == 1.0

    def test_table2_needs_no_results(self, tmp_path):
        summary = build.generate_report(["table2"], str(tmp_path),
                                        cached_only=True, quiet=True)
        assert summary["figures"][0]["verdict"] == PASS

    def test_rescoped_run_removes_stale_figure_svgs(self, tmp_path):
        # A narrower re-run must not leave orphaned SVGs that the new
        # index.md/fidelity.json no longer reference; unrelated files
        # are untouched.
        build.generate_report(["table2", "fig7a"], str(tmp_path),
                              cached_only=True, quiet=True)
        (tmp_path / "notes.txt").write_text("keep me")
        build.generate_report(["table2"], str(tmp_path),
                              cached_only=True, quiet=True)
        assert not (tmp_path / "fig7a.svg").exists()
        assert (tmp_path / "table2.svg").exists()
        assert (tmp_path / "notes.txt").read_text() == "keep me"


class TestCommittedSample:
    def test_sample_report_regenerates_byte_identically(self, tmp_path):
        committed = os.path.join(ROOT, "docs", "sample_report")
        out = tmp_path / "regenerated"
        build.generate_report(sample=True, out_dir=str(out), quiet=True)
        generated = sorted(os.listdir(out))
        assert sorted(os.listdir(committed)) == generated
        for name in generated:
            with open(os.path.join(committed, name), "rb") as handle:
                expected = handle.read()
            assert (out / name).read_bytes() == expected, (
                "docs/sample_report/%s is stale — regenerate with "
                "`python -m repro report --sample -o docs/sample_report`"
                % name)


class TestReportCli:
    def test_report_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "rep"
        assert main(["report", "--sample", "-o", str(out)]) == 0
        assert (out / "fidelity.json").exists()
        assert "PASS" in capsys.readouterr().err

    def test_unknown_name_exits_cleanly(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["report", "fig99", "-o", str(tmp_path)])

    def test_sample_with_names_exits_cleanly(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="renders exactly"):
            main(["report", "fig8", "--sample", "-o", str(tmp_path)])

    def test_schema_cli(self, tmp_path, capsys):
        from repro.report.schema import main as schema_main

        document = tmp_path / "doc.json"
        document.write_text('{"schema_version": 1, "scale": 1.0, '
                            '"figures": {}}')
        schema_path = os.path.join(ROOT, "docs", "fidelity.schema.json")
        assert schema_main([str(document), schema_path]) == 0
        document.write_text('{"scale": 1.0}')
        assert schema_main([str(document), schema_path]) == 1
