"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimTimeError, Simulator, Timer


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_simultaneous_events_fifo():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "late")
    executed = sim.run(until=2.0)
    assert executed == 0
    assert sim.now == 2.0
    assert fired == []
    sim.run(until=10.0)
    assert fired == ["late"]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimTimeError):
        sim.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    seen = []

    def first():
        seen.append(sim.now)
        sim.schedule(1.0, second)

    def second():
        seen.append(sim.now)

    sim.schedule(1.0, first)
    sim.run()
    assert seen == [1.0, 2.0]


def test_stop_halts_run():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: (seen.append(1), sim.stop()))
    sim.schedule(2.0, seen.append, 2)
    sim.run()
    assert seen == [1]
    assert sim.pending() == 1


def test_max_events_limit():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.schedule(i + 1.0, seen.append, i)
    executed = sim.run(max_events=4)
    assert executed == 4
    assert seen == [0, 1, 2, 3]


def test_max_events_break_does_not_fast_forward_clock():
    """Regression: a max_events break with events still pending before
    ``until`` must not jump the clock to ``until`` — the next run() would
    execute those events with the clock moving backwards."""
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(2.0, seen.append, "b")
    executed = sim.run(until=5.0, max_events=1)
    assert executed == 1
    assert seen == ["a"]
    assert sim.now == 1.0  # not 5.0: the 2.0 event has not run yet
    # Scheduling between the pending event and the old `until` is legal.
    sim.schedule_at(1.5, seen.append, "mid")
    sim.run(until=5.0)
    assert seen == ["a", "mid", "b"]
    assert sim.now == 5.0


def test_clock_never_moves_backwards_across_runs():
    sim = Simulator()
    times = []
    for t in (1.0, 2.0, 3.0):
        sim.schedule_at(t, lambda: times.append(sim.now))
    sim.run(until=10.0, max_events=2)
    sim.run(until=10.0)
    assert times == sorted(times)
    assert times == [1.0, 2.0, 3.0]


def test_run_until_skips_cancelled_events_when_fast_forwarding():
    # A cancelled event below `until` must not pin the clock.
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    late = sim.schedule(7.0, lambda: None)
    event.cancel()
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert not late.cancelled


def test_timer_restart_and_cancel():
    sim = Simulator()
    fires = []
    timer = Timer(sim, lambda: fires.append(sim.now))
    timer.start(1.0)
    assert timer.active
    timer.restart(2.0)
    sim.run()
    assert fires == [2.0]
    assert not timer.active

    timer.start(1.0)
    timer.cancel()
    timer.cancel()  # idempotent
    sim.run()
    assert fires == [2.0]


def test_timer_double_start_raises():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    timer.start(1.0)
    with pytest.raises(RuntimeError):
        timer.start(2.0)


def test_timer_expiry_property():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    assert timer.expiry is None
    timer.start(3.0)
    assert timer.expiry == 3.0
    sim.run()
    assert timer.expiry is None
