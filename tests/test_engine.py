"""Unit tests for the discrete-event engine."""

import random

import pytest

from proputil import seeded_property
from repro.sim.engine import SimTimeError, Simulator, Timer


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_simultaneous_events_fifo():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "late")
    executed = sim.run(until=2.0)
    assert executed == 0
    assert sim.now == 2.0
    assert fired == []
    sim.run(until=10.0)
    assert fired == ["late"]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimTimeError):
        sim.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    seen = []

    def first():
        seen.append(sim.now)
        sim.schedule(1.0, second)

    def second():
        seen.append(sim.now)

    sim.schedule(1.0, first)
    sim.run()
    assert seen == [1.0, 2.0]


def test_stop_halts_run():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: (seen.append(1), sim.stop()))
    sim.schedule(2.0, seen.append, 2)
    sim.run()
    assert seen == [1]
    assert sim.pending() == 1


def test_max_events_limit():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.schedule(i + 1.0, seen.append, i)
    executed = sim.run(max_events=4)
    assert executed == 4
    assert seen == [0, 1, 2, 3]


def test_max_events_break_does_not_fast_forward_clock():
    """Regression: a max_events break with events still pending before
    ``until`` must not jump the clock to ``until`` — the next run() would
    execute those events with the clock moving backwards."""
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(2.0, seen.append, "b")
    executed = sim.run(until=5.0, max_events=1)
    assert executed == 1
    assert seen == ["a"]
    assert sim.now == 1.0  # not 5.0: the 2.0 event has not run yet
    # Scheduling between the pending event and the old `until` is legal.
    sim.schedule_at(1.5, seen.append, "mid")
    sim.run(until=5.0)
    assert seen == ["a", "mid", "b"]
    assert sim.now == 5.0


def test_clock_never_moves_backwards_across_runs():
    sim = Simulator()
    times = []
    for t in (1.0, 2.0, 3.0):
        sim.schedule_at(t, lambda: times.append(sim.now))
    sim.run(until=10.0, max_events=2)
    sim.run(until=10.0)
    assert times == sorted(times)
    assert times == [1.0, 2.0, 3.0]


def test_run_until_skips_cancelled_events_when_fast_forwarding():
    # A cancelled event below `until` must not pin the clock.
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    late = sim.schedule(7.0, lambda: None)
    event.cancel()
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert not late.cancelled


def test_timer_restart_and_cancel():
    sim = Simulator()
    fires = []
    timer = Timer(sim, lambda: fires.append(sim.now))
    timer.start(1.0)
    assert timer.active
    timer.restart(2.0)
    sim.run()
    assert fires == [2.0]
    assert not timer.active

    timer.start(1.0)
    timer.cancel()
    timer.cancel()  # idempotent
    sim.run()
    assert fires == [2.0]


def test_timer_double_start_raises():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    timer.start(1.0)
    with pytest.raises(RuntimeError):
        timer.start(2.0)


def test_timer_expiry_property():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    assert timer.expiry is None
    timer.start(3.0)
    assert timer.expiry == 3.0
    sim.run()
    assert timer.expiry is None


# ---------------------------------------------------------------------------
# Fast-path API: call_later / call_at / schedule_many.
# ---------------------------------------------------------------------------
def test_call_later_and_call_at_fire_in_order():
    sim = Simulator()
    order = []
    sim.call_later(2.0, order.append, "b")
    sim.call_at(1.0, order.append, "a")
    sim.call_later(2.0, order.append, "c")  # same time: FIFO by seq
    sim.run()
    assert order == ["a", "b", "c"]
    with pytest.raises(SimTimeError):
        sim.call_at(0.5, order.append, "past")
    with pytest.raises(SimTimeError):
        sim.call_later(-1.0, order.append, "past")


def test_schedule_many_matches_loop_of_schedules():
    """Batch scheduling must consume sequence numbers in iteration order,
    exactly like an equivalent loop — tie-breaking is observable."""
    sim_a, sim_b = Simulator(), Simulator()
    order_a, order_b = [], []
    triples = [(1.0, order_a.append, (index,)) for index in range(5)]
    sim_a.schedule_many(iter(triples))
    for __, __unused, (index,) in triples:
        sim_b.schedule(1.0, order_b.append, index)
    assert sim_a.pending() == sim_b.pending() == 5
    sim_a.run()
    sim_b.run()
    assert order_a == order_b == [0, 1, 2, 3, 4]


def test_schedule_many_rejects_past_times():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimTimeError):
        sim.schedule_many([(0.5, lambda: None, ()), (-1.0, lambda: None, ())])
    # The valid first triple was still scheduled (documented best-effort).
    assert sim.pending() == 1


def test_max_events_zero_or_negative_runs_nothing():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "x")
    assert sim.run(max_events=0) == 0
    assert sim.run(max_events=-3) == 0
    assert fired == []
    assert sim.pending() == 1


def test_events_executed_accumulates():
    sim = Simulator()
    for index in range(5):
        sim.schedule(float(index + 1), lambda: None)
    sim.run(max_events=2)
    assert sim.events_executed == 2
    sim.run()
    assert sim.events_executed == 5


# ---------------------------------------------------------------------------
# Regression: cancel is O(1) lazy deletion, pending() is an exact counter.
# ---------------------------------------------------------------------------
def test_cancel_is_lazy_and_pending_is_exact():
    sim = Simulator()
    events = [sim.schedule(float(index + 1), lambda: None)
              for index in range(100)]
    assert sim.pending() == 100
    heap_size = len(sim._heap)
    for event in events[::2]:
        event.cancel()
    # Lazy deletion: cancellation must not touch the heap structure.
    assert len(sim._heap) == heap_size
    assert sim.pending() == 50
    for event in events[::2]:
        event.cancel()  # double cancel: exact no-op
    assert sim.pending() == 50
    executed = sim.run()
    assert executed == 50
    assert sim.pending() == 0
    events[1].cancel()  # cancel after fire: exact no-op
    assert sim.pending() == 0


def test_pending_consistent_through_lazy_deletion_sweep():
    """run(until=...) sweeps cancelled heads while fast-forwarding; the
    live counter must not drift."""
    sim = Simulator()
    cancelled = [sim.schedule(1.0, lambda: None) for __ in range(10)]
    keeper = sim.schedule(7.0, lambda: None)
    for event in cancelled:
        event.cancel()
    assert sim.pending() == 1
    sim.run(until=5.0)  # sweeps the cancelled entries below `until`
    assert sim.now == 5.0
    assert sim.pending() == 1
    assert not keeper.cancelled
    sim.run(until=10.0)
    assert sim.pending() == 0


def test_pending_is_consistent_mid_run():
    sim = Simulator()
    seen = []

    def probe():
        seen.append(sim.pending())

    for index in range(3):
        sim.schedule(float(index + 1), probe)
    sim.run()
    assert seen == [2, 1, 0]


def test_timer_restart_does_not_leak_pending():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    timer.start(5.0)
    for __ in range(50):
        timer.restart(5.0)
    assert sim.pending() == 1
    timer.cancel()
    assert sim.pending() == 0


# ---------------------------------------------------------------------------
# Property: (time, seq) FIFO ordering under cancel/stop/max_events.
# ---------------------------------------------------------------------------
@seeded_property()
def test_property_event_order_with_cancellations(seed):
    rng = random.Random(seed)
    sim = Simulator()
    fired = []
    live = []  # (time, id) in scheduling order
    handles = {}
    for event_id in range(rng.randrange(0, 40)):
        time = rng.randrange(0, 8) * 0.25  # coarse grid: collisions likely
        handles[event_id] = sim.schedule(time, fired.append, event_id)
        live.append((time, event_id))
    for time, event_id in list(live):
        if rng.random() < 0.3:
            handles[event_id].cancel()
            if rng.random() < 0.5:
                handles[event_id].cancel()  # idempotent
            live.remove((time, event_id))
    assert sim.pending() == len(live)

    until = rng.choice([None, 0.6, 1.1, 1.75, 10.0])
    max_events = rng.choice([None, 0, 1, 3, 10 ** 6])
    executed = sim.run(until=until, max_events=max_events)

    # Stable sort by time over scheduling order == (time, seq) order.
    expected = [event_id for __, event_id in
                sorted(live, key=lambda pair: pair[0])]
    if until is not None:
        expected = [event_id for event_id in expected
                    if dict(map(reversed, live))[event_id] <= until]
    if max_events is not None:
        expected = expected[:max(0, max_events)]
    assert fired == expected
    assert executed == len(expected)
    assert sim.pending() == len(live) - len(expected)
    times = dict(map(reversed, live))
    if fired:
        assert sim.now >= times[fired[-1]]
    if until is not None and executed == len(
            [1 for t, __ in live if t <= until]):
        # Everything below `until` ran (no max_events cut): clock lands on
        # `until` exactly.
        if max_events is None or executed < max_events:
            assert sim.now == until


@seeded_property()
def test_property_mid_run_scheduling_preserves_order(seed):
    rng = random.Random(seed)
    sim = Simulator()
    fired_times = []
    budget = [rng.randrange(1, 30)]

    def tick():
        fired_times.append(sim.now)
        if budget[0] > 0:
            budget[0] -= 1
            for __ in range(rng.randrange(0, 3)):
                sim.call_later(rng.randrange(0, 4) * 0.125, tick)

    sim.schedule(0.0, tick)
    sim.run()
    assert fired_times == sorted(fired_times)
    assert sim.pending() == 0


@seeded_property(max_examples=40)
def test_property_stop_halts_exactly(seed):
    rng = random.Random(seed)
    sim = Simulator()
    fired = []
    count = rng.randrange(2, 20)
    stop_at = rng.randrange(0, count)
    for event_id in range(count):
        if event_id == stop_at:
            sim.schedule(float(event_id), lambda i=event_id: (
                fired.append(i), sim.stop()))
        else:
            sim.schedule(float(event_id), fired.append, event_id)
    executed = sim.run(until=100.0)
    assert fired == list(range(stop_at + 1))
    assert executed == stop_at + 1
    assert sim.now == float(stop_at)  # stop: no fast-forward to `until`
    assert sim.pending() == count - stop_at - 1
