"""Tests for the extension features: adaptive playout, PLT analysis, ARQ."""

import numpy as np
import pytest

from repro.apps.web import PageFetch, WebServer
from repro.media.playout import AdaptivePlayoutBuffer, PlayoutBuffer
from repro.sim import Simulator
from repro.sim.topology import AccessNetwork


class TestAdaptivePlayout:
    def _jittery_stream(self, n=200, jitter=0.12):
        rng = np.random.default_rng(0)
        send_times = {i: i * 0.02 for i in range(n)}
        arrivals = {i: send_times[i] + 0.03 + float(rng.uniform(0, jitter))
                    for i in range(n)}
        return arrivals, send_times

    def test_adapts_to_jitter(self):
        arrivals, send_times = self._jittery_stream()
        fixed = PlayoutBuffer(0.02, playout_delay=0.04)
        adaptive = AdaptivePlayoutBuffer(0.02, min_delay=0.04)
        fixed_result = fixed.schedule(dict(arrivals), len(send_times),
                                      send_times)
        adaptive_result = adaptive.schedule(dict(arrivals), len(send_times),
                                            send_times)
        # The adaptive buffer converts late losses into (bounded) delay.
        assert adaptive_result.late < fixed_result.late
        assert adaptive.playout_delay > 0.04
        assert adaptive.playout_delay <= 0.400

    def test_stays_small_on_clean_path(self):
        send_times = {i: i * 0.02 for i in range(100)}
        arrivals = {i: send_times[i] + 0.03 for i in range(100)}
        adaptive = AdaptivePlayoutBuffer(0.02, min_delay=0.04)
        result = adaptive.schedule(arrivals, 100, send_times)
        assert adaptive.playout_delay == pytest.approx(0.05, abs=0.011)
        assert result.late == 0

    def test_clamped_at_max(self):
        send_times = {i: i * 0.02 for i in range(50)}
        arrivals = {i: send_times[i] + 0.03 + (1.0 if i > 10 else 0.0)
                    for i in range(50)}
        adaptive = AdaptivePlayoutBuffer(0.02, max_delay=0.2)
        adaptive.schedule(arrivals, 50, send_times)
        assert adaptive.playout_delay == 0.2


class TestPltAnalysis:
    def test_clean_fetch_is_rtt_dominated(self):
        sim = Simulator()
        net = AccessNetwork(sim)
        WebServer(sim, net.media_server)
        fetch = PageFetch(sim, net.media_client, net.media_server.addr)
        fetch.start()
        sim.run(until=10)
        analysis = fetch.analysis()
        assert analysis["class"] in ("rtt-dominated", "mixed")
        assert 0.0 < analysis["rtt_share"] <= 1.0

    def test_incomplete_fetch(self):
        sim = Simulator()
        net = AccessNetwork(sim)
        # No server: the fetch can never complete.
        fetch = PageFetch(sim, net.media_client, net.media_server.addr)
        fetch.start()
        sim.run(until=1)
        assert fetch.analysis()["class"] == "incomplete"

    def test_lossy_fetch_not_rtt_dominated(self):
        sim = Simulator()
        net = AccessNetwork(sim, down_buffer_packets=4, up_buffer_packets=4)
        WebServer(sim, net.media_server)
        # Saturate the downlink so the fetch suffers retransmissions.
        from repro.apps.bulk import BulkTraffic

        bulk = BulkTraffic(sim, net.traffic_servers(), net.traffic_clients(),
                           count=6, direction="down")
        bulk.start()
        sim.run(until=4)
        fetch = PageFetch(sim, net.media_client, net.media_server.addr)
        fetch.start()
        sim.run(until=40)
        if fetch.done:
            analysis = fetch.analysis()
            # With a 4-packet buffer the PLT growth comes from losses.
            assert analysis["class"] in ("loss-dominated", "mixed")
