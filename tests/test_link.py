"""Unit tests for Interface transmit accounting."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.link import Interface
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue


def make_packet(size=1000):
    return Packet(src=1, dst=2, sport=1, dport=2, proto="udp", size=size)


def make_interface(sim, rate_bps=8000.0):
    return Interface(sim, "slow", rate_bps, 0.0,
                     DropTailQueue(capacity_packets=10))


def test_full_packet_credited_inside_window():
    sim = Simulator()
    iface = make_interface(sim)  # 1000 B takes exactly 1 s
    iface.send(make_packet())
    sim.run(until=2.0)
    assert iface.stats.tx_packets == 1
    assert iface.stats.tx_bytes == pytest.approx(1000.0)
    assert iface.stats.busy_time == pytest.approx(1.0)
    # 8000 bits over a 2 s window at 8000 bit/s -> 50%.
    assert iface.utilization() == pytest.approx(0.5)


def test_inflight_packet_prorated_across_reset():
    """Regression: a packet in flight across the warm-up reset must only
    credit the bytes serialized inside the new measurement window, the
    same proration reset_stats already applies to busy_time."""
    sim = Simulator()
    iface = make_interface(sim)  # 1000 B takes exactly 1 s
    iface.send(make_packet())    # serialization spans [0.0, 1.0]
    sim.run(until=0.75)
    iface.reset_stats()          # warm-up ends mid-transmission
    sim.run(until=1.75)
    # Only the final 0.25 s of the packet lies inside the window.
    assert iface.stats.tx_bytes == pytest.approx(250.0)
    assert iface.stats.busy_time == pytest.approx(0.25)
    # Window [0.75, 1.75]: 250 B * 8 / (8000 bit/s * 1 s) = 25%, not 100%.
    assert iface.utilization() == pytest.approx(0.25)


def test_back_to_back_packets_after_reset_fully_credited():
    sim = Simulator()
    iface = make_interface(sim)
    for __ in range(3):
        iface.send(make_packet())
    sim.run(until=1.5)           # 1.5 packets serialized
    iface.reset_stats()
    sim.run(until=4.0)           # remaining 1.5 packets finish by t=3
    # Half of packet #2 plus all of packet #3 fall inside the window.
    assert iface.stats.tx_bytes == pytest.approx(1500.0)
    assert iface.stats.busy_time == pytest.approx(1.5)
