"""Tests for the video substrate: sources, codec, TS packing, SSIM/PSNR."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.media.codec import (
    SLICES_PER_FRAME,
    decode,
    frame_bytes,
    frame_types,
    slice_rows,
)
from repro.media.mpegts import (
    PACKET_PAYLOAD_BYTES,
    packetize,
    slice_packet_map,
)
from repro.media.video_source import BITRATES, RESOLUTIONS, generate_clip
from repro.qoe.psnr import psnr, psnr_sequence, psnr_to_mos
from repro.qoe.ssim import ssim, ssim_sequence
from repro.qoe.video import ssim_to_mos


class TestVideoSource:
    def test_shapes(self):
        frames = generate_clip("A", "SD", n_frames=10)
        width, height = RESOLUTIONS["SD"]
        assert frames.shape == (10, height, width)

    def test_range(self):
        frames = generate_clip("B", "SD", n_frames=5)
        assert frames.min() >= 0.0
        assert frames.max() <= 1.0

    def test_deterministic(self):
        a = generate_clip("C", "SD", n_frames=5)
        b = generate_clip("C", "SD", n_frames=5)
        assert np.array_equal(a, b)

    def test_motion_ordering(self):
        # Soccer (B) has more frame-to-frame motion than interview (A).
        def motion(clip):
            frames = generate_clip(clip, "SD", n_frames=10)
            return np.mean(np.abs(np.diff(frames, axis=0)))

        assert motion("B") > motion("A")

    def test_hd_larger(self):
        sd = generate_clip("A", "SD", n_frames=2)
        hd = generate_clip("A", "HD", n_frames=2)
        assert hd[0].size > sd[0].size


class TestCodecModel:
    def test_gop_structure(self):
        types = frame_types(25, gop=12)
        assert types[0] == "I"
        assert types[12] == "I"
        assert types[1] == "P"

    def test_rate_budget(self):
        n = 125  # 10 s at 12.5 fps
        total = sum(frame_bytes("SD", n))
        expected = BITRATES["SD"] / 8.0 * (n / 12.5)
        assert total == pytest.approx(expected, rel=0.02)

    def test_i_frames_bigger(self):
        sizes = frame_bytes("SD", 13)
        assert sizes[0] > 3 * sizes[1]

    def test_slice_rows_cover_frame(self):
        height = 180
        covered = 0
        for s in range(SLICES_PER_FRAME):
            start, stop = slice_rows(height, s)
            covered += stop - start
        assert covered == height

    def test_perfect_reception_is_lossless(self):
        reference = generate_clip("C", "SD", n_frames=13)
        received = np.ones((13, SLICES_PER_FRAME), dtype=bool)
        decoded = decode(reference, received)
        assert np.allclose(decoded, reference)

    def test_lost_slice_recovers_at_next_i_frame(self):
        reference = generate_clip("C", "SD", n_frames=25)
        received = np.ones((25, SLICES_PER_FRAME), dtype=bool)
        received[2][5] = False  # one lost slice early in the first GOP
        decoded = decode(reference, received, gop=12)
        assert not np.allclose(decoded[2], reference[2])
        # After the next I frame (index 12) everything is clean again.
        assert np.allclose(decoded[12], reference[12])

    def test_more_loss_less_quality(self):
        reference = generate_clip("C", "SD", n_frames=25)
        rng = np.random.default_rng(1)
        light = rng.random((25, SLICES_PER_FRAME)) >= 0.01
        heavy = rng.random((25, SLICES_PER_FRAME)) >= 0.2
        q_light = ssim_sequence(reference, decode(reference, light))
        q_heavy = ssim_sequence(reference, decode(reference, heavy))
        assert q_light > q_heavy


class TestMpegTs:
    def test_packet_sizes(self):
        plans = packetize([((0, s), 1000) for s in range(32)])
        assert all(p.payload_bytes <= PACKET_PAYLOAD_BYTES for p in plans)
        assert sum(p.payload_bytes for p in plans) == 32_000

    def test_slices_share_packets(self):
        plans = packetize([((0, 0), 700), ((0, 1), 700)])
        assert len(plans) == 2  # 1400 bytes -> 1316 + 84
        assert plans[0].slices == ((0, 0), (0, 1))

    def test_slice_map_inversion(self):
        slice_bytes = [((0, s), 900) for s in range(8)]
        plans = packetize(slice_bytes)
        mapping = slice_packet_map(plans)
        assert set(mapping) == {(0, s) for s in range(8)}
        for packets in mapping.values():
            assert packets == sorted(packets)

    @given(st.lists(st.integers(1, 5000), min_size=1, max_size=60))
    @settings(max_examples=50)
    def test_property_byte_conservation(self, sizes):
        slice_bytes = [((0, i), size) for i, size in enumerate(sizes)]
        plans = packetize(slice_bytes)
        assert sum(p.payload_bytes for p in plans) == sum(sizes)
        mapping = slice_packet_map(plans)
        assert set(mapping) == {key for key, __ in slice_bytes}


class TestSsimPsnr:
    def test_identity(self):
        image = generate_clip("A", "SD", n_frames=1)[0]
        assert ssim(image, image) == pytest.approx(1.0, abs=1e-9)
        assert psnr(image, image) == float("inf")

    def test_noise_lowers_both(self):
        image = generate_clip("A", "SD", n_frames=1)[0].astype(float)
        rng = np.random.default_rng(0)
        noisy = np.clip(image + rng.normal(0, 0.1, image.shape), 0, 1)
        assert ssim(image, noisy) < 0.95
        assert psnr(image, noisy) < 25.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((4, 4)), np.zeros((5, 5)))
        with pytest.raises(ValueError):
            psnr(np.zeros((4, 4)), np.zeros((5, 5)))

    def test_gaussian_window_variant(self):
        image = generate_clip("A", "SD", n_frames=1)[0]
        rng = np.random.default_rng(0)
        noisy = np.clip(image + rng.normal(0, 0.05, image.shape), 0, 1)
        uniform = ssim(image, noisy)
        gaussian = ssim(image, noisy, window="gaussian")
        assert abs(uniform - gaussian) < 0.15

    @given(st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=20)
    def test_property_ssim_bounded_and_symmetric(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.random((32, 32))
        b = rng.random((32, 32))
        value = ssim(a, b)
        assert -1.0 <= value <= 1.0
        assert ssim(b, a) == pytest.approx(value, abs=1e-9)

    def test_sequence_means(self):
        frames = generate_clip("A", "SD", n_frames=4)
        assert ssim_sequence(frames, frames) == pytest.approx(1.0)
        assert psnr_sequence(frames, frames) == 60.0  # capped

    def test_mappings_monotone(self):
        ssim_values = [0.3, 0.6, 0.88, 0.95, 1.0]
        mos = [ssim_to_mos(v) for v in ssim_values]
        assert mos == sorted(mos)
        assert mos[-1] == 5.0
        psnr_values = [18, 26, 33, 40]
        pm = [psnr_to_mos(v) for v in psnr_values]
        assert pm == sorted(pm)
