"""Tests for the dumbbell topologies and packet forwarding."""

import pytest

from repro.sim import Simulator
from repro.sim.packet import Packet
from repro.sim.topology import AccessNetwork, BackboneNetwork
from repro.udp import UdpSocket


class TestAccessNetwork:
    def test_base_rtt_is_50ms(self):
        net = AccessNetwork(Simulator())
        assert net.base_rtt == pytest.approx(0.050)

    def test_asymmetric_rates(self):
        net = AccessNetwork(Simulator())
        assert net.down_bottleneck.rate_bps == pytest.approx(16e6)
        assert net.up_bottleneck.rate_bps == pytest.approx(1e6)

    def test_buffer_sizes_applied(self):
        net = AccessNetwork(Simulator(), down_buffer_packets=128,
                            up_buffer_packets=16)
        assert net.down_bottleneck.queue.capacity_packets == 128
        assert net.up_bottleneck.queue.capacity_packets == 16

    def test_aliases(self):
        net = AccessNetwork(Simulator())
        assert net.dslam is net.left_router
        assert net.home_router is net.right_router

    def test_media_and_traffic_hosts_disjoint(self):
        net = AccessNetwork(Simulator())
        assert net.media_server not in net.traffic_servers()
        assert net.media_client not in net.traffic_clients()

    def test_end_to_end_delivery_both_directions(self):
        sim = Simulator()
        net = AccessNetwork(sim)
        got = []
        UdpSocket(sim, net.media_server, port=5000,
                  on_datagram=lambda s, p: got.append(("s", sim.now)))
        UdpSocket(sim, net.media_client, port=5001,
                  on_datagram=lambda s, p: got.append(("c", sim.now)))
        up_sender = UdpSocket(sim, net.media_client)
        up_sender.sendto(100, net.media_server.addr, 5000)
        down_sender = UdpSocket(sim, net.media_server)
        down_sender.sendto(100, net.media_client.addr, 5001)
        sim.run(until=1)
        assert {tag for tag, __ in got} == {"s", "c"}
        for __, arrival in got:
            assert arrival == pytest.approx(0.025, abs=0.005)

    def test_routers_forward(self):
        sim = Simulator()
        net = AccessNetwork(sim)
        UdpSocket(sim, net.media_server, port=5000)
        sender = UdpSocket(sim, net.media_client)
        sender.sendto(100, net.media_server.addr, 5000)
        sim.run(until=1)
        assert net.home_router.forwarded >= 1
        assert net.dslam.forwarded >= 1


class TestBackboneNetwork:
    def test_base_rtt_is_60ms(self):
        net = BackboneNetwork(Simulator())
        assert net.base_rtt == pytest.approx(0.0604, abs=0.001)

    def test_symmetric_bottleneck(self):
        net = BackboneNetwork(Simulator(), buffer_packets=28)
        assert net.down_bottleneck.rate_bps == net.up_bottleneck.rate_bps
        assert net.down_bottleneck.queue.capacity_packets == 28
        assert net.up_bottleneck.queue.capacity_packets == 28

    def test_host_counts(self):
        net = BackboneNetwork(Simulator())
        assert len(net.servers) == 4
        assert len(net.clients) == 4

    def test_reset_measurements(self):
        sim = Simulator()
        net = BackboneNetwork(sim)
        UdpSocket(sim, net.clients[0], port=5000)
        sender = UdpSocket(sim, net.servers[0])
        sender.sendto(1000, net.clients[0].addr, 5000)
        sim.run(until=1)
        assert net.down_bottleneck.stats.tx_bytes > 0
        net.reset_measurements()
        assert net.down_bottleneck.stats.tx_bytes == 0


class TestNodeRouting:
    def test_no_route_raises(self):
        from repro.sim.node import Node

        node = Node(Simulator(), "lonely", 99)
        packet = Packet(src=99, dst=1, sport=1, dport=1, proto="udp",
                        size=100)
        with pytest.raises(LookupError):
            node.send(packet)

    def test_duplicate_tcp_registration_rejected(self):
        from repro.sim.node import Node

        node = Node(Simulator(), "n", 1)
        node.register_tcp(2, 80, 1000, object())
        with pytest.raises(ValueError):
            node.register_tcp(2, 80, 1000, object())

    def test_duplicate_listener_rejected(self):
        from repro.sim.node import Node

        node = Node(Simulator(), "n", 1)
        node.register_tcp_listener(80, object())
        with pytest.raises(ValueError):
            node.register_tcp_listener(80, object())

    def test_ephemeral_ports_unique(self):
        from repro.sim.node import Node

        node = Node(Simulator(), "n", 1)
        ports = {node.allocate_port() for __ in range(100)}
        assert len(ports) == 100
