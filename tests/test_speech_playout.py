"""Tests for speech synthesis and the playout buffer."""

import numpy as np
import pytest

from repro.media.playout import CODEC_DELAY, PlayoutBuffer, reconstruct_signal
from repro.media.speech import SAMPLE_RATE, speech_corpus, synthesize_speech


class TestSpeech:
    def test_length_and_rate(self):
        speech = synthesize_speech(seed=1, duration=8.0)
        assert len(speech) == 8 * SAMPLE_RATE

    def test_deterministic_per_seed(self):
        a = synthesize_speech(seed=5)
        b = synthesize_speech(seed=5)
        assert np.array_equal(a, b)

    def test_distinct_seeds_differ(self):
        a = synthesize_speech(seed=1)
        b = synthesize_speech(seed=2)
        assert not np.array_equal(a, b)

    def test_int16_range(self):
        speech = synthesize_speech(seed=3)
        assert speech.max() <= 32767
        assert speech.min() >= -32768

    def test_has_speech_like_activity(self):
        speech = synthesize_speech(seed=4)
        # Both active and silent stretches exist.
        frame_rms = np.sqrt(np.mean(
            speech[: len(speech) // 160 * 160].reshape(-1, 160) ** 2, axis=1))
        assert (frame_rms > 500).any()
        assert (frame_rms < 50).any()

    def test_corpus_size(self):
        corpus = speech_corpus(count=3, duration=1.0)
        assert len(corpus) == 3

    def test_wrong_rate_rejected(self):
        with pytest.raises(ValueError):
            synthesize_speech(seed=1, rate=16000)


class TestPlayoutBuffer:
    def _arrivals(self, n, delay, jitter=0.0, drop=()):
        send_times = {i: i * 0.02 for i in range(n)}
        arrivals = {}
        for i in range(n):
            if i in drop:
                continue
            arrivals[i] = send_times[i] + delay + (jitter if i % 2 else 0.0)
        return arrivals, send_times

    def test_all_on_time(self):
        buffer = PlayoutBuffer(0.02, playout_delay=0.06)
        arrivals, send_times = self._arrivals(100, delay=0.03)
        result = buffer.schedule(arrivals, 100, send_times)
        assert result.ok == 100
        assert result.effective_loss_rate == 0.0
        # Mouth-to-ear = network + playout + codec.
        assert result.mouth_to_ear_delay == pytest.approx(
            0.03 + 0.06 + CODEC_DELAY, abs=1e-6)

    def test_lost_frames_counted(self):
        buffer = PlayoutBuffer(0.02, 0.06)
        arrivals, send_times = self._arrivals(50, 0.03, drop={3, 4, 10})
        result = buffer.schedule(arrivals, 50, send_times)
        assert result.lost == 3
        assert result.effective_loss_rate == pytest.approx(3 / 50)

    def test_late_frames_counted(self):
        buffer = PlayoutBuffer(0.02, playout_delay=0.05)
        arrivals, send_times = self._arrivals(50, 0.02, jitter=0.2)
        result = buffer.schedule(arrivals, 50, send_times)
        assert result.late > 0
        assert result.ok + result.late + result.lost == 50

    def test_statuses_order(self):
        buffer = PlayoutBuffer(0.02, 0.06)
        arrivals, send_times = self._arrivals(10, 0.03, drop={2})
        result = buffer.schedule(arrivals, 10, send_times)
        assert result.statuses[2] == "lost"
        assert result.statuses[0] == "ok"

    def test_no_arrivals(self):
        buffer = PlayoutBuffer(0.02, 0.06)
        result = buffer.schedule({}, 10, {i: i * 0.02 for i in range(10)})
        assert result.lost == 10


class TestReconstruction:
    def test_clean_reconstruction_identical(self):
        frames = [np.ones(160) * i for i in range(5)]
        out = reconstruct_signal(frames, ["ok"] * 5)
        assert np.array_equal(out, np.concatenate(frames))

    def test_concealment_repeats_with_decay(self):
        frames = [np.ones(160), np.ones(160) * 2.0]
        out = reconstruct_signal(frames, ["ok", "lost"], decay=0.5)
        assert np.allclose(out[160:], 0.5)  # repeat of frame 0 decayed

    def test_mute_after_long_burst(self):
        frames = [np.ones(160)] * 6
        statuses = ["ok"] + ["lost"] * 5
        out = reconstruct_signal(frames, statuses, decay=0.5, mute_after=3)
        assert np.allclose(out[4 * 160:], 0.0)  # muted tail

    def test_leading_loss_is_silence(self):
        frames = [np.ones(160)] * 3
        out = reconstruct_signal(frames, ["lost", "ok", "ok"])
        assert np.allclose(out[:160], 0.0)

    def test_empty(self):
        assert reconstruct_signal([], []).size == 0
