"""Failure injection: TCP delivery integrity under random packet drops.

A lossy queue drops every packet with independent probability; whatever
the drop rate, the byte stream the application receives must be exactly
the byte stream sent — no loss, no duplication, no reordering of
message boundaries — and connections must still close cleanly.
"""

import numpy as np
import pytest

from repro.sim import Simulator
from repro.sim.link import Interface
from repro.sim.node import Node
from repro.sim.queues import DropTailQueue
from repro.tcp import Bic, Cubic, Reno, TcpConnection, TcpListener
from repro.util.units import MBPS, ms


class RandomDropQueue(DropTailQueue):
    """Drop-tail queue that also drops arrivals with probability ``p``."""

    def __init__(self, capacity_packets, p, rng):
        super().__init__(capacity_packets=capacity_packets)
        self.p = p
        self.rng = rng

    def push(self, packet, now):
        if self.rng.random() < self.p:
            self._reject(packet)
            return False
        return super().push(packet, now)


def lossy_pair(p, seed, rate_bps=8 * MBPS, delay=ms(10)):
    sim = Simulator()
    rng = np.random.default_rng(seed)
    a = Node(sim, "a", 1)
    b = Node(sim, "b", 2)
    a_to_b = Interface(sim, "a->b", rate_bps, delay,
                       RandomDropQueue(200, p, rng), b)
    b_to_a = Interface(sim, "b->a", rate_bps, delay,
                       RandomDropQueue(200, p, rng), a)
    a.set_default_route(a_to_b)
    b.set_default_route(b_to_a)
    return sim, a, b


@pytest.mark.parametrize("p", [0.01, 0.05, 0.10])
@pytest.mark.parametrize("cc_cls", [Reno, Cubic, Bic])
def test_exact_delivery_under_random_loss(p, cc_cls):
    sim, a, b = lossy_pair(p, seed=int(p * 1000) + 1)
    got = {"bytes": 0, "messages": []}

    def on_server_conn(conn):
        for index in range(4):
            conn.send(60_000, meta=index)
        conn.close()

    TcpListener(sim, b, 80, on_connection=on_server_conn,
                cc_factory=cc_cls)
    client = TcpConnection(sim, a, peer_addr=b.addr, peer_port=80,
                           cc=cc_cls())
    client.on_data = lambda c, n: got.__setitem__("bytes", got["bytes"] + n)
    client.on_message = lambda c, meta: got["messages"].append(meta)
    client.on_peer_fin = lambda c: c.close()
    client.connect()
    sim.run(until=600)
    assert got["bytes"] == 240_000  # exactly once, every byte
    assert got["messages"] == [0, 1, 2, 3]  # boundaries in order
    assert client.state == "closed"
    assert not a.tcp_connections
    assert not b.tcp_connections


def test_bidirectional_exchange_under_loss():
    sim, a, b = lossy_pair(0.05, seed=9)
    got = {"resp": 0, "req": 0}

    def on_server_conn(conn):
        conn.on_data = lambda c, n: got.__setitem__("req", got["req"] + n)
        conn.on_message = lambda c, meta: (c.send(80_000, meta="resp"),
                                           c.close())

    TcpListener(sim, b, 80, on_connection=on_server_conn)
    client = TcpConnection(sim, a, peer_addr=b.addr, peer_port=80)
    client.on_established = lambda c: c.send(50_000, meta="req")
    client.on_data = lambda c, n: got.__setitem__("resp", got["resp"] + n)
    client.on_peer_fin = lambda c: c.close()
    client.connect()
    sim.run(until=300)
    assert got["req"] == 50_000
    assert got["resp"] == 80_000


def test_extreme_loss_eventually_completes():
    # 25% loss: progress is RTO-driven but the stream must still finish.
    sim, a, b = lossy_pair(0.25, seed=4)
    got = {"bytes": 0}

    def on_server_conn(conn):
        conn.send(20_000, meta="file")
        conn.close()

    TcpListener(sim, b, 80, on_connection=on_server_conn)
    client = TcpConnection(sim, a, peer_addr=b.addr, peer_port=80)
    client.on_data = lambda c, n: got.__setitem__("bytes", got["bytes"] + n)
    client.on_peer_fin = lambda c: c.close()
    client.connect()
    sim.run(until=1200)
    assert got["bytes"] == 20_000


def test_handshake_survives_syn_loss():
    # Force the first SYNs to vanish; the retry path must connect anyway.
    sim, a, b = lossy_pair(0.5, seed=12)
    established = []
    TcpListener(sim, b, 80)
    client = TcpConnection(sim, a, peer_addr=b.addr, peer_port=80)
    client.on_established = lambda c: established.append(sim.now)
    client.connect()
    sim.run(until=120)
    assert established, "handshake never completed despite retries"
