"""Docs/registry consistency: the catalog documents what the code registers."""

import os

from repro.core.registry import REGISTRY

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def read(relative_path):
    with open(os.path.join(ROOT, relative_path), encoding="utf-8") as handle:
        return handle.read()


def test_every_registered_sweep_is_documented():
    catalog = read("docs/SCENARIOS.md")
    missing = [name for name in REGISTRY if "`%s`" % name not in catalog]
    assert not missing, ("registered sweeps missing from docs/SCENARIOS.md: "
                         "%s" % ", ".join(missing))


def test_catalog_documents_no_ghost_sweeps():
    # Every name formatted like a sweep entry in the catalog table must
    # exist in the registry (stale docs fail here after a rename).
    catalog = read("docs/SCENARIOS.md")
    table_lines = [line for line in catalog.splitlines()
                   if line.startswith("| `")]
    for line in table_lines:
        name = line.split("`")[1]
        assert name in REGISTRY, "docs/SCENARIOS.md mentions unknown " \
                                 "sweep %r" % name


def test_provenance_tags_are_documented():
    catalog = read("docs/SCENARIOS.md")
    for spec in REGISTRY.values():
        assert spec.provenance in catalog, (spec.name, spec.provenance)


def test_readme_links_the_docs():
    readme = read("README.md")
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/SCENARIOS.md" in readme
    assert "docs/RESULTS.md" in readme
    assert "python -m repro" in readme


def test_readme_quickstart_uses_the_facade():
    readme = read("README.md")
    assert "api.run_sweep" in readme
    assert "python -m repro export" in readme


def test_architecture_doc_covers_the_layers():
    architecture = read("docs/ARCHITECTURE.md")
    for module in ("repro.sim", "repro.tcp", "repro.qoe", "repro.runner",
                   "repro.core.registry", "repro.cli", "repro.results",
                   "repro.api"):
        assert module in architecture, module


def test_results_doc_covers_the_api():
    results = read("docs/RESULTS.md")
    for name in ("run_sweep", "iter_sweep", "load_sweep", "ResultSet",
                 "StreamAggregator", "to_csv", "to_mapping",
                 "QosResult", "VoipResult", "VideoResult", "WebResult"):
        assert name in results, name


def test_catalog_cell_counts_and_axes_match_registry():
    # The SCENARIOS.md table carries cell counts and axis shapes; they
    # must match what the registry resolves at scale 1 and 4.
    catalog = read("docs/SCENARIOS.md")
    rows = {}
    for line in catalog.splitlines():
        if line.startswith("| `"):
            cells = [cell.strip() for cell in line.strip("|").split("|")]
            rows[cells[0].strip("`")] = cells
    def axis_shape(spec, scale):
        parts = ["%dw x %db" % (len(spec.scenario_axis(scale)),
                                len(spec.buffer_axis(scale)))]
        for param, values in spec.axes:
            parts.append("x %d %s" % (len(values), param))
        if len(spec.disciplines) > 1:
            parts.append("x %d disciplines" % len(spec.disciplines))
        return " ".join(parts)

    for name, spec in REGISTRY.items():
        cells = rows[name]
        assert cells[3] == "%d / %d" % (spec.cell_count(1.0),
                                        spec.cell_count(4.0)), name
        for scale, shape in ((1.0, cells[4].split("→")[0]),
                             (4.0, cells[4].split("→")[-1])):
            assert shape.strip() == axis_shape(spec, scale), (name, scale)


def test_reporting_doc_covers_the_report_layer():
    reporting = read("docs/REPORTING.md")
    from repro.report.fidelity import CHECKS
    from repro.report.figures import figure_names

    for name in figure_names():
        assert "`%s`" % name in reporting, name
    assert set(CHECKS) <= set(figure_names())
    for term in ("python -m repro report", "--cached-only", "--sample",
                 "fidelity.json", "fidelity.schema.json",
                 "max_abs_deviation", "rank_correlation",
                 "trend_agreement", "PASS", "WARN", "FAIL", "SKIP",
                 "docs/sample_report", "REPRO_SCALE=4"):
        assert term in reporting, term


def test_reporting_doc_is_linked():
    assert "docs/REPORTING.md" in read("README.md")
    assert "REPORTING.md" in read("docs/RESULTS.md")
    assert "repro.report" in read("docs/ARCHITECTURE.md")
    assert "python -m repro report" in read("README.md")
