"""Docs/registry consistency: the catalog documents what the code registers."""

import os

from repro.core.registry import REGISTRY

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def read(relative_path):
    with open(os.path.join(ROOT, relative_path), encoding="utf-8") as handle:
        return handle.read()


def test_every_registered_sweep_is_documented():
    catalog = read("docs/SCENARIOS.md")
    missing = [name for name in REGISTRY if "`%s`" % name not in catalog]
    assert not missing, ("registered sweeps missing from docs/SCENARIOS.md: "
                         "%s" % ", ".join(missing))


def test_catalog_documents_no_ghost_sweeps():
    # Every name formatted like a sweep entry in the catalog table must
    # exist in the registry (stale docs fail here after a rename).
    catalog = read("docs/SCENARIOS.md")
    table_lines = [line for line in catalog.splitlines()
                   if line.startswith("| `")]
    for line in table_lines:
        name = line.split("`")[1]
        assert name in REGISTRY, "docs/SCENARIOS.md mentions unknown " \
                                 "sweep %r" % name


def test_provenance_tags_are_documented():
    catalog = read("docs/SCENARIOS.md")
    for spec in REGISTRY.values():
        assert spec.provenance in catalog, (spec.name, spec.provenance)


def test_readme_links_the_docs():
    readme = read("README.md")
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/SCENARIOS.md" in readme
    assert "docs/RESULTS.md" in readme
    assert "python -m repro" in readme


def test_readme_quickstart_uses_the_facade():
    readme = read("README.md")
    assert "api.run_sweep" in readme
    assert "python -m repro export" in readme


def test_architecture_doc_covers_the_layers():
    architecture = read("docs/ARCHITECTURE.md")
    for module in ("repro.sim", "repro.tcp", "repro.qoe", "repro.runner",
                   "repro.core.registry", "repro.cli", "repro.results",
                   "repro.api"):
        assert module in architecture, module


def test_results_doc_covers_the_api():
    results = read("docs/RESULTS.md")
    for name in ("run_sweep", "iter_sweep", "load_sweep", "ResultSet",
                 "StreamAggregator", "to_csv", "to_mapping",
                 "QosResult", "VoipResult", "VideoResult", "WebResult"):
        assert name in results, name
