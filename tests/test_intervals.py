"""Unit and property tests for the interval set used by TCP reassembly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.intervals import IntervalSet


def test_add_and_contiguous():
    ivals = IntervalSet()
    ivals.add(0, 10)
    assert ivals.contiguous_end(0) == 10
    ivals.add(20, 30)
    assert ivals.contiguous_end(0) == 10
    ivals.add(10, 20)  # fill the hole
    assert ivals.contiguous_end(0) == 30
    assert len(ivals) == 1


def test_empty_interval_ignored():
    ivals = IntervalSet()
    ivals.add(5, 5)
    ivals.add(7, 3)
    assert len(ivals) == 0
    assert ivals.total() == 0


def test_overlapping_merge():
    ivals = IntervalSet()
    ivals.add(0, 5)
    ivals.add(3, 8)
    assert list(ivals) == [(0, 8)]
    ivals.add(8, 10)  # adjacent merges too
    assert list(ivals) == [(0, 10)]


def test_contiguous_end_when_uncovered():
    ivals = IntervalSet([(5, 10)])
    assert ivals.contiguous_end(0) == 0
    assert ivals.contiguous_end(5) == 10
    assert ivals.contiguous_end(7) == 10
    assert ivals.contiguous_end(10) == 10


def test_covers():
    ivals = IntervalSet([(0, 10), (20, 30)])
    assert ivals.covers(0, 10)
    assert ivals.covers(2, 5)
    assert not ivals.covers(5, 15)
    assert not ivals.covers(15, 18)
    assert ivals.covers(25, 25)  # empty always covered


def test_gaps():
    ivals = IntervalSet([(2, 4), (6, 8)])
    assert list(ivals.gaps(0, 10)) == [(0, 2), (4, 6), (8, 10)]
    assert list(ivals.gaps(2, 8)) == [(4, 6)]
    assert list(IntervalSet().gaps(0, 3)) == [(0, 3)]


def test_prune_below():
    ivals = IntervalSet([(0, 10), (20, 30)])
    ivals.prune_below(25)
    assert list(ivals) == [(25, 30)]
    ivals.prune_below(100)
    assert list(ivals) == []


def test_contains():
    ivals = IntervalSet([(3, 6)])
    assert 3 in ivals
    assert 5 in ivals
    assert 6 not in ivals
    assert 2 not in ivals


@st.composite
def interval_lists(draw):
    n = draw(st.integers(min_value=0, max_value=30))
    out = []
    for __ in range(n):
        start = draw(st.integers(min_value=0, max_value=200))
        length = draw(st.integers(min_value=0, max_value=40))
        out.append((start, start + length))
    return out


@given(interval_lists())
@settings(max_examples=200)
def test_property_matches_reference_set(intervals):
    """The interval set behaves exactly like a set of integers."""
    ivals = IntervalSet()
    reference = set()
    for start, end in intervals:
        ivals.add(start, end)
        reference.update(range(start, end))
    assert ivals.total() == len(reference)
    # Disjoint, sorted, non-adjacent invariants.
    previous_end = None
    for start, end in ivals:
        assert start < end
        if previous_end is not None:
            assert start > previous_end  # strictly, i.e. non-adjacent
        previous_end = end
    for probe in range(0, 250, 7):
        assert (probe in ivals) == (probe in reference)
        # contiguous_end agrees with the reference run length.
        end = probe
        while end in reference:
            end += 1
        if probe in reference:
            assert ivals.contiguous_end(probe) == end


@given(interval_lists(), st.integers(min_value=0, max_value=250))
@settings(max_examples=100)
def test_property_gaps_partition(intervals, span_start):
    """gaps() plus covered intervals exactly tile the query range."""
    ivals = IntervalSet()
    for start, end in intervals:
        ivals.add(start, end)
    span_end = span_start + 60
    gap_points = set()
    for gstart, gend in ivals.gaps(span_start, span_end):
        gap_points.update(range(gstart, gend))
    for probe in range(span_start, span_end):
        assert (probe in gap_points) == (probe not in ivals)
