"""Tests for the stable facade (repro.api) and streaming grid runs."""

import pytest

from repro import api
from repro.core.registry import access, adhoc_sweep
from repro.results import ResultSet, StreamAggregator
from repro.runner import GridRunner, ResultCache


def tiny_spec(buffers=(8, 16), duration=2.0):
    return adhoc_sweep("api-test", "qos",
                       scenarios=[access("long-few", "down")],
                       buffers=buffers, seed=3, warmup=1.0,
                       duration=duration)


def runner_for(tmp_path, workers=1):
    return GridRunner(workers=workers, progress=False,
                      cache=ResultCache(directory=str(tmp_path / "cache"),
                                        enabled=True))


class TestRunSweep:
    def test_matches_legacy_spec_run(self, tmp_path):
        spec = tiny_spec()
        results = api.run_sweep(spec, scale=1.0,
                                runner=runner_for(tmp_path / "a"))
        legacy = spec.run(runner=runner_for(tmp_path / "b"), scale=1.0)
        assert results.keys() == list(legacy)
        assert results.to_mapping() == legacy

    def test_accepts_registry_names_and_overrides(self, tmp_path):
        results = api.run_sweep(
            "wireless-qos", scale=1.0,
            overrides={"workloads": ("long-few",), "buffers": (8,),
                       "duration": 2.0, "warmup": 1.0},
            runner=runner_for(tmp_path))
        assert results.keys() == [("long-few", 8)]
        assert results[("long-few", 8)].payload["duration"] == 2.0

    def test_unknown_override_labels_raise(self, tmp_path):
        with pytest.raises(ValueError, match="mystery"):
            api.run_sweep("wireless-qos", scale=1.0,
                          overrides={"workloads": ("mystery",)},
                          runner=runner_for(tmp_path))
        with pytest.raises(ValueError, match="fifo"):
            api.run_sweep("wireless-qos", scale=1.0,
                          overrides={"disciplines": ("fifo",)},
                          runner=runner_for(tmp_path))

    def test_duration_override_is_literal_above_scale_one(self):
        spec = api.apply_overrides(tiny_spec(), scale=4.0, duration=2.0)
        assert spec.resolved_duration(scale=4.0) == 2.0


class TestStreaming:
    def test_iter_sweep_equals_run_sweep(self, tmp_path):
        spec = tiny_spec()
        batch = api.run_sweep(spec, scale=1.0,
                              runner=runner_for(tmp_path / "a"))
        streamed = ResultSet.from_stream(
            api.iter_sweep(spec, scale=1.0,
                           runner=runner_for(tmp_path / "b")))
        assert streamed == batch
        assert streamed.keys() == batch.keys()

    def test_stream_aggregation_over_iter_sweep(self, tmp_path):
        spec = tiny_spec()
        agg = StreamAggregator("down_utilization", by="buffer")
        agg.consume(api.iter_sweep(spec, scale=1.0,
                                   runner=runner_for(tmp_path)))
        stats = agg.result()
        assert set(stats) == {8, 16}
        assert all(entry["count"] == 1 for entry in stats.values())

    @pytest.mark.parametrize("workers", [1, 4])
    def test_iter_run_bit_identical_to_run(self, tmp_path, workers):
        """Satellite: iter_run vs run equivalence at 1 and 4 workers."""
        spec = tiny_spec(buffers=(8, 12, 16, 24), duration=1.0)
        tasks = spec.tasks(1.0)
        batch = runner_for(tmp_path / "a", workers=workers).run(tasks)
        runner = runner_for(tmp_path / "b", workers=workers)
        streamed = ResultSet.from_stream(
            runner.iter_run(tasks, keys=spec.cells(1.0)))
        # from_stream restores task order, so records align with batch.
        assert len(streamed) == len(batch)
        for record, revived in zip(streamed, batch):
            assert record.report == revived  # bit-identical payloads
        assert [r.index for r in streamed] == [0, 1, 2, 3]
        assert runner.last_stats["failed"] is False

    def test_iter_run_streams_cache_hits_lazily(self, tmp_path):
        # Constant-memory contract: the cache scan must not pre-load
        # every hit before the first yield.
        spec = tiny_spec(duration=1.0)
        tasks = spec.tasks(1.0)
        cache = ResultCache(directory=str(tmp_path / "cache"), enabled=True)
        GridRunner(workers=1, cache=cache, progress=False).run(tasks)

        reads = []
        original = cache.get
        cache.get = lambda task: reads.append(task) or original(task)
        stream = GridRunner(workers=1, cache=cache,
                            progress=False).iter_run(tasks)
        next(stream)
        assert len(reads) == 1  # second hit not touched yet
        stream.close()

    def test_abandoning_iter_run_cancels_queued_cells(self, tmp_path):
        # Breaking out of the stream must not compute the whole grid:
        # queued pool futures are cancelled on GeneratorExit.
        spec = tiny_spec(buffers=(8, 12, 16, 24, 32, 48), duration=1.0)
        tasks = spec.tasks(1.0)
        cache = ResultCache(directory=str(tmp_path / "cache"), enabled=True)
        runner = GridRunner(workers=2, cache=cache, progress=False)
        for __, record in runner.iter_run(tasks):
            break  # abandon after the first completed cell
        # Only the cells that actually ran reached the cache; the
        # cancelled tail never executed.
        finished = sum(1 for task in tasks if cache.get(task) is not None)
        assert finished < len(tasks)
        # A deliberate abandon is not a failure.
        assert runner.last_stats.get("failed") is not True

    def test_iter_run_yields_cache_hits_first(self, tmp_path):
        spec = tiny_spec(duration=1.0)
        tasks = spec.tasks(1.0)
        cache = ResultCache(directory=str(tmp_path / "cache"), enabled=True)
        warm = GridRunner(workers=1, cache=cache, progress=False)
        warm.run([tasks[1]])  # only the *second* task is cached
        runner = GridRunner(workers=1, cache=cache, progress=False)
        order = [task.buffer_packets
                 for task, __ in runner.iter_run(tasks)]
        assert order == [16, 8]  # hit streams before the computed cell
        assert runner.last_stats["cached"] == 1
        assert runner.last_stats["computed"] == 1


class TestLoadSweep:
    def test_cache_only_round_trip(self, tmp_path):
        spec = tiny_spec()
        cache = ResultCache(directory=str(tmp_path / "cache"), enabled=True)
        ran = api.run_sweep(spec, scale=1.0,
                            runner=GridRunner(workers=1, cache=cache,
                                              progress=False))
        loaded = api.load_sweep(spec, scale=1.0, cache=cache, strict=True)
        assert loaded == ran

    def test_misses_skip_or_raise(self, tmp_path):
        spec = tiny_spec()
        cache = ResultCache(directory=str(tmp_path / "empty"), enabled=True)
        assert len(api.load_sweep(spec, scale=1.0, cache=cache)) == 0
        with pytest.raises(KeyError, match="not cached"):
            api.load_sweep(spec, scale=1.0, cache=cache, strict=True)


class TestDeprecatedStudyShims:
    """The old dict-returning grid entry points still work, but warn."""

    def nocache_runner(self):
        return GridRunner(workers=1, use_cache=False, progress=False)

    def test_fig4_shim_warns_and_matches_facade(self, tmp_path):
        from repro.core.study import fig4_delay_grid

        with pytest.warns(DeprecationWarning, match="run_sweep"):
            legacy = fig4_delay_grid("down", buffers=(8,),
                                     workloads=("noBG",), warmup=0.5,
                                     duration=1.0, seed=3,
                                     runner=self.nocache_runner())
        facade = api.run_sweep(
            adhoc_sweep("t", "qos", [access("noBG", "down")], [8], seed=3,
                        warmup=0.5, duration=1.0),
            scale=1.0, runner=self.nocache_runner())
        assert legacy == facade.to_mapping()

    def test_voip_and_web_shims_warn(self):
        from repro.core.voip_study import fig7_grid
        from repro.core.web_study import fig10_grid

        with pytest.warns(DeprecationWarning, match="fig7_grid"):
            results = fig7_grid("up", (8,), workloads=("noBG",), calls=1,
                                warmup=0.5, duration=1.0, seed=3,
                                runner=self.nocache_runner())
        assert set(results) == {("noBG", 8)}
        with pytest.warns(DeprecationWarning, match="fig10_grid"):
            results = fig10_grid("down", (8,), workloads=("noBG",),
                                 fetches=1, warmup=0.5, seed=5,
                                 runner=self.nocache_runner())
        assert results[("noBG", 8)]["median_plt"] > 0.0

    def test_remaining_shims_warn(self):
        import warnings

        from repro.core.study import fig5_utilization, table1_rows
        from repro.core.video_study import fig9_grid
        from repro.core.voip_study import fig8_grid
        from repro.core.web_study import fig11_grid

        calls = [
            lambda: fig5_utilization(buffers=[8], warmup=0.5, duration=1.0,
                                     seed=1, runner=self.nocache_runner()),
            lambda: table1_rows("access", warmup=0.5, duration=1.0, seed=1,
                                workloads=[("noBG", "down")],
                                runner=self.nocache_runner()),
            lambda: fig8_grid((749,), workloads=("noBG",), calls=1,
                              warmup=0.5, duration=1.0, seed=3,
                              runner=self.nocache_runner()),
            lambda: fig9_grid("access", (8,), workloads=("noBG",),
                              resolutions=("SD",), duration=1.0,
                              warmup=0.5, seed=4,
                              runner=self.nocache_runner()),
            lambda: fig11_grid((749,), workloads=("noBG",), fetches=1,
                               warmup=0.5, seed=5,
                               runner=self.nocache_runner()),
        ]
        for call in calls:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                result = call()
            assert result  # shim still returns the legacy shape
            assert any(issubclass(w.category, DeprecationWarning)
                       for w in caught)
