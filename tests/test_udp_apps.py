"""Tests for UDP/RTP and the application layer (VoIP, video, web)."""

import numpy as np
import pytest

from repro.apps.video import VideoStream, build_packet_plan
from repro.apps.voip import VoipCall
from repro.apps.web import PAGE_OBJECTS, PageFetch, WebServer
from repro.media.video_source import BITRATES
from repro.sim import Simulator
from repro.sim.topology import AccessNetwork
from repro.udp import RtpReceiver, RtpSender, UdpSocket

from tests.netutil import two_hosts


class TestUdpSocket:
    def test_datagram_delivery(self):
        sim, a, b = two_hosts()
        got = []
        UdpSocket(sim, b, port=5000,
                  on_datagram=lambda s, p: got.append(p.payload_len))
        sender = UdpSocket(sim, a)
        sender.sendto(500, b.addr, 5000)
        sim.run(until=1)
        assert got == [500]

    def test_unbound_port_drops_silently(self):
        sim, a, b = two_hosts()
        sender = UdpSocket(sim, a)
        sender.sendto(100, b.addr, 9999)
        sim.run(until=1)  # must not raise

    def test_closed_socket_rejects_send(self):
        sim, a, b = two_hosts()
        sock = UdpSocket(sim, a)
        sock.close()
        with pytest.raises(RuntimeError):
            sock.sendto(10, b.addr, 5000)

    def test_port_collision_rejected(self):
        sim, a, __ = two_hosts()
        UdpSocket(sim, a, port=6000)
        with pytest.raises(ValueError):
            UdpSocket(sim, a, port=6000)


class TestRtp:
    def test_sequencing_and_stats(self):
        sim, a, b = two_hosts()
        receiver = RtpReceiver(sim, b, port=7000)
        sender = RtpSender(sim, a, b.addr, 7000)
        for i in range(10):
            sim.schedule(i * 0.02, sender.send, 160, i * 0.02, i)
        sim.run(until=2)
        assert receiver.received == 10
        assert receiver.expected == 10
        assert receiver.loss_rate == 0.0
        seqs = [rtp.seq for rtp, __ in receiver.arrivals]
        assert seqs == list(range(10))

    def test_loss_rate_counts_gaps(self):
        sim, a, b = two_hosts(queue_packets=2, rate_bps=100_000)
        receiver = RtpReceiver(sim, b, port=7000)
        sender = RtpSender(sim, a, b.addr, 7000)
        # Burst 10 at t=0 (the 2-packet queue drops the middle), then a
        # spaced tail so the highest sequence number still arrives.
        for i in range(10):
            sender.send(1000, 0.0, i)
        for i in range(5):
            sim.schedule(1.0 + 0.2 * i, sender.send, 1000, 1.0, 10 + i)
        sim.run(until=5)
        assert receiver.loss_rate > 0.2


class TestVoipCall:
    def test_clean_call(self):
        sim = Simulator()
        net = AccessNetwork(sim)
        call = VoipCall(sim, net.media_client, net.media_server, port=6000,
                        duration=2.0)
        call.start()
        sim.run(until=4)
        playout, degraded = call.finish()
        assert playout.frames == call.n_frames
        assert playout.effective_loss_rate == 0.0
        assert len(degraded) == call.n_frames * 160
        assert playout.mouth_to_ear_delay < 0.2

    def test_media_cached(self):
        sim = Simulator()
        net = AccessNetwork(sim)
        a = VoipCall(sim, net.media_client, net.media_server, 6000,
                     sample_seed=1000, duration=2.0)
        b = VoipCall(sim, net.media_client, net.media_server, 6002,
                     sample_seed=1000, duration=2.0)
        assert a.frames is b.frames


class TestVideoStream:
    def test_packet_plan_rate(self):
        # 24 frames = exactly two GOPs, so the budget is exact.
        plans, mapping = build_packet_plan("SD", 24)
        total = sum(p.payload_bytes for p in plans)
        expected = BITRATES["SD"] / 8 * 24 / 12.5
        assert total == pytest.approx(expected, rel=0.02)
        assert len(mapping) == 24 * 32

    def test_clean_stream_all_slices(self):
        sim = Simulator()
        net = AccessNetwork(sim)
        stream = VideoStream(sim, net.media_server, net.media_client,
                             port=6200, resolution="SD", duration=2.0)
        stream.start()
        sim.run(until=stream.end_time + 2)
        received = stream.finish()
        assert received.all()
        assert stream.packet_loss_rate == 0.0

    def test_hd_does_not_fit_uplink(self):
        # Streaming 8 Mbit/s into the 1 Mbit/s uplink must lose slices.
        sim = Simulator()
        net = AccessNetwork(sim)
        stream = VideoStream(sim, net.media_client, net.media_server,
                             port=6200, resolution="HD", duration=1.0)
        stream.start()
        sim.run(until=stream.end_time + 4)
        received = stream.finish()
        assert received.mean() < 0.5


class TestWeb:
    def test_page_fetch_plt(self):
        sim = Simulator()
        net = AccessNetwork(sim)
        WebServer(sim, net.media_server)
        fetch = PageFetch(sim, net.media_client, net.media_server.addr)
        fetch.start()
        sim.run(until=10)
        assert fetch.done
        # ~14 RTTs at 50 ms base RTT plus serialization.
        assert 0.3 < fetch.plt < 1.2

    def test_fetch_completion_callback(self):
        sim = Simulator()
        net = AccessNetwork(sim)
        WebServer(sim, net.media_server)
        done = []
        fetch = PageFetch(sim, net.media_client, net.media_server.addr,
                          on_complete=lambda f: done.append(f.plt))
        fetch.start()
        sim.run(until=10)
        assert len(done) == 1
        assert done[0] == fetch.plt

    def test_object_sizes_are_the_papers(self):
        assert PAGE_OBJECTS == (15_000, 5_800, 30_000, 30_000)

    def test_server_counts_requests(self):
        sim = Simulator()
        net = AccessNetwork(sim)
        server = WebServer(sim, net.media_server)
        PageFetch(sim, net.media_client, net.media_server.addr).start()
        sim.run(until=10)
        assert server.requests_served == len(PAGE_OBJECTS)

    def test_sequential_fetches_independent(self):
        sim = Simulator()
        net = AccessNetwork(sim)
        WebServer(sim, net.media_server)
        first = PageFetch(sim, net.media_client, net.media_server.addr)
        first.start()
        sim.run(until=10)
        second = PageFetch(sim, net.media_client, net.media_server.addr)
        second.start()
        sim.run(until=20)
        assert first.done and second.done
        assert abs(first.plt - second.plt) < 0.2
