"""Tests for the G.711 A-law codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.media.g711 import alaw_decode, alaw_encode, codec_round_trip, snr_db
from repro.media.speech import synthesize_speech


def test_round_trip_error_bounded():
    # A-law quantization error is bounded by the segment step size.
    pcm = np.arange(-32768, 32768, 17, dtype=np.int32)
    decoded = alaw_decode(alaw_encode(pcm))
    error = np.abs(decoded.astype(np.int64) - pcm)
    # Largest segment (seg 7) has step 256; half-step rounding -> <= 1024
    # worst case at the extreme end.
    assert error.max() <= 1024


def test_idempotent_on_decoded_values():
    pcm = np.arange(-32768, 32768, 101)
    once = alaw_decode(alaw_encode(pcm))
    twice = alaw_decode(alaw_encode(once))
    assert np.array_equal(once, twice)


def test_sign_preserved():
    pcm = np.array([-20000, -100, -8, 8, 100, 20000])
    decoded = alaw_decode(alaw_encode(pcm))
    assert np.all(np.sign(decoded) == np.sign(pcm))


def test_speech_round_trip_snr():
    # G.711 achieves ~35-40 dB SNR on speech material.
    speech = synthesize_speech(seed=42)
    decoded = codec_round_trip(speech)
    assert snr_db(speech, decoded) > 30.0


def test_snr_identity_infinite():
    x = np.array([1.0, 2.0, 3.0])
    assert snr_db(x, x) == float("inf")


def test_encode_output_is_bytes():
    encoded = alaw_encode(np.array([0, 1000, -1000]))
    assert encoded.dtype == np.uint8


def test_clipping_out_of_range():
    decoded = alaw_decode(alaw_encode(np.array([100000, -100000])))
    assert decoded[0] > 30000
    assert decoded[1] < -30000


@given(st.lists(st.integers(-32768, 32767), min_size=1, max_size=200))
@settings(max_examples=100)
def test_property_monotone_small_error(values):
    pcm = np.array(values, dtype=np.int32)
    decoded = alaw_decode(alaw_encode(pcm))
    # Companding error is relative: |err| <= max(16, |x|/8) per sample
    # (half of the in-segment step, which is ~1/16 of the magnitude).
    error = np.abs(decoded.astype(np.int64) - pcm)
    bound = np.maximum(16, np.abs(pcm) // 8 + 16)
    assert np.all(error <= bound)
