"""Golden-trace equivalence harness for the sim core.

Every registry sweep is lowered to a deterministic set of *golden cells*
(scale-``tiny`` axes with clamped warm-up/measurement windows, so the
whole catalog stays affordable) and each cell's JSON payload is hashed.
The hashes live in ``tests/golden/<sweep>.json`` and were generated from
the **pre-optimization** simulator core; any hot-path rewrite of the
engine/link/queue/TCP layers must keep every payload bit-identical, or
this suite fails and names the drifted cells.

Scope control
-------------
* Default (tier-1) runs verify a deterministic sample of cells per sweep
  (first / middle / last of each grid) to keep the suite fast.
* ``REPRO_GOLDEN=full`` verifies **every** golden cell of every sweep —
  this is what the CI perf-smoke job and any hot-path PR must run.
* ``REPRO_GOLDEN_UPDATE=1`` regenerates the golden files instead of
  asserting (also available as ``python tests/test_golden_traces.py``).
  Only regenerate deliberately — from a core whose results you trust —
  and say so in the commit message.

Hashes are exact (no float rounding): payloads are canonical JSON
(sorted keys, no whitespace) fed to SHA-256.  IEEE-754 arithmetic is
deterministic, so the traces are stable across runs and worker
processes on one platform; a different libm/numpy build may legally
produce different ulps — regenerate on such platforms rather than
loosening the comparison.
"""

import dataclasses
import hashlib
import json
import os
import sys
from pathlib import Path

import pytest

try:
    from repro.core.registry import REGISTRY
    from repro.runner.execute import execute_task
except ModuleNotFoundError:  # direct `python tests/test_golden_traces.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.core.registry import REGISTRY
    from repro.runner.execute import execute_task

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_SCHEMA = 1

#: Scale at which registry axes are resolved for golden cells ("tiny"):
#: small enough that every sweep uses its reduced axes and duration
#: floors.
GOLDEN_SCALE = 0.1

#: Clamps applied on top of the tiny-scale tasks.  Golden cells need
#: determinism and code-path coverage, not statistical fidelity, so the
#: windows are cut far below the registry floors.
MAX_WARMUP = 1.0  # simulated seconds
MAX_DURATION = 1.25  # simulated seconds
MAX_FETCHES = 2  # web cells: page fetches per cell


def _clamp(task):
    """Shrink one registry task to its golden-cell equivalent."""
    changes = {
        "warmup": min(task.warmup, MAX_WARMUP),
        "duration": min(task.duration, MAX_DURATION),
    }
    params = dict(task.params)
    if "fetches" in params:
        params["fetches"] = min(params["fetches"], MAX_FETCHES)
        changes["params"] = tuple(sorted(params.items()))
    return dataclasses.replace(task, **changes)


def golden_cells(spec):
    """``[(cell key string, CellTask)]`` for one sweep, tiny + clamped."""
    keys = spec.cells(GOLDEN_SCALE)
    tasks = [_clamp(task) for task in spec.tasks(GOLDEN_SCALE)]
    return [("/".join(str(part) for part in key), task)
            for key, task in zip(keys, tasks)]


def payload_hash(payload):
    """SHA-256 of the canonical JSON encoding of a cell payload."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def golden_path(name):
    return GOLDEN_DIR / ("%s.json" % name)


def generate(names=None, verbose=True):
    """(Re)generate the golden files; returns the number of cells run."""
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    if names:
        unknown = set(names) - set(REGISTRY)
        if unknown:
            raise KeyError("unknown sweep(s) %s — have: %s"
                           % (sorted(unknown), ", ".join(sorted(REGISTRY))))
    total = 0
    for name, spec in REGISTRY.items():
        if names and name not in names:
            continue
        cells = []
        for key, task in golden_cells(spec):
            cells.append({
                "key": key,
                "task": task.content_hash(),
                "payload": payload_hash(execute_task(task)),
            })
            total += 1
        document = {
            "schema": GOLDEN_SCHEMA,
            "sweep": name,
            "scale": GOLDEN_SCALE,
            "clamp": {"warmup": MAX_WARMUP, "duration": MAX_DURATION,
                      "fetches": MAX_FETCHES},
            "cells": cells,
        }
        with open(golden_path(name), "w") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        if verbose:
            print("golden: %-18s %3d cells" % (name, len(cells)))
    return total


def _selected(items):
    """The deterministic per-sweep sample verified by default runs."""
    if os.environ.get("REPRO_GOLDEN", "") == "full":
        return items
    picks = sorted({0, len(items) // 2, len(items) - 1})
    return [items[index] for index in picks]


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_golden_trace(name):
    spec = REGISTRY[name]
    if os.environ.get("REPRO_GOLDEN_UPDATE", "") == "1":
        generate(names={name}, verbose=False)
        return  # freshly written hashes would trivially match themselves
    path = golden_path(name)
    assert path.exists(), (
        "no golden file for sweep %r — regenerate with "
        "REPRO_GOLDEN_UPDATE=1 (from a trusted core!)" % name)
    with open(path) as handle:
        document = json.load(handle)
    assert document["schema"] == GOLDEN_SCHEMA
    assert document["scale"] == GOLDEN_SCALE

    cells = golden_cells(spec)
    recorded = document["cells"]
    assert [key for key, __ in cells] == [entry["key"] for entry in recorded], (
        "sweep %r cell grid drifted from its golden file (axes or key "
        "order changed) — if intended, regenerate the golden traces"
        % name)

    drifted = []
    for (key, task), expected in _selected(list(zip(cells, recorded))):
        assert task.content_hash() == expected["task"], (
            "task config for %s/%s no longer matches the golden file "
            "(scenario/duration/params drift) — if intended, regenerate"
            % (name, key))
        actual = payload_hash(execute_task(task))
        if actual != expected["payload"]:
            drifted.append((key, expected["payload"][:12], actual[:12]))
    assert not drifted, (
        "sim core results drifted from the golden traces for sweep %r: %s"
        % (name, ", ".join("%s (%s -> %s)" % item for item in drifted)))


def test_no_orphaned_golden_files():
    # A renamed/removed sweep must not leave a stale golden file behind.
    on_disk = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert on_disk == set(REGISTRY), (
        "golden dir out of sync with the registry: orphaned %s, missing %s"
        % (sorted(on_disk - set(REGISTRY)), sorted(set(REGISTRY) - on_disk)))


def test_payload_hash_is_canonical():
    # Key order and tuple/list spelling must not affect the hash.
    assert payload_hash({"b": 1, "a": [1.5, 2]}) == payload_hash(
        {"a": [1.5, 2], "b": 1})
    assert payload_hash(0.1 + 0.2) != payload_hash(0.3)  # exact, no rounding


if __name__ == "__main__":
    count = generate(names=set(sys.argv[1:]) or None)
    print("regenerated %d golden cells" % count)
