"""Smoke tests: every example imports cleanly and runs on a tiny grid."""

import importlib.util
import os

import pytest

from repro.runner import GridRunner

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, name + ".py")
    spec = importlib.util.spec_from_file_location("example_" + name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(autouse=True)
def no_cache(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "0")
    monkeypatch.setenv("REPRO_WORKERS", "1")


def test_examples_import_without_side_effects():
    # Importing must not run simulations (the smoke runs below are the
    # only slow part); every example exposes a main() entry point.
    for name in ("quickstart", "bufferbloat_voip", "iptv_video",
                 "backbone_sweep", "web_browsing", "wild_cdn_analysis"):
        module = load_example(name)
        assert callable(module.main), name


def test_quickstart_tiny(capsys):
    load_example("quickstart").main(buffers=(8,), warmup=1.0, duration=1.5)
    assert "uplink buffer" in capsys.readouterr().out


def test_bufferbloat_voip_tiny(capsys):
    load_example("bufferbloat_voip").main(
        buffers=(8,), workloads=("noBG",), warmup=1.0, duration=1.5,
        runner=GridRunner(workers=1, use_cache=False, progress=False))
    assert "user TALKS" in capsys.readouterr().out


def test_iptv_video_tiny(capsys):
    load_example("iptv_video").main(
        workloads=("noBG",), resolutions=("SD",), buffers=(8,),
        duration=1.5, warmup=1.0)
    out = capsys.readouterr().out
    assert "SSIM" in out and "noBG" in out


def test_backbone_sweep_tiny(capsys):
    load_example("backbone_sweep").main(
        workloads=("noBG",), buffers=(749,), warmup=1.0,
        voip_duration=1.5, fetches=1)
    assert "VoIP MOS" in capsys.readouterr().out


def test_web_browsing_tiny(capsys):
    load_example("web_browsing").main(
        cases=(("short-few", "down", "moderate download load"),),
        buffers=(8,), fetches=1, warmup=1.0)
    assert "median PLT" in capsys.readouterr().out


def test_wild_cdn_analysis_tiny(capsys):
    load_example("wild_cdn_analysis").main(n_flows=3000)
    assert "bufferbloat" in capsys.readouterr().out
