"""Integration tests for the TCP implementation."""

import pytest

from repro.sim import Simulator
from repro.sim.topology import AccessNetwork
from repro.tcp import Bic, Cubic, Reno, TcpConnection, TcpListener
from repro.util.units import MBPS, ms

from tests.netutil import TransferRecorder, run_transfer, two_hosts


class TestHandshakeAndTransfer:
    def test_small_transfer_completes(self):
        sim, recorder, client = run_transfer(10_000)
        assert recorder.bytes == 10_000
        assert recorder.messages == ["file"]
        assert recorder.established == 1
        assert client.state == "closed"

    def test_large_transfer_completes(self):
        sim, recorder, client = run_transfer(2_000_000)
        assert recorder.bytes == 2_000_000

    def test_zero_byte_message(self):
        sim, a, b = two_hosts()
        recorder = TransferRecorder()

        def on_server_conn(conn):
            conn.send(0, meta="empty")
            conn.close()

        TcpListener(sim, b, 80, on_connection=on_server_conn)
        client = recorder.attach(
            TcpConnection(sim, a, peer_addr=b.addr, peer_port=80))
        client.on_peer_fin = lambda c: c.close()
        client.connect()
        sim.run(until=10)
        assert recorder.messages == ["empty"]
        assert recorder.bytes == 0

    def test_transfer_time_reasonable(self):
        # 1 MB at 10 Mbit/s is ~0.8 s of serialization + slow start.
        sim, recorder, client = run_transfer(1_000_000, rate_bps=10 * MBPS,
                                             delay=ms(10))
        assert recorder.bytes == 1_000_000
        finish = recorder.close_times[0]
        assert 0.8 < finish < 3.0

    def test_multiple_messages_in_order(self):
        sim, a, b = two_hosts()
        recorder = TransferRecorder()

        def on_server_conn(conn):
            for index in range(5):
                conn.send(10_000, meta=index)
            conn.close()

        TcpListener(sim, b, 80, on_connection=on_server_conn)
        client = recorder.attach(
            TcpConnection(sim, a, peer_addr=b.addr, peer_port=80))
        client.on_peer_fin = lambda c: c.close()
        client.connect()
        sim.run(until=30)
        assert recorder.messages == [0, 1, 2, 3, 4]
        assert recorder.bytes == 50_000

    def test_request_response_round_trip(self):
        sim, a, b = two_hosts(delay=ms(25))
        got = {}

        def on_server_conn(conn):
            conn.on_message = lambda c, meta: (c.send(40_000, meta="resp"),
                                               c.close())

        TcpListener(sim, b, 80, on_connection=on_server_conn)
        client = TcpConnection(sim, a, peer_addr=b.addr, peer_port=80)
        client.on_established = lambda c: c.send(300, meta="req")
        client.on_message = lambda c, meta: got.setdefault("meta", meta)
        client.on_peer_fin = lambda c: c.close()
        client.connect()
        sim.run(until=20)
        assert got["meta"] == "resp"
        assert client.state == "closed"

    def test_both_endpoints_unregistered_after_close(self):
        sim, a, b = two_hosts()

        def on_server_conn(conn):
            conn.send(1000)
            conn.close()

        TcpListener(sim, b, 80, on_connection=on_server_conn)
        client = TcpConnection(sim, a, peer_addr=b.addr, peer_port=80)
        client.on_peer_fin = lambda c: c.close()
        client.connect()
        sim.run(until=20)
        assert not a.tcp_connections
        assert not b.tcp_connections


class TestLossRecovery:
    def test_recovers_through_tiny_buffer(self):
        # A 5-packet buffer at 2 Mbit/s forces repeated loss; the transfer
        # must still complete, exercising fast retransmit and RTO paths.
        sim, recorder, client = run_transfer(
            500_000, rate_bps=2 * MBPS, queue_packets=5, until=120)
        assert recorder.bytes == 500_000
        assert recorder.messages == ["file"]

    def test_fast_retransmit_used_under_loss(self):
        sim, a, b = two_hosts(rate_bps=2 * MBPS, queue_packets=5)
        server_conns = []

        def on_server_conn(conn):
            server_conns.append(conn)
            conn.send(500_000, meta="file")
            conn.close()

        TcpListener(sim, b, 80, on_connection=on_server_conn)
        recorder = TransferRecorder()
        client = recorder.attach(
            TcpConnection(sim, a, peer_addr=b.addr, peer_port=80))
        client.on_peer_fin = lambda c: c.close()
        client.connect()
        sim.run(until=120)
        assert recorder.bytes == 500_000
        sender = server_conns[0]
        assert sender.stats.retransmitted_segments > 0
        assert sender.stats.fast_retransmits > 0

    def test_delivery_is_exactly_once_despite_retransmissions(self):
        sim, recorder, client = run_transfer(
            300_000, rate_bps=1 * MBPS, queue_packets=4, until=120)
        # Exactly the sent byte count — no duplicates delivered to the app.
        assert recorder.bytes == 300_000

    def test_srtt_statistics_populated(self):
        sim, recorder, client = run_transfer(200_000)
        stats = client.stats
        assert stats.srtt_samples > 0
        assert 0 < stats.srtt_min <= stats.srtt_avg <= stats.srtt_max

    def test_rtt_reflects_path_delay(self):
        sim, a, b = two_hosts(delay=ms(50), queue_packets=1000)

        def on_server_conn(conn):
            conn.send(100_000)
            conn.close()

        TcpListener(sim, b, 80, on_connection=on_server_conn)
        client = TcpConnection(sim, a, peer_addr=b.addr, peer_port=80)
        client.on_peer_fin = lambda c: c.close()
        client.connect()
        sim.run(until=30)
        server_stats = client.stats
        # Base RTT is 100 ms; smoothed samples must be at least that.
        assert server_stats.srtt_min >= 0.099


class TestLongFlows:
    def test_send_forever_saturates_link(self):
        sim, a, b = two_hosts(rate_bps=10 * MBPS, queue_packets=100)
        TcpListener(sim, b, 80, on_connection=lambda c: c.send_forever())
        client = TcpConnection(sim, a, peer_addr=b.addr, peer_port=80)
        client.connect()
        sim.run(until=5)
        iface = b.default_route
        iface.reset_stats()
        sim.run(until=15)
        assert iface.utilization() > 0.90

    def test_infinite_source_rejects_close(self):
        sim, a, b = two_hosts()
        TcpListener(sim, b, 80, on_connection=lambda c: c.send_forever())
        client = TcpConnection(sim, a, peer_addr=b.addr, peer_port=80)
        client.connect()
        sim.run(until=2)
        server_conn = next(iter(b.tcp_connections.values()))
        with pytest.raises(RuntimeError):
            server_conn.close()

    def test_abort_cleans_up(self):
        sim, a, b = two_hosts()
        TcpListener(sim, b, 80, on_connection=lambda c: c.send_forever())
        client = TcpConnection(sim, a, peer_addr=b.addr, peer_port=80)
        client.connect()
        sim.run(until=2)
        client.abort()
        assert client.state == "closed"
        assert not a.tcp_connections


class TestApiGuards:
    def test_send_after_close_raises(self):
        sim, a, b = two_hosts()
        TcpListener(sim, b, 80)
        client = TcpConnection(sim, a, peer_addr=b.addr, peer_port=80)
        client.connect()
        sim.run(until=2)
        client.close()
        with pytest.raises(RuntimeError):
            client.send(100)

    def test_negative_send_raises(self):
        sim, a, b = two_hosts()
        TcpListener(sim, b, 80)
        client = TcpConnection(sim, a, peer_addr=b.addr, peer_port=80)
        with pytest.raises(ValueError):
            client.send(-1)

    def test_double_connect_raises(self):
        sim, a, b = two_hosts()
        TcpListener(sim, b, 80)
        client = TcpConnection(sim, a, peer_addr=b.addr, peer_port=80)
        client.connect()
        with pytest.raises(RuntimeError):
            client.connect()


class TestCongestionControlIntegration:
    @pytest.mark.parametrize("cc_cls", [Reno, Bic, Cubic])
    def test_transfer_completes_with_each_algorithm(self, cc_cls):
        sim, recorder, client = run_transfer(
            400_000, rate_bps=5 * MBPS, queue_packets=20,
            cc_factory=cc_cls, until=60)
        assert recorder.bytes == 400_000

    # Single-flow utilization differs by algorithm: Reno's AIMD matches a
    # BDP-sized buffer well; BIC's beta=0.8 sawtooth plus its burstier probing
    # costs more on a single flow (multi-flow aggregates recover, see below).
    @pytest.mark.parametrize(
        "cc_cls,min_util", [(Reno, 0.9), (Bic, 0.55), (Cubic, 0.8)])
    def test_long_flow_on_access_network(self, cc_cls, min_util):
        sim = Simulator()
        net = AccessNetwork(sim, down_buffer_packets=64, up_buffer_packets=8)
        TcpListener(sim, net.media_server, 80,
                    on_connection=lambda c: c.send_forever(),
                    cc_factory=cc_cls)
        client = TcpConnection(sim, net.media_client,
                               peer_addr=net.media_server.addr, peer_port=80,
                               cc=cc_cls())
        client.connect()
        sim.run(until=5)
        net.reset_measurements()
        sim.run(until=15)
        assert net.down_bottleneck.utilization() > min_util

    @pytest.mark.parametrize("cc_cls", [Reno, Bic, Cubic])
    def test_eight_long_flows_fill_access_downlink(self, cc_cls):
        sim = Simulator()
        net = AccessNetwork(sim, down_buffer_packets=64, up_buffer_packets=8)
        TcpListener(sim, net.media_server, 80,
                    on_connection=lambda c: c.send_forever(),
                    cc_factory=cc_cls)
        for index in range(8):
            client = net.clients[1 + index % 2]
            TcpConnection(sim, client, peer_addr=net.media_server.addr,
                          peer_port=80, cc=cc_cls()).connect()
        sim.run(until=5)
        net.reset_measurements()
        sim.run(until=15)
        assert net.down_bottleneck.utilization() > 0.9
