"""Tests for the QoE metric layer: E-model, PESQ-like, scales, G.1030."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.media.g711 import codec_round_trip
from repro.media.playout import reconstruct_signal
from repro.media.speech import synthesize_speech
from repro.qoe.emodel import (
    EModel,
    delay_impairment,
    loss_impairment,
    mos_to_r,
    r_to_mos,
)
from repro.qoe.pesq import pesq_like_mos
from repro.qoe.scales import (
    g114_class,
    heat_marker_from_delay,
    heat_marker_from_mos,
    mos_class,
    voip_mos_class,
)
from repro.qoe.voip import score_call
from repro.qoe.web import g1030_mos, min_plt_for


class TestEModel:
    def test_no_delay_no_impairment(self):
        assert delay_impairment(0.05) == 0.0
        assert delay_impairment(0.100) == 0.0

    def test_moderate_delay(self):
        # ~400 ms one-way costs about 24 R points.
        assert delay_impairment(0.400) == pytest.approx(24.0, abs=3.0)

    def test_bufferbloat_delay_saturates(self):
        idd_3s = delay_impairment(3.0)
        idd_10s = delay_impairment(10.0)
        assert 45.0 < idd_3s < 55.0
        assert idd_10s < 60.0

    @given(st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=100)
    def test_property_monotone_in_delay(self, delay):
        assert delay_impairment(delay) <= delay_impairment(delay + 0.1) + 1e-9

    def test_loss_impairment_monotone(self):
        values = [loss_impairment(l) for l in (0.0, 0.01, 0.05, 0.2, 1.0)]
        assert values == sorted(values)
        assert values[0] == 0.0

    def test_r_to_mos_anchors(self):
        assert r_to_mos(0) == 1.0
        assert r_to_mos(100) == 4.5
        assert r_to_mos(93.2) == pytest.approx(4.41, abs=0.05)

    def test_mos_to_r_inverse(self):
        for r in (10, 30, 50, 70, 90):
            assert mos_to_r(r_to_mos(r)) == pytest.approx(r, abs=0.1)

    def test_emodel_score_clean(self):
        __, mos = EModel().score(one_way_delay=0.05, loss_rate=0.0)
        assert mos > 4.3

    def test_emodel_score_bad(self):
        __, mos = EModel().score(one_way_delay=2.0, loss_rate=0.10)
        assert mos < 2.5


class TestPesqLike:
    @pytest.fixture(scope="class")
    def media(self):
        ref = synthesize_speech(seed=1001, duration=4.0)
        frames = [codec_round_trip(ref[i * 160:(i + 1) * 160])
                  for i in range(len(ref) // 160)]
        return frames, np.concatenate(frames)

    def test_identity_is_excellent(self, media):
        __, clean = media
        assert pesq_like_mos(clean, clean) > 4.3

    def test_loss_degrades_monotonically(self, media):
        frames, clean = media
        rng = np.random.default_rng(3)
        scores = []
        for loss in (0.0, 0.05, 0.20):
            statuses = ["lost" if rng.random() < loss else "ok"
                        for __ in frames]
            deg = reconstruct_signal(frames, statuses)
            scores.append(pesq_like_mos(clean, deg))
        assert scores[0] > scores[1] > scores[2]

    def test_heavy_loss_is_bad(self, media):
        frames, clean = media
        statuses = ["lost" if i % 2 else "ok" for i in range(len(frames))]
        deg = reconstruct_signal(frames, statuses)
        assert pesq_like_mos(clean, deg) < 2.0

    def test_bounded(self, media):
        frames, clean = media
        silent = np.zeros_like(clean)
        mos = pesq_like_mos(clean, silent)
        assert 1.0 <= mos <= 4.56


class TestVoipComposition:
    def test_delay_kills_good_signal(self):
        from repro.media.playout import PlayoutResult

        ref = synthesize_speech(seed=1001, duration=2.0)
        clean = codec_round_trip(ref)
        good = PlayoutResult(statuses=[], mouth_to_ear_delay=0.1,
                             playout_delay=0.06, frames=100, ok=100)
        bloated = PlayoutResult(statuses=[], mouth_to_ear_delay=2.0,
                                playout_delay=0.06, frames=100, ok=100)
        fast = score_call(clean, clean, good)
        slow = score_call(clean, clean, bloated)
        assert fast.mos > 4.0
        assert slow.mos < 2.7
        assert slow.z1_mos == pytest.approx(fast.z1_mos)  # same signal

    def test_conversational_delay_override(self):
        from repro.media.playout import PlayoutResult

        ref = synthesize_speech(seed=1001, duration=2.0)
        clean = codec_round_trip(ref)
        local = PlayoutResult(statuses=[], mouth_to_ear_delay=0.1,
                              playout_delay=0.06, frames=10, ok=10)
        coupled = score_call(clean, clean, local, conversational_delay=2.0)
        assert coupled.z2 > 40.0
        assert coupled.mos < 2.7


class TestScales:
    def test_g114_classes(self):
        assert g114_class(0.05) == "acceptable"
        assert g114_class(0.2) == "problematic"
        assert g114_class(1.0) == "bad"

    def test_voip_bands(self):
        assert voip_mos_class(4.4) == "very satisfied"
        assert voip_mos_class(1.5) == "not recommended"

    def test_acr_bands(self):
        assert mos_class(4.6) == "excellent"
        assert mos_class(3.0) == "fair"
        assert mos_class(1.2) == "bad"

    def test_markers(self):
        assert heat_marker_from_mos(4.0) == "+"
        assert heat_marker_from_mos(2.8) == "o"
        assert heat_marker_from_mos(1.0) == "!"
        assert heat_marker_from_delay(0.05) == "+"
        assert heat_marker_from_delay(5.0) == "!"


class TestG1030:
    def test_anchors(self):
        assert g1030_mos(0.56) == 5.0
        assert g1030_mos(6.0) == 1.0
        assert g1030_mos(10.0) == 1.0
        assert g1030_mos(None) == 1.0

    def test_logarithmic_midpoint(self):
        # Geometric mean of the anchors maps to the middle of the scale.
        import math

        mid = math.sqrt(0.56 * 6.0)
        assert g1030_mos(mid) == pytest.approx(3.0, abs=0.01)

    def test_paper_examples(self):
        # §9.4: both 9 s and 5 s map to "bad"-ish scores despite the
        # large QoS difference.
        assert g1030_mos(9.0) == 1.0
        assert g1030_mos(5.0) < 1.4

    @given(st.floats(min_value=0.1, max_value=30.0))
    @settings(max_examples=100)
    def test_property_monotone(self, plt):
        assert g1030_mos(plt) >= g1030_mos(plt + 0.1) - 1e-9

    def test_per_testbed_anchor(self):
        assert min_plt_for("access") == 0.56
        assert min_plt_for("backbone") == 0.85
