"""Unit tests for the congestion-control algorithms."""

import pytest

from repro.tcp.cc import Bic, CongestionControl, Cubic, Reno, make_cc

MSS = 1460


class TestReno:
    def test_initial_window(self):
        cc = Reno(mss=MSS, initial_window_segments=3)
        assert cc.cwnd == 3 * MSS
        assert cc.in_slow_start

    def test_slow_start_doubles_per_window(self):
        cc = Reno(mss=MSS)
        start = cc.cwnd
        # One window's worth of ACKs in slow start ~ doubles cwnd.
        acked = 0
        while acked < start:
            cc.on_ack(MSS, now=1.0, srtt=0.1)
            acked += MSS
        assert cc.cwnd >= 2 * start - MSS

    def test_congestion_avoidance_linear(self):
        cc = Reno(mss=MSS)
        cc.ssthresh = 10 * MSS
        cc.cwnd = 20 * MSS
        before = cc.cwnd
        for __ in range(20):  # one window of ACKs
            cc.on_ack(MSS, now=1.0, srtt=0.1)
        assert cc.cwnd == pytest.approx(before + MSS, rel=0.01)

    def test_loss_halves(self):
        cc = Reno(mss=MSS)
        cc.cwnd = 100 * MSS
        cc.ssthresh = 50 * MSS
        cc.on_loss(flight_bytes=100 * MSS, now=1.0)
        assert cc.ssthresh == pytest.approx(50 * MSS)
        assert cc.cwnd == pytest.approx(50 * MSS)

    def test_loss_floor_two_segments(self):
        cc = Reno(mss=MSS)
        cc.on_loss(flight_bytes=MSS, now=1.0)
        assert cc.ssthresh == 2 * MSS

    def test_timeout_collapses_to_one_segment(self):
        cc = Reno(mss=MSS)
        cc.cwnd = 100 * MSS
        cc.on_timeout(flight_bytes=100 * MSS, now=1.0)
        assert cc.cwnd == MSS
        assert cc.ssthresh == pytest.approx(50 * MSS)


class TestBic:
    def test_binary_search_approaches_wmax(self):
        cc = Bic(mss=MSS)
        cc.ssthresh = 10 * MSS
        cc.cwnd = 40 * MSS
        cc.w_max = 100.0
        # Many ACKs: window should move toward w_max but not wildly past.
        for __ in range(2000):
            cc.on_ack(MSS, now=1.0, srtt=0.1)
            if cc.cwnd / MSS >= cc.w_max:
                break
        assert cc.cwnd / MSS >= 95.0

    def test_increment_capped_by_smax(self):
        cc = Bic(mss=MSS)
        cc.ssthresh = MSS  # force congestion avoidance
        cc.cwnd = 20 * MSS
        cc.w_max = 10_000.0
        before = cc.cwnd / MSS
        cc.on_ack(MSS, now=1.0, srtt=0.1)
        delta = cc.cwnd / MSS - before
        assert delta <= Bic.S_MAX / before * 1.01

    def test_fast_convergence_reduces_wmax(self):
        cc = Bic(mss=MSS)
        cc.w_max = 100.0
        cc.on_loss(flight_bytes=50 * MSS, now=1.0)
        assert cc.w_max == pytest.approx(50 * (1 + Bic.BETA) / 2)

    def test_loss_uses_beta(self):
        cc = Bic(mss=MSS)
        cc.on_loss(flight_bytes=100 * MSS, now=1.0)
        assert cc.ssthresh == pytest.approx(100 * MSS * Bic.BETA)
        assert cc.cwnd == pytest.approx(cc.ssthresh)


class TestCubic:
    def test_loss_uses_beta(self):
        cc = Cubic(mss=MSS)
        cc.cwnd = 100 * MSS
        cc.on_loss(flight_bytes=100 * MSS, now=5.0)
        assert cc.ssthresh == pytest.approx(100 * MSS * Cubic.BETA)
        assert cc.cwnd == pytest.approx(cc.ssthresh)
        assert cc.w_max == pytest.approx(100.0)

    def test_fast_convergence(self):
        cc = Cubic(mss=MSS)
        cc.w_max = 200.0
        cc.on_loss(flight_bytes=100 * MSS, now=5.0)
        assert cc.w_max == pytest.approx(100 * (2 - Cubic.BETA) / 2)

    def test_concave_growth_toward_wmax(self):
        cc = Cubic(mss=MSS)
        cc.ssthresh = 10 * MSS
        cc.cwnd = 70 * MSS
        cc.w_max = 100.0
        now = 0.0
        trajectory = []
        for step in range(400):
            now += 0.01
            cc.on_ack(MSS, now=now, srtt=0.1)
            trajectory.append(cc.cwnd / MSS)
        # Growth plateaus near w_max (concave region) before probing past it.
        assert trajectory[-1] > 95.0
        deltas = [b - a for a, b in zip(trajectory, trajectory[1:])]
        assert max(deltas[:50]) > max(deltas[150:250])

    def test_timeout_resets_epoch(self):
        cc = Cubic(mss=MSS)
        cc.ssthresh = MSS
        cc.on_ack(MSS, now=1.0, srtt=0.1)
        assert cc.epoch_start is not None
        cc.on_timeout(flight_bytes=10 * MSS, now=2.0)
        assert cc.epoch_start is None
        assert cc.cwnd == MSS


class TestSlowStartExit:
    """HyStart-style delay-based exit: threshold clamping + exact effects.

    These lock the numeric behaviour the hot-path rewrite touches:
    ``min_rtt / 8`` clamped to [4 ms, 16 ms], exit sets ``ssthresh`` to
    the *current* cwnd, and the <16-segment / missing-sample guards.
    """

    def _cc_in_slow_start(self):
        cc = Reno(mss=MSS)
        cc.cwnd = 32.0 * MSS  # >= 16 segments, still below ssthresh=inf
        return cc

    def test_threshold_floor_4ms(self):
        cc = self._cc_in_slow_start()
        # min_rtt/8 = 2 ms -> clamped up to 4 ms.
        assert cc.maybe_exit_slow_start(0.016 + 0.0039, 0.016) is False
        assert cc.in_slow_start
        assert cc.maybe_exit_slow_start(0.016 + 0.004, 0.016) is True
        assert cc.ssthresh == 32.0 * MSS  # exactly the cwnd at exit

    def test_threshold_cap_16ms(self):
        cc = self._cc_in_slow_start()
        # min_rtt/8 = 25 ms -> clamped down to 16 ms.
        assert cc.maybe_exit_slow_start(0.2 + 0.0159, 0.2) is False
        assert cc.maybe_exit_slow_start(0.2 + 0.016, 0.2) is True

    def test_threshold_midband_exact(self):
        cc = self._cc_in_slow_start()
        # min_rtt/8 = 8 ms: inside the clamp band, used as-is.
        assert cc.maybe_exit_slow_start(0.064 + 0.0079, 0.064) is False
        assert cc.maybe_exit_slow_start(0.064 + 0.008, 0.064) is True

    def test_no_exit_below_16_segments(self):
        cc = Reno(mss=MSS)
        cc.cwnd = 15.9 * MSS
        assert cc.maybe_exit_slow_start(10.0, 0.01) is False
        assert cc.ssthresh == float("inf")

    def test_no_exit_without_samples(self):
        cc = self._cc_in_slow_start()
        assert cc.maybe_exit_slow_start(None, 0.05) is False
        assert cc.maybe_exit_slow_start(0.05, None) is False

    def test_no_exit_outside_slow_start(self):
        cc = self._cc_in_slow_start()
        cc.ssthresh = cc.cwnd  # congestion avoidance
        assert cc.maybe_exit_slow_start(10.0, 0.01) is False


class TestTimeoutCollapse:
    """RTO during/after recovery: exact window collapse per algorithm."""

    @pytest.mark.parametrize("cls", [Reno, Bic, Cubic])
    def test_timeout_exact_values(self, cls):
        cc = cls(mss=MSS)
        cc.cwnd = 80.0 * MSS
        cc.ssthresh = 40.0 * MSS
        cc.on_timeout(flight_bytes=60 * MSS, now=3.0)
        assert cc.cwnd == float(MSS)  # exactly one segment
        assert cc.ssthresh == 30.0 * MSS  # flight/2

    @pytest.mark.parametrize("cls", [Reno, Bic, Cubic])
    def test_timeout_ssthresh_floor_two_segments(self, cls):
        cc = cls(mss=MSS)
        cc.on_timeout(flight_bytes=MSS, now=3.0)
        assert cc.ssthresh == 2.0 * MSS
        assert cc.cwnd == float(MSS)

    def test_cubic_timeout_resets_epoch_state(self):
        cc = Cubic(mss=MSS)
        cc.ssthresh = 10.0 * MSS
        cc.cwnd = 20.0 * MSS
        cc.on_ack(MSS, now=1.0, srtt=0.05)  # starts an epoch
        assert cc.epoch_start is not None
        cc.on_timeout(flight_bytes=20 * MSS, now=2.0)
        assert cc.epoch_start is None
        assert cc.cwnd == float(MSS)

    def test_timeout_during_recovery_sequence(self):
        """on_loss (enter recovery) then on_timeout: the timeout wins and
        collapses to one segment, with ssthresh from the *current*
        flight, not the pre-loss one."""
        cc = Cubic(mss=MSS)
        cc.ssthresh = 50.0 * MSS
        cc.cwnd = 100.0 * MSS
        cc.on_loss(flight_bytes=100 * MSS, now=1.0)
        assert cc.cwnd == cc.ssthresh == 70.0 * MSS  # BETA=0.7 exactly
        assert cc.w_max == 100.0
        cc.on_timeout(flight_bytes=10 * MSS, now=2.0)
        assert cc.cwnd == float(MSS)
        assert cc.ssthresh == 5.0 * MSS
        assert cc.epoch_start is None

    def test_exit_recovery_collapses_to_ssthresh(self):
        cc = Reno(mss=MSS)
        cc.cwnd = 100.0 * MSS
        cc.on_loss(flight_bytes=100 * MSS, now=1.0)
        cc.cwnd = 120.0 * MSS  # inflation during recovery
        cc.on_exit_recovery(now=2.0)
        assert cc.cwnd == cc.ssthresh == 50.0 * MSS


class TestByteCountingCap:
    """Appropriate byte counting: slow start grows by min(acked, MSS)."""

    @pytest.mark.parametrize("cls", [Reno, Bic, Cubic])
    def test_stretch_ack_capped_at_one_mss(self, cls):
        cc = cls(mss=MSS)
        before = cc.cwnd
        cc.on_ack(4 * MSS, now=1.0, srtt=0.05)  # stretch ACK
        assert cc.cwnd == before + MSS  # capped exactly at one MSS

    @pytest.mark.parametrize("cls", [Reno, Bic, Cubic])
    def test_partial_ack_counts_bytes(self, cls):
        cc = cls(mss=MSS)
        before = cc.cwnd
        cc.on_ack(500, now=1.0, srtt=0.05)
        assert cc.cwnd == before + 500  # below the cap: exact bytes


class TestFactory:
    def test_make_cc_by_name(self):
        assert isinstance(make_cc("reno"), Reno)
        assert isinstance(make_cc("bic"), Bic)
        assert isinstance(make_cc("cubic"), Cubic)

    def test_make_cc_unknown(self):
        with pytest.raises(ValueError):
            make_cc("vegas")

    def test_base_class_is_abstract_for_on_ack(self):
        cc = CongestionControl()
        with pytest.raises(NotImplementedError):
            cc.on_ack(MSS, 0.0, 0.1)
