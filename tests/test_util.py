"""Tests for utility helpers: RNG streams and unit formatting."""

import numpy as np

from repro.util.rng import RngRegistry
from repro.util.units import (
    bits_to_bytes,
    bytes_to_bits,
    mbps,
    ms,
    pretty_bytes,
    pretty_rate,
    pretty_time,
)


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        a = RngRegistry(7).stream("harpoon")
        b = RngRegistry(7).stream("harpoon")
        assert np.array_equal(a.random(16), b.random(16))

    def test_different_names_independent(self):
        registry = RngRegistry(7)
        a = registry.stream("alpha").random(16)
        b = registry.stream("beta").random(16)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x").random(8)
        b = RngRegistry(2).stream("x").random(8)
        assert not np.array_equal(a, b)

    def test_stream_cached(self):
        registry = RngRegistry(0)
        assert registry.stream("s") is registry.stream("s")

    def test_fork_family(self):
        registry = RngRegistry(0)
        members = [registry.fork("sessions", i).random(4) for i in range(3)]
        assert not np.array_equal(members[0], members[1])
        assert not np.array_equal(members[1], members[2])


class TestUnits:
    def test_conversions(self):
        assert mbps(16) == 16_000_000
        assert ms(50) == 0.05
        assert bytes_to_bits(1500) == 12_000
        assert bits_to_bytes(12_000) == 1500

    def test_pretty_rate(self):
        assert pretty_rate(16_000_000) == "16.00 Mbit/s"
        assert pretty_rate(1_500) == "1.50 kbit/s"
        assert pretty_rate(2_000_000_000) == "2.00 Gbit/s"
        assert pretty_rate(12) == "12 bit/s"

    def test_pretty_time(self):
        assert pretty_time(1.5) == "1.500 s"
        assert pretty_time(0.05) == "50.0 ms"
        assert pretty_time(0.00005) == "50.0 us"

    def test_pretty_bytes(self):
        assert pretty_bytes(512) == "512 B"
        assert pretty_bytes(2048) == "2.00 KiB"
        assert pretty_bytes(3 << 20) == "3.00 MiB"
