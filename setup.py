"""Setup shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works on
environments whose setuptools lacks PEP 660 editable-wheel support
(legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
