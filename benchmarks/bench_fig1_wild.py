"""F1: regenerate Figure 1 (queueing in the wild) and §3's statistics."""

from repro.core.paper_data import WILD_STATS
from repro.wild import analyze, generate_dataset
from repro.wild.analysis import render_fig1

from benchmarks.common import comparison_table, run_once, scaled_count


def test_fig1_wild(benchmark):
    n_flows = scaled_count(150_000, minimum=30_000)

    def run():
        dataset = generate_dataset(n_flows=n_flows, seed=7)
        return analyze(dataset)

    analysis = run_once(benchmark, run)
    print()
    print(render_fig1(analysis))
    rows = [
        ("queueing < 100 ms", "%.1f%%" % (analysis.stats["qd_below_100ms"] * 100),
         "%.0f%%" % (WILD_STATS["qd_below_100ms"] * 100)),
        ("queueing > 500 ms", "%.2f%%" % (analysis.stats["qd_above_500ms"] * 100),
         "%.1f%%" % (WILD_STATS["qd_above_500ms"] * 100)),
        ("queueing > 1 s", "%.2f%%" % (analysis.stats["qd_above_1s"] * 100),
         "%.0f%%" % (WILD_STATS["qd_above_1s"] * 100)),
        ("near flows < 100 ms", "%.1f%%" % (analysis.stats["near_qd_below_100ms"] * 100),
         "%.0f%%" % (WILD_STATS["near_qd_below_100ms"] * 100)),
    ]
    comparison_table("Figure 1 / §3 statistics (ours vs paper)",
                     ("statistic", "ours", "paper"), rows)
    # Shape assertions: modest queueing dominates; the bufferbloat tail
    # exists but is small.
    assert analysis.stats["qd_below_100ms"] > 0.7
    assert 0.005 < analysis.stats["qd_above_500ms"] < 0.06
    assert analysis.stats["qd_above_1s"] < analysis.stats["qd_above_500ms"]
