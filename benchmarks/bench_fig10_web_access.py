"""F10: regenerate Figure 10 (WebQoE heatmaps, access testbed).

Grids come from the registered ``fig10a`` / ``fig10b`` sweeps.
"""

from repro.core.paper_data import FIG10A, FIG10B
from repro.core.registry import get
from repro.core.web_study import render_fig10

from benchmarks.common import comparison_table, run_once, run_registered


def _table(results, paper, workloads, buffers, title):
    rows = []
    for workload in workloads:
        for packets in buffers:
            cell = results[(workload, packets)]
            rows.append((workload, packets,
                         "%.1f / %.1f" % (cell["median_plt"],
                                          paper[(workload, packets)]),
                         "%.1f" % cell["mos"]))
    comparison_table(title, ("workload", "buffer", "PLT s ours/paper", "MOS"),
                     rows)


def test_fig10a_download_activity(benchmark):
    spec = get("fig10a")
    workloads = spec.workloads()
    buffers = spec.buffer_axis()

    def run():
        return run_registered(spec.name)

    results = run_once(benchmark, run).to_mapping()
    print()
    print(render_fig10(results, "down", buffers, workloads=workloads))
    _table(results, FIG10A, workloads, buffers,
           "Figure 10a (ours/paper): PLT under download congestion")
    # Baseline is excellent; long-many pins the page load regardless of
    # buffer; long-few shows the bufferbloat PLT growth with buffer size.
    assert results[("noBG", 64)]["median_plt"] < 1.0
    assert results[("long-many", 64)]["median_plt"] > 2.0
    assert (results[("long-few", 256)]["median_plt"]
            > results[("long-few", 8)]["median_plt"])


def test_fig10b_upload_activity(benchmark):
    spec = get("fig10b")
    workloads = spec.workloads()
    buffers = spec.buffer_axis()

    def run():
        return run_registered(spec.name)

    results = run_once(benchmark, run).to_mapping()
    print()
    print(render_fig10(results, "up", buffers, workloads=workloads))
    _table(results, FIG10B, workloads, buffers,
           "Figure 10b (ours/paper): PLT under upload congestion")
    # Upload congestion wrecks the page load; small uplink buffers keep
    # long-few barely acceptable (the paper's only tolerable upload cell).
    assert results[("long-few", 8)]["median_plt"] < 3.0
    assert results[("long-few", 256)]["median_plt"] > 4.0
    assert results[("short-many", 64)]["median_plt"] > 4.0
