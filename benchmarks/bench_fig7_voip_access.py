"""F7: regenerate Figure 7 (VoIP MOS heatmaps, access testbed)."""

from repro.core.paper_data import FIG7A_LISTENS, FIG7B_LISTENS, FIG7B_TALKS
from repro.core.voip_study import fig7_grid, render_fig7

from benchmarks.common import (
    comparison_table,
    grid_runner,
    run_once,
    scale,
    scaled_duration,
)

BUFFERS = (8, 64, 256)
WORKLOADS = ("noBG", "long-few", "long-many")


def test_fig7b_upload_activity(benchmark):
    """The headline bufferbloat result: upload congestion."""
    duration = scaled_duration(8.0, minimum=5.0)
    buffers = BUFFERS if scale() < 4 else (8, 16, 32, 64, 128, 256)
    workloads = WORKLOADS if scale() < 4 else (
        "noBG", "long-few", "long-many", "short-few", "short-many")

    def run():
        return fig7_grid("up", buffers, workloads=workloads, calls=1,
                         warmup=10.0, duration=duration, seed=3,
                         runner=grid_runner())

    results = run_once(benchmark, run)
    print()
    print(render_fig7(results, "up", buffers, workloads=workloads))
    rows = []
    for workload in workloads:
        for packets in buffers:
            cell = results[(workload, packets)]
            rows.append((workload, packets,
                         "%.1f / %.1f" % (cell["talks"],
                                          FIG7B_TALKS[(workload, packets)]),
                         "%.1f / %.1f" % (cell["listens"],
                                          FIG7B_LISTENS[(workload, packets)])))
    comparison_table("Figure 7b (ours/paper): MOS under upload congestion",
                     ("workload", "buffer", "talks", "listens"), rows)
    # noBG is excellent everywhere; congested talks at a bloated buffer is
    # terrible; the listening direction degrades too (conversational z2).
    assert results[("noBG", 64)]["talks"] > 3.9
    assert results[("long-many", 256)]["talks"] < 1.8
    assert results[("long-many", 256)]["listens"] < 3.3
    # Shrinking the uplink buffer mitigates (the paper's 2.5-point swing).
    assert (results[("long-many", 8)]["talks"]
            > results[("long-many", 256)]["talks"])


def test_fig7a_download_activity(benchmark):
    duration = scaled_duration(8.0, minimum=5.0)

    def run():
        return fig7_grid("down", BUFFERS, workloads=WORKLOADS, calls=1,
                         warmup=8.0, duration=duration, seed=3,
                         runner=grid_runner())

    results = run_once(benchmark, run)
    print()
    print(render_fig7(results, "down", BUFFERS, workloads=WORKLOADS))
    rows = []
    for workload in WORKLOADS:
        for packets in BUFFERS:
            cell = results[(workload, packets)]
            rows.append((workload, packets, "%.1f" % cell["talks"],
                         "%.1f / %.1f" % (cell["listens"],
                                          FIG7A_LISTENS[(workload, packets)])))
    comparison_table("Figure 7a (ours/paper): MOS under download congestion",
                     ("workload", "buffer", "talks", "listens/paper"), rows)
    # Download congestion hurts the listening direction, not talking, and
    # far less than upload congestion does.
    assert results[("long-many", 64)]["talks"] > 3.5
    assert (results[("long-many", 64)]["listens"]
            < results[("noBG", 64)]["listens"])
