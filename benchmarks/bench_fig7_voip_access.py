"""F7: regenerate Figure 7 (VoIP MOS heatmaps, access testbed).

Grids come from the registered ``fig7b`` (upload activity, the headline
bufferbloat case) and ``fig7a`` (download activity) sweeps.
"""

from repro.core.paper_data import FIG7A_LISTENS, FIG7B_LISTENS, FIG7B_TALKS
from repro.core.registry import get
from repro.core.voip_study import render_fig7

from benchmarks.common import (comparison_table, fidelity_line,
                               run_once, run_registered)


def test_fig7b_upload_activity(benchmark):
    """The headline bufferbloat result: upload congestion."""
    spec = get("fig7b")
    workloads = spec.workloads()
    buffers = spec.buffer_axis()

    def run():
        return run_registered(spec.name)

    result_set = run_once(benchmark, run)
    results = result_set.to_mapping()
    print()
    print(render_fig7(results, "up", buffers, workloads=workloads))
    fidelity_line("fig7b", result_set)
    rows = []
    for workload in workloads:
        for packets in buffers:
            cell = results[(workload, packets)]
            rows.append((workload, packets,
                         "%.1f / %.1f" % (cell["talks"],
                                          FIG7B_TALKS[(workload, packets)]),
                         "%.1f / %.1f" % (cell["listens"],
                                          FIG7B_LISTENS[(workload, packets)])))
    comparison_table("Figure 7b (ours/paper): MOS under upload congestion",
                     ("workload", "buffer", "talks", "listens"), rows)
    # noBG is excellent everywhere; congested talks at a bloated buffer is
    # terrible; the listening direction degrades too (conversational z2).
    assert results[("noBG", 64)]["talks"] > 3.9
    assert results[("long-many", 256)]["talks"] < 1.8
    assert results[("long-many", 256)]["listens"] < 3.3
    # Shrinking the uplink buffer mitigates (the paper's 2.5-point swing).
    assert (results[("long-many", 8)]["talks"]
            > results[("long-many", 256)]["talks"])


def test_fig7a_download_activity(benchmark):
    spec = get("fig7a")
    workloads = spec.workloads()
    buffers = spec.buffer_axis()

    def run():
        return run_registered(spec.name)

    result_set = run_once(benchmark, run)
    results = result_set.to_mapping()
    print()
    print(render_fig7(results, "down", buffers, workloads=workloads))
    fidelity_line("fig7a", result_set)
    rows = []
    for workload in workloads:
        for packets in buffers:
            cell = results[(workload, packets)]
            rows.append((workload, packets, "%.1f" % cell["talks"],
                         "%.1f / %.1f" % (cell["listens"],
                                          FIG7A_LISTENS[(workload, packets)])))
    comparison_table("Figure 7a (ours/paper): MOS under download congestion",
                     ("workload", "buffer", "talks", "listens/paper"), rows)
    # Download congestion hurts the listening direction, not talking, and
    # far less than upload congestion does.
    assert results[("long-many", 64)]["talks"] > 3.5
    assert (results[("long-many", 64)]["listens"]
            < results[("noBG", 64)]["listens"])
