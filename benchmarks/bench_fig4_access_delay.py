"""F4: regenerate Figure 4 (mean queueing delay heatmaps, access)."""

from repro.core.paper_data import FIG4_UP_ONLY_UPLINK
from repro.core.study import fig4_delay_grid, render_fig4
from repro.qoe.scales import g114_class

from benchmarks.common import (
    comparison_table,
    grid_runner,
    run_once,
    scale,
    scaled_duration,
)

BUFFER_SIZES = (8, 16, 32, 64, 128, 256)


def test_fig4_upstream(benchmark):
    duration = scaled_duration(12.0, minimum=8.0)
    workloads = ("long-few", "short-few") if scale() < 4 else (
        "long-few", "long-many", "short-few", "short-many")

    def run():
        return fig4_delay_grid("up", workloads=workloads, warmup=8.0,
                               duration=duration, seed=2,
                               runner=grid_runner())

    results = run_once(benchmark, run)
    print()

    class _Buf:
        def __init__(self, packets):
            self.packets = packets

    print(render_fig4(results, "up", buffers=[_Buf(p) for p in BUFFER_SIZES],
                      workloads=workloads))
    rows = []
    for workload in workloads:
        for packets in BUFFER_SIZES:
            ours = results[(workload, packets)].up_mean_delay * 1000
            paper = FIG4_UP_ONLY_UPLINK[(workload, packets)]
            rows.append((workload, packets, "%.0f" % ours, "%.0f" % paper))
    comparison_table("Figure 4c uplink mean delay [ms] (ours vs paper)",
                     ("workload", "buffer", "ours", "paper"), rows)
    # The bufferbloat staircase: delay grows with buffer size and crosses
    # the G.114 "bad" boundary at the oversized configurations.
    for workload in workloads:
        delays = [results[(workload, p)].up_mean_delay for p in BUFFER_SIZES]
        assert delays[-1] > delays[0] * 4
        assert g114_class(delays[0]) == "acceptable"
        assert g114_class(delays[-1]) == "bad"


def test_fig4_downstream_only(benchmark):
    duration = scaled_duration(10.0, minimum=6.0)

    def run():
        return fig4_delay_grid("down", workloads=("long-many",),
                               warmup=6.0, duration=duration, seed=2,
                               runner=grid_runner())

    results = run_once(benchmark, run)
    # Figure 4a envelope: downlink mean delay < 200 ms at every size,
    # uplink (pure ACK traffic) near zero.
    for packets in BUFFER_SIZES:
        report = results[("long-many", packets)]
        assert report.down_mean_delay < 0.2
        assert report.up_mean_delay < 0.05
