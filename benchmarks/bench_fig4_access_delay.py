"""F4: regenerate Figure 4 (mean queueing delay heatmaps, access).

Grids come from the registered ``fig4-up`` / ``fig4-down`` sweeps; at
``REPRO_SCALE >= 4`` the upstream sweep switches to the full four-row
workload axis automatically.
"""

from repro.core.paper_data import FIG4_UP_ONLY_UPLINK
from repro.core.registry import get
from repro.core.study import render_fig4
from repro.qoe.scales import g114_class

from benchmarks.common import comparison_table, run_once, run_registered


def test_fig4_upstream(benchmark):
    spec = get("fig4-up")
    workloads = spec.workloads()
    buffers = spec.buffer_axis()

    def run():
        return run_registered("fig4-up")

    results = run_once(benchmark, run).to_mapping()
    print()
    print(render_fig4(results, "up", buffers=buffers, workloads=workloads))
    rows = []
    for workload in workloads:
        for packets in buffers:
            ours = results[(workload, packets)].up_mean_delay * 1000
            paper = FIG4_UP_ONLY_UPLINK[(workload, packets)]
            rows.append((workload, packets, "%.0f" % ours, "%.0f" % paper))
    comparison_table("Figure 4c uplink mean delay [ms] (ours vs paper)",
                     ("workload", "buffer", "ours", "paper"), rows)
    # The bufferbloat staircase: delay grows with buffer size and crosses
    # the G.114 "bad" boundary at the oversized configurations.
    for workload in workloads:
        delays = [results[(workload, p)].up_mean_delay for p in buffers]
        assert delays[-1] > delays[0] * 4
        assert g114_class(delays[0]) == "acceptable"
        assert g114_class(delays[-1]) == "bad"


def test_fig4_downstream_only(benchmark):
    spec = get("fig4-down")

    def run():
        return run_registered("fig4-down")

    results = run_once(benchmark, run).to_mapping()
    # Figure 4a envelope: downlink mean delay < 200 ms at every size,
    # uplink (pure ACK traffic) near zero.
    for packets in spec.buffer_axis():
        report = results[("long-many", packets)]
        assert report.down_mean_delay < 0.2
        assert report.up_mean_delay < 0.05
