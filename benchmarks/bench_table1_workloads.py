"""T1: regenerate Table 1's measured workload characteristics."""

from repro.core.paper_data import TABLE1_ACCESS, TABLE1_BACKBONE
from repro.core.experiment import run_qos_cell
from repro.core.scenarios import access_scenario, backbone_scenario

from benchmarks.common import comparison_table, run_once, scale, scaled_duration

#: Representative rows (full 12-row access sweep at REPRO_SCALE >= 4).
ACCESS_ROWS = [("short-few", "down"), ("short-many", "down"),
               ("long-few", "bidir"), ("long-many", "down"),
               ("short-few", "up")]
BACKBONE_ROWS = ["short-low", "short-medium", "short-high"]


def test_table1_access(benchmark):
    duration = scaled_duration(20.0, minimum=10.0)
    rows = ACCESS_ROWS
    if scale() >= 4:
        rows = [(w, d) for w in ("short-few", "short-many", "long-few",
                                 "long-many")
                for d in ("up", "bidir", "down")]

    def run():
        return {
            (w, d): run_qos_cell(access_scenario(w, d), (64, 8),
                                 warmup=6.0, duration=duration, seed=1)
            for w, d in rows
        }

    reports = run_once(benchmark, run)
    table = []
    for (w, d), report in reports.items():
        paper = TABLE1_ACCESS[(w, d)]
        table.append((w, d,
                      "%.1f / %.1f" % (report.up_utilization * 100, paper[0]),
                      "%.1f / %.1f" % (report.down_utilization * 100, paper[1]),
                      "%.1f / %.1f" % (report.up_loss * 100, paper[2]),
                      "%.1f / %.1f" % (report.down_loss * 100, paper[3])))
    comparison_table(
        "Table 1 access (ours/paper): utilization and loss [%]",
        ("workload", "dir", "up util", "down util", "up loss", "down loss"),
        table)
    # Upstream-congestion rows saturate the 1 Mbit/s uplink.
    assert reports[("short-few", "up")].up_utilization > 0.9


def test_table1_backbone(benchmark):
    duration = scaled_duration(15.0, minimum=8.0)
    rows = list(BACKBONE_ROWS)
    if scale() >= 2:
        rows += ["short-overload", "long"]

    def run():
        return {
            w: run_qos_cell(backbone_scenario(w), 749, warmup=5.0,
                            duration=duration, seed=1)
            for w in rows
        }

    reports = run_once(benchmark, run)
    table = []
    for w, report in reports.items():
        paper = TABLE1_BACKBONE[w]
        table.append((w,
                      "%.1f / %.1f" % (report.down_utilization * 100, paper[0]),
                      "%.2f / %.2f" % (report.down_loss * 100, paper[2]),
                      "%.0f / %d" % (report.concurrent_flows, paper[3])))
    comparison_table(
        "Table 1 backbone (ours/paper)",
        ("workload", "down util %", "loss %", "flows"), table)
    # Load ordering must match the paper: low < medium < high.
    assert (reports["short-low"].down_utilization
            < reports["short-medium"].down_utilization
            < reports["short-high"].down_utilization)
    assert reports["short-high"].down_utilization > 0.9
