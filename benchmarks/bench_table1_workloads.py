"""T1: regenerate Table 1's measured workload characteristics."""

from repro.core.paper_data import TABLE1_ACCESS, TABLE1_BACKBONE
from repro.core.study import table1_rows

from benchmarks.common import (
    comparison_table,
    grid_runner,
    run_once,
    scale,
    scaled_duration,
)

#: Representative rows (full 12-row access sweep at REPRO_SCALE >= 4).
ACCESS_ROWS = [("short-few", "down"), ("short-many", "down"),
               ("long-few", "bidir"), ("long-many", "down"),
               ("short-few", "up")]
BACKBONE_ROWS = ["short-low", "short-medium", "short-high"]


def test_table1_access(benchmark):
    duration = scaled_duration(20.0, minimum=10.0)
    rows = ACCESS_ROWS
    if scale() >= 4:
        rows = None  # table1_rows' default: the full 12-row sweep

    def run():
        return {(row["workload"], row["direction"]): row
                for row in table1_rows("access", warmup=6.0,
                                       duration=duration, seed=1,
                                       workloads=rows,
                                       runner=grid_runner())}

    reports = run_once(benchmark, run)
    table = []
    for (w, d), row in reports.items():
        paper = TABLE1_ACCESS[(w, d)]
        table.append((w, d,
                      "%.1f / %.1f" % (row["up_util"] * 100, paper[0]),
                      "%.1f / %.1f" % (row["down_util"] * 100, paper[1]),
                      "%.1f / %.1f" % (row["up_loss"] * 100, paper[2]),
                      "%.1f / %.1f" % (row["down_loss"] * 100, paper[3])))
    comparison_table(
        "Table 1 access (ours/paper): utilization and loss [%]",
        ("workload", "dir", "up util", "down util", "up loss", "down loss"),
        table)
    # Upstream-congestion rows saturate the 1 Mbit/s uplink.
    assert reports[("short-few", "up")]["up_util"] > 0.9


def test_table1_backbone(benchmark):
    duration = scaled_duration(15.0, minimum=8.0)
    rows = list(BACKBONE_ROWS)
    if scale() >= 2:
        rows += ["short-overload", "long"]

    def run():
        return {row["workload"]: row
                for row in table1_rows("backbone", warmup=5.0,
                                       duration=duration, seed=1,
                                       workloads=rows,
                                       runner=grid_runner())}

    reports = run_once(benchmark, run)
    table = []
    for w, row in reports.items():
        paper = TABLE1_BACKBONE[w]
        table.append((w,
                      "%.1f / %.1f" % (row["down_util"] * 100, paper[0]),
                      "%.2f / %.2f" % (row["down_loss"] * 100, paper[2]),
                      "%.0f / %d" % (row["concurrent"], paper[3])))
    comparison_table(
        "Table 1 backbone (ours/paper)",
        ("workload", "down util %", "loss %", "flows"), table)
    # Load ordering must match the paper: low < medium < high.
    assert (reports["short-low"]["down_util"]
            < reports["short-medium"]["down_util"]
            < reports["short-high"]["down_util"])
    assert reports["short-high"]["down_util"] > 0.9
