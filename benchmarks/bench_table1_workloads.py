"""T1: regenerate Table 1's measured workload characteristics.

Rows come from the registered ``table1-access`` / ``table1-backbone``
sweeps (representative rows at scale 1, the full sweeps at higher
``REPRO_SCALE``).
"""

from repro.core.paper_data import TABLE1_ACCESS, TABLE1_BACKBONE
from repro.core.registry import get
from repro.core.study import table1_rows_for

from benchmarks.common import comparison_table, run_once, run_registered


def test_table1_access(benchmark):
    spec = get("table1-access")

    def run():
        results = run_registered("table1-access")
        rows = table1_rows_for(spec.scenario_axis(),
                               [record.report for record in results])
        return {(row["workload"], row["direction"]): row for row in rows}

    reports = run_once(benchmark, run)
    table = []
    for (w, d), row in reports.items():
        paper = TABLE1_ACCESS[(w, d)]
        table.append((w, d,
                      "%.1f / %.1f" % (row["up_util"] * 100, paper[0]),
                      "%.1f / %.1f" % (row["down_util"] * 100, paper[1]),
                      "%.1f / %.1f" % (row["up_loss"] * 100, paper[2]),
                      "%.1f / %.1f" % (row["down_loss"] * 100, paper[3])))
    comparison_table(
        "Table 1 access (ours/paper): utilization and loss [%]",
        ("workload", "dir", "up util", "down util", "up loss", "down loss"),
        table)
    # Upstream-congestion rows saturate the 1 Mbit/s uplink.
    assert reports[("short-few", "up")]["up_util"] > 0.9


def test_table1_backbone(benchmark):
    spec = get("table1-backbone")

    def run():
        results = run_registered("table1-backbone")
        rows = table1_rows_for(spec.scenario_axis(),
                               [record.report for record in results])
        return {row["workload"]: row for row in rows}

    reports = run_once(benchmark, run)
    table = []
    for w, row in reports.items():
        paper = TABLE1_BACKBONE[w]
        table.append((w,
                      "%.1f / %.1f" % (row["down_util"] * 100, paper[0]),
                      "%.2f / %.2f" % (row["down_loss"] * 100, paper[2]),
                      "%.0f / %d" % (row["concurrent"], paper[3])))
    comparison_table(
        "Table 1 backbone (ours/paper)",
        ("workload", "down util %", "loss %", "flows"), table)
    # Load ordering must match the paper: low < medium < high.
    assert (reports["short-low"]["down_util"]
            < reports["short-medium"]["down_util"]
            < reports["short-high"]["down_util"])
    assert reports["short-high"]["down_util"] > 0.9
