"""F5: regenerate Figure 5 (utilization boxplots, bidirectional long).

The grid is the registered ``fig5`` sweep — the same cells (and cache
entries) that ``python -m repro run fig5`` executes.
"""

from repro.core.study import render_fig5

from benchmarks.common import fidelity_line, run_once, run_registered


def test_fig5(benchmark):
    def run():
        return run_registered("fig5")

    results = run_once(benchmark, run)
    # Typed records delegate QosReport attribute access, so the renderer
    # and the assertions below work on them directly.
    by_packets = {record.buffer_packets: record for record in results}
    print()
    print(render_fig5(by_packets))
    fidelity_line("fig5", results)
    # Paper shape: the uplink is pinned near 100% at every size; the
    # downlink suffers when the uplink buffer bloats the ACK path, and
    # small buffers underutilize relative to the best configuration.
    up_medians = {p: r.up_utilization_boxplot()[2]
                  for p, r in by_packets.items()}
    down_medians = {p: r.down_utilization_boxplot()[2]
                    for p, r in by_packets.items()}
    assert min(up_medians.values()) > 0.8
    assert max(down_medians.values()) > 0.55
    assert min(down_medians.values()) < max(down_medians.values())
