"""F5: regenerate Figure 5 (utilization boxplots, bidirectional long)."""

from repro.core.study import fig5_utilization, render_fig5

from benchmarks.common import grid_runner, run_once, scaled_duration


def test_fig5(benchmark):
    duration = scaled_duration(15.0, minimum=10.0)

    def run():
        return fig5_utilization(warmup=8.0, duration=duration, seed=1,
                                runner=grid_runner())

    results = run_once(benchmark, run)
    print()
    print(render_fig5(results))
    # Paper shape: the uplink is pinned near 100% at every size; the
    # downlink suffers when the uplink buffer bloats the ACK path, and
    # small buffers underutilize relative to the best configuration.
    up_medians = {p: r.up_utilization_boxplot()[2] for p, r in results.items()}
    down_medians = {p: r.down_utilization_boxplot()[2]
                    for p, r in results.items()}
    assert min(up_medians.values()) > 0.8
    assert max(down_medians.values()) > 0.55
    assert min(down_medians.values()) < max(down_medians.values())
