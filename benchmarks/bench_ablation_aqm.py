"""A1 (extension): AQM ablation — drop-tail vs RED vs CoDel.

The paper motivates CoDel as the bufferbloat community's answer (§1,
§3).  The registered ``aqm-voip`` sweep replays the worst VoIP cell —
upload congestion with a bloated 256-packet uplink buffer — under the
three queue disciplines.  AQM should recover most of the MOS that
drop-tail loses to standing queues.
"""

from benchmarks.common import comparison_table, run_once, run_registered


def test_aqm_rescues_bloated_uplink(benchmark):
    def run():
        return run_registered("aqm-voip")

    results = run_once(benchmark, run).to_mapping()
    rows = [("%s @ %d pkts" % (discipline, packets),
             "%.1f" % cell["talks"], "%.1f" % cell["listens"],
             "%.0f ms" % (cell["delay"]["talks"] * 1000))
            for (workload, packets, discipline), cell in results.items()]
    comparison_table(
        "A1: VoIP under upload congestion per queue discipline",
        ("queue @ buffer", "talks MOS", "listens MOS", "mouth-to-ear"), rows)
    # CoDel must bound the standing queue that drop-tail lets grow.
    droptail = results[("long-few", 256, "droptail")]
    codel = results[("long-few", 256, "codel")]
    assert codel["delay"]["talks"] < droptail["delay"]["talks"]
    assert codel["talks"] >= droptail["talks"]
