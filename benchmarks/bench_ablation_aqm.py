"""A1 (extension): AQM ablation — drop-tail vs RED vs CoDel.

The paper motivates CoDel as the bufferbloat community's answer (§1,
§3).  This ablation replays the worst VoIP cell — upload congestion with
a bloated 256-packet uplink buffer — under the three disciplines.  AQM
should recover most of the MOS that drop-tail loses to standing queues.
"""

import numpy as np

from repro.core.scenarios import access_scenario
from repro.core.voip_study import median_mos, run_voip_cell
from repro.sim.queues import CoDelQueue, DropTailQueue, REDQueue

from benchmarks.common import comparison_table, run_once, scaled_duration


def _factories():
    return {
        "drop-tail": lambda packets: DropTailQueue(capacity_packets=packets),
        "red": lambda packets: REDQueue(capacity_packets=packets,
                                        rng=np.random.default_rng(9)),
        "codel": lambda packets: CoDelQueue(capacity_packets=packets),
    }


def test_aqm_rescues_bloated_uplink(benchmark):
    duration = scaled_duration(8.0, minimum=5.0)
    scenario = access_scenario("long-few", "up")

    def run():
        out = {}
        for name, factory in _factories().items():
            scores = run_voip_cell(scenario, 256, calls=1, warmup=12.0,
                                   duration=duration, seed=3,
                                   queue_factory=factory)
            out[name] = {
                "talks": median_mos(scores["talks"]),
                "listens": median_mos(scores["listens"]),
                "delay": scores["talks"][0].mouth_to_ear_delay,
            }
        return out

    results = run_once(benchmark, run)
    rows = [(name, "%.1f" % cell["talks"], "%.1f" % cell["listens"],
             "%.0f ms" % (cell["delay"] * 1000))
            for name, cell in results.items()]
    comparison_table(
        "A1: VoIP under upload congestion, 256-pkt uplink buffer",
        ("queue", "talks MOS", "listens MOS", "mouth-to-ear"), rows)
    # CoDel must bound the standing queue that drop-tail lets grow.
    assert results["codel"]["delay"] < results["drop-tail"]["delay"]
    assert results["codel"]["talks"] >= results["drop-tail"]["talks"]
