"""Benchmark harness package (one module per table/figure)."""
