"""T2: regenerate Table 2 (buffer sizes and maximum queueing delays)."""

from repro.core.buffers import access_buffer_delays, backbone_buffer_delays
from repro.core.paper_data import TABLE2_ACCESS, TABLE2_BACKBONE

from benchmarks.common import comparison_table, run_once


def test_table2(benchmark):
    access, backbone = run_once(
        benchmark, lambda: (access_buffer_delays(), backbone_buffer_delays()))
    rows = []
    for packets, up, down in access:
        paper_up, paper_down = TABLE2_ACCESS[packets]
        rows.append(("access", packets,
                     "%.0f / %.0f" % (up * 1000, paper_up),
                     "%.0f / %.0f" % (down * 1000, paper_down)))
    for packets, delay in backbone:
        rows.append(("backbone", packets,
                     "%.1f / %.1f" % (delay * 1000, TABLE2_BACKBONE[packets]),
                     ""))
    comparison_table(
        "Table 2: max queueing delay, measured/paper [ms]",
        ("testbed", "packets", "uplink (ours/paper)", "downlink (ours/paper)"),
        rows)
    # The analytic delays must track the paper within framing tolerance.
    for packets, up, down in access:
        paper_up, paper_down = TABLE2_ACCESS[packets]
        assert abs(up * 1000 - paper_up) / paper_up < 0.15
        assert abs(down * 1000 - paper_down) / paper_down < 0.25
