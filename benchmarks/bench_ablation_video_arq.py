"""A3 (extension): IPTV retransmission recovery for video.

§8.1 notes that real IPTV set-top boxes request lost packets once via a
proprietary ARQ scheme and that the paper's numbers are therefore a
baseline "without error recovery".  This ablation enables the one-shot
ARQ mode of :class:`repro.apps.video.VideoStream` and quantifies the
SSIM recovery.
"""

from repro.core.scenarios import access_scenario
from repro.core.video_study import run_video_cell

from benchmarks.common import comparison_table, run_once, scaled_duration


def test_video_arq_recovers_quality(benchmark):
    duration = scaled_duration(6.0, minimum=4.0)
    scenario = access_scenario("long-few", "down")

    def run():
        base = run_video_cell(scenario, 64, resolution="SD",
                              duration=duration, warmup=6.0, seed=4,
                              arq=False)
        arq = run_video_cell(scenario, 64, resolution="SD",
                             duration=duration, warmup=6.0, seed=4,
                             arq=True)
        return base, arq

    base, arq = run_once(benchmark, run)
    comparison_table(
        "A3: video SSIM with and without one-shot ARQ (long-few, 64 pkts)",
        ("mode", "SSIM", "MOS", "packet loss"),
        [("baseline", "%.3f" % base["ssim"], "%.1f" % base["mos"],
          "%.3f" % base["packet_loss"]),
         ("arq", "%.3f" % arq["ssim"], "%.1f" % arq["mos"],
          "%.3f" % arq["packet_loss"])])
    # Recovery must help (the paper predicts "higher quality" with ARQ).
    assert arq["ssim"] >= base["ssim"]
