"""A2 (extension): load-dependent buffer sizing for WebQoE.

§9.4 finds that large buffers win at moderate load and small buffers win
at high load, and §10 suggests "load-dependent buffer sizing schemes".
This ablation runs the web workload against fixed small, fixed large and
the :class:`repro.core.adaptive.LoadAdaptiveBuffer` controller.
"""

import numpy as np

from repro.apps.web import PageFetch, WebServer
from repro.core.adaptive import LoadAdaptiveBuffer
from repro.core.experiment import build_network
from repro.core.scenarios import access_scenario
from repro.core.workloads import apply_workload
from repro.qoe.web import g1030_mos

from benchmarks.common import comparison_table, run_once, scaled_count

SMALL, LARGE = 16, 256


def _measure(scenario, packets, fetches, adaptive=False, seed=5):
    sim, network = build_network(scenario, packets)
    controller = None
    if adaptive:
        controller = LoadAdaptiveBuffer(
            sim, network.down_bottleneck, SMALL, LARGE).start()
    workload = apply_workload(sim, network, scenario, seed=seed)
    server = WebServer(sim, network.media_server, cc=scenario.cc)
    sim.run(until=8.0)
    plts = []
    for __ in range(fetches):
        fetch = PageFetch(sim, network.media_client,
                          network.media_server.addr, cc=scenario.cc).start()
        deadline = sim.now + 30.0
        while sim.now < deadline and fetch.plt is None and not fetch.failed:
            sim.run(until=min(deadline, sim.now + 0.25))
        plts.append(fetch.plt if fetch.plt is not None else 30.0)
        if fetch.plt is None:
            fetch.abort()
        sim.run(until=sim.now + 0.25)
    workload.stop()
    server.close()
    if controller is not None:
        controller.stop()
    return float(np.median(plts))


def test_load_dependent_sizing(benchmark):
    fetches = scaled_count(6, minimum=3)
    moderate = access_scenario("short-few", "down")
    heavy = access_scenario("long-many", "down")

    def run():
        out = {}
        for label, scenario in (("moderate", moderate), ("heavy", heavy)):
            out[(label, "small")] = _measure(scenario, SMALL, fetches)
            out[(label, "large")] = _measure(scenario, LARGE, fetches)
            out[(label, "adaptive")] = _measure(scenario, LARGE, fetches,
                                                adaptive=True)
        return out

    results = run_once(benchmark, run)
    rows = []
    for load in ("moderate", "heavy"):
        for config in ("small", "large", "adaptive"):
            plt = results[(load, config)]
            rows.append((load, config, "%.2f s" % plt,
                         "%.1f" % g1030_mos(plt)))
    comparison_table("A2: fixed vs load-adaptive downlink buffer (web PLT)",
                     ("load", "buffer", "median PLT", "MOS"), rows)
    # The adaptive scheme should track the better fixed choice per regime
    # within tolerance (it pays a detection lag).
    for load in ("moderate", "heavy"):
        best_fixed = min(results[(load, "small")], results[(load, "large")])
        assert results[(load, "adaptive")] <= best_fixed * 2.0 + 0.5
