"""F9: regenerate Figure 9 (RTP video SSIM heatmaps).

Grids come from the registered ``fig9a`` (access) and ``fig9b``
(backbone) sweeps; result keys are (workload, buffer, resolution).
"""

from repro.core.paper_data import FIG9A_HD, FIG9A_SD
from repro.core.registry import get
from repro.core.video_study import render_fig9

from benchmarks.common import comparison_table, run_once, run_registered


def test_fig9a_access(benchmark):
    spec = get("fig9a")
    workloads = spec.workloads()
    buffers = spec.buffer_axis()

    def run():
        return run_registered(spec.name)

    results = run_once(benchmark, run).to_mapping()
    print()
    print(render_fig9(results, "access", buffers, workloads=workloads))
    rows = []
    for workload in workloads:
        for packets in buffers:
            sd = results[(workload, packets, "SD")]
            hd = results[(workload, packets, "HD")]
            rows.append((workload, packets,
                         "%.2f / %.2f" % (sd["ssim"],
                                          FIG9A_SD[(workload, packets)]),
                         "%.2f / %.2f" % (hd["ssim"],
                                          FIG9A_HD[(workload, packets)])))
    comparison_table("Figure 9a (ours/paper): access SSIM",
                     ("workload", "buffer", "SD", "HD"), rows)
    # Binary behaviour: clean without congestion at every buffer size,
    # bad whenever long flows congest the downlink — and largely
    # independent of the buffer size.
    for packets in buffers:
        assert results[("noBG", packets, "SD")]["ssim"] > 0.99
        assert results[("long-many", packets, "SD")]["ssim"] < 0.75
    # HD weathers loss slightly better than SD (paper's observation).
    assert (results[("long-few", 64, "HD")]["ssim"]
            >= results[("long-few", 64, "SD")]["ssim"] - 0.05)


def test_fig9b_backbone(benchmark):
    spec = get("fig9b")
    workloads = spec.workloads()
    buffers = spec.buffer_axis()

    def run():
        return run_registered(spec.name)

    results = run_once(benchmark, run).to_mapping()
    print()
    print(render_fig9(results, "backbone", buffers, workloads=workloads))
    # noBG and light load stream cleanly; the sustained long workload
    # degrades the stream regardless of buffer size.
    for packets in buffers:
        assert results[("noBG", packets, "SD")]["ssim"] > 0.99
    assert (results[("long", 749, "SD")]["ssim"]
            < results[("noBG", 749, "SD")]["ssim"])
