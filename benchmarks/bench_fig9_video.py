"""F9: regenerate Figure 9 (RTP video SSIM heatmaps)."""

from repro.core.paper_data import FIG9A_HD, FIG9A_SD
from repro.core.video_study import fig9_grid, render_fig9

from benchmarks.common import (
    comparison_table,
    grid_runner,
    run_once,
    scale,
    scaled_duration,
)

ACCESS_BUFFERS = (8, 64, 256)
ACCESS_WORKLOADS = ("noBG", "long-few", "long-many")
BACKBONE_BUFFERS = (749, 7490)
BACKBONE_WORKLOADS = ("noBG", "short-medium", "long")


def test_fig9a_access(benchmark):
    duration = scaled_duration(6.0, minimum=4.0)
    workloads = ACCESS_WORKLOADS if scale() < 4 else (
        "noBG", "long-few", "long-many", "short-few", "short-many")

    def run():
        return fig9_grid("access", ACCESS_BUFFERS, workloads=workloads,
                         duration=duration, warmup=6.0, seed=4,
                         runner=grid_runner())

    results = run_once(benchmark, run)
    print()
    print(render_fig9(results, "access", ACCESS_BUFFERS, workloads=workloads))
    rows = []
    for workload in workloads:
        for packets in ACCESS_BUFFERS:
            sd = results[(workload, packets, "SD")]
            hd = results[(workload, packets, "HD")]
            rows.append((workload, packets,
                         "%.2f / %.2f" % (sd["ssim"],
                                          FIG9A_SD[(workload, packets)]),
                         "%.2f / %.2f" % (hd["ssim"],
                                          FIG9A_HD[(workload, packets)])))
    comparison_table("Figure 9a (ours/paper): access SSIM",
                     ("workload", "buffer", "SD", "HD"), rows)
    # Binary behaviour: clean without congestion at every buffer size,
    # bad whenever long flows congest the downlink — and largely
    # independent of the buffer size.
    for packets in ACCESS_BUFFERS:
        assert results[("noBG", packets, "SD")]["ssim"] > 0.99
        assert results[("long-many", packets, "SD")]["ssim"] < 0.75
    # HD weathers loss slightly better than SD (paper's observation).
    assert (results[("long-few", 64, "HD")]["ssim"]
            >= results[("long-few", 64, "SD")]["ssim"] - 0.05)


def test_fig9b_backbone(benchmark):
    duration = scaled_duration(6.0, minimum=4.0)

    def run():
        return fig9_grid("backbone", BACKBONE_BUFFERS,
                         workloads=BACKBONE_WORKLOADS, duration=duration,
                         warmup=12.0, seed=4, runner=grid_runner())

    results = run_once(benchmark, run)
    print()
    print(render_fig9(results, "backbone", BACKBONE_BUFFERS,
                      workloads=BACKBONE_WORKLOADS))
    # noBG and light load stream cleanly; the sustained long workload
    # degrades the stream regardless of buffer size.
    for packets in BACKBONE_BUFFERS:
        assert results[("noBG", packets, "SD")]["ssim"] > 0.99
    assert (results[("long", 749, "SD")]["ssim"]
            < results[("noBG", 749, "SD")]["ssim"])
