"""F11: regenerate Figure 11 (WebQoE heatmap, backbone testbed).

The grid is the registered ``fig11`` sweep (full workload axis at
``REPRO_SCALE >= 2``).
"""

from repro.core.paper_data import FIG11
from repro.core.registry import get
from repro.core.web_study import render_fig10

from benchmarks.common import comparison_table, run_once, run_registered


def test_fig11(benchmark):
    spec = get("fig11")
    workloads = spec.workloads()
    buffers = spec.buffer_axis()

    def run():
        return run_registered(spec.name)

    results = run_once(benchmark, run).to_mapping()
    print()
    print(render_fig10(results, "backbone", buffers, workloads=workloads,
                       title="Figure 11"))
    rows = []
    for workload in workloads:
        for packets in buffers:
            cell = results[(workload, packets)]
            rows.append((workload, packets,
                         "%.1f / %.1f" % (cell["median_plt"],
                                          FIG11[(workload, packets)]),
                         "%.1f" % cell["mos"]))
    comparison_table("Figure 11 (ours/paper): backbone PLT",
                     ("workload", "buffer", "PLT s ours/paper", "MOS"), rows)
    # Baseline and light load are fine at every size; the sustained long
    # workload degrades PLT, worst with the 10x BDP buffer (RTT-dominated).
    assert results[("noBG", 749)]["median_plt"] < 1.2
    assert results[("short-medium", 749)]["median_plt"] < 1.5
    assert (results[("long", 7490)]["median_plt"]
            > results[("noBG", 7490)]["median_plt"])
