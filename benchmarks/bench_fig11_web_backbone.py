"""F11: regenerate Figure 11 (WebQoE heatmap, backbone testbed)."""

from repro.core.paper_data import FIG11
from repro.core.web_study import fig11_grid, render_fig10

from benchmarks.common import (
    comparison_table,
    grid_runner,
    run_once,
    scale,
    scaled_count,
)

BUFFERS = (8, 749, 7490)
WORKLOADS = ("noBG", "short-medium", "long")


def test_fig11(benchmark):
    fetches = scaled_count(5, minimum=3)
    workloads = WORKLOADS if scale() < 2 else (
        "noBG", "short-low", "short-medium", "short-high",
        "short-overload", "long")

    def run():
        return fig11_grid(BUFFERS, workloads=workloads, fetches=fetches,
                          warmup=15.0, seed=5, runner=grid_runner())

    results = run_once(benchmark, run)
    print()
    print(render_fig10(results, "backbone", BUFFERS, workloads=workloads,
                       title="Figure 11"))
    rows = []
    for workload in workloads:
        for packets in BUFFERS:
            cell = results[(workload, packets)]
            rows.append((workload, packets,
                         "%.1f / %.1f" % (cell["median_plt"],
                                          FIG11[(workload, packets)]),
                         "%.1f" % cell["mos"]))
    comparison_table("Figure 11 (ours/paper): backbone PLT",
                     ("workload", "buffer", "PLT s ours/paper", "MOS"), rows)
    # Baseline and light load are fine at every size; the sustained long
    # workload degrades PLT, worst with the 10x BDP buffer (RTT-dominated).
    assert results[("noBG", 749)]["median_plt"] < 1.2
    assert results[("short-medium", 749)]["median_plt"] < 1.5
    assert (results[("long", 7490)]["median_plt"]
            > results[("noBG", 7490)]["median_plt"])
