"""F8: regenerate Figure 8 (VoIP MOS heatmap, backbone testbed)."""

from repro.core.paper_data import FIG8
from repro.core.voip_study import fig8_grid, render_fig8

from benchmarks.common import (
    comparison_table,
    grid_runner,
    run_once,
    scale,
    scaled_duration,
)

BUFFERS = (8, 749, 7490)
WORKLOADS = ("noBG", "short-medium", "long")


def test_fig8(benchmark):
    duration = scaled_duration(8.0, minimum=5.0)
    buffers = BUFFERS if scale() < 2 else (8, 28, 749, 7490)
    workloads = WORKLOADS if scale() < 2 else (
        "noBG", "short-low", "short-medium", "short-high",
        "short-overload", "long")

    def run():
        return fig8_grid(buffers, workloads=workloads, calls=1,
                         warmup=12.0, duration=duration, seed=3,
                         runner=grid_runner())

    results = run_once(benchmark, run)
    print()
    print(render_fig8(results, buffers, workloads=workloads))
    rows = []
    for workload in workloads:
        for packets in buffers:
            rows.append((workload, packets,
                         "%.1f / %.1f" % (results[(workload, packets)]["listens"],
                                          FIG8[(workload, packets)])))
    comparison_table("Figure 8 (ours/paper): backbone VoIP MOS",
                     ("workload", "buffer", "MOS ours/paper"), rows)
    # The paper's finding: workload, not buffer size, dominates — the
    # noBG and moderate rows are fine at every size; the sustained 'long'
    # workload at 10x BDP is clearly degraded.
    for packets in buffers:
        assert results[("noBG", packets)]["listens"] > 4.0
    assert results[("long", 7490)]["listens"] < 3.0
    assert (results[("long", 7490)]["listens"]
            < results[("long", 749)]["listens"])
