"""F8: regenerate Figure 8 (VoIP MOS heatmap, backbone testbed).

The grid is the registered ``fig8`` sweep (full workload/buffer axes at
``REPRO_SCALE >= 2``).
"""

from repro.core.paper_data import FIG8
from repro.core.registry import get
from repro.core.voip_study import render_fig8

from benchmarks.common import comparison_table, run_once, run_registered


def test_fig8(benchmark):
    spec = get("fig8")
    workloads = spec.workloads()
    buffers = spec.buffer_axis()

    def run():
        return run_registered(spec.name)

    results = run_once(benchmark, run).to_mapping()
    print()
    print(render_fig8(results, buffers, workloads=workloads))
    rows = []
    for workload in workloads:
        for packets in buffers:
            rows.append((workload, packets,
                         "%.1f / %.1f" % (results[(workload, packets)]["listens"],
                                          FIG8[(workload, packets)])))
    comparison_table("Figure 8 (ours/paper): backbone VoIP MOS",
                     ("workload", "buffer", "MOS ours/paper"), rows)
    # The paper's finding: workload, not buffer size, dominates — the
    # noBG and moderate rows are fine at every size; the sustained 'long'
    # workload at 10x BDP is clearly degraded.
    for packets in buffers:
        assert results[("noBG", packets)]["listens"] > 4.0
    assert results[("long", 7490)]["listens"] < 3.0
    assert (results[("long", 7490)]["listens"]
            < results[("long", 749)]["listens"])
