"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a
reduced scale and prints measured values next to the paper's reported
ones.  The grids themselves are declared once in the sweep registry
(:mod:`repro.core.registry`): each figure benchmark looks up its
registered :class:`repro.core.registry.SweepSpec` and runs it, so the
benchmark, ``python -m repro run <name>`` and any other consumer execute
the *same cells* (bit-identical task hashes, shared result cache).

``REPRO_SCALE`` (float, default 1.0) multiplies simulated durations /
repetition counts and switches the specs' reduced axes to the full paper
grids; raise it for higher-fidelity runs::

    REPRO_SCALE=4 pytest benchmarks/ --benchmark-only -s

Grids run through :class:`repro.runner.grid.GridRunner`: cells fan out
over ``REPRO_WORKERS`` processes and finished cells are cached under
``.repro_cache/``, so a repeat invocation (same scale/seed/code) skips
the simulations entirely.  Set ``REPRO_CACHE=0`` to force recomputation
and ``REPRO_PROGRESS=1`` for per-cell progress/ETA lines.
"""

from repro import api
from repro.core.registry import resolve_scale
from repro.runner import GridRunner


def scale():
    """Global fidelity knob (``REPRO_SCALE``, float, default 1.0)."""
    return resolve_scale()


def grid_runner(**kwargs):
    """The benchmarks' shared grid configuration (env-driven defaults)."""
    return GridRunner(**kwargs)


def run_registered(name, runner=None):
    """Run a registered sweep through the stable facade.

    Returns the typed :class:`repro.results.set.ResultSet`; call
    ``.to_mapping()`` where a renderer wants the legacy ``{cell key:
    value}`` dict.  Same tasks, same cache entries as ``python -m repro
    run <name>``.
    """
    return api.run_sweep(name, runner=runner or grid_runner())


def scaled_duration(base, minimum=4.0):
    """Simulated seconds for a measurement window at the current scale."""
    return max(minimum, base * scale())


def scaled_count(base, minimum=1):
    """Repetition count at the current scale."""
    return max(minimum, int(round(base * scale())))


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations — repeating them
    measures nothing new and multiplies runtime.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def fidelity_line(figure, results):
    """Print (and return) the report layer's verdict for one sweep.

    ``results`` is the sweep's ResultSet; figures without digitized
    paper data report SKIP.  This is the same scoring ``python -m repro
    report`` runs — a benchmark session and the report agree by
    construction.
    """
    from repro.report import fidelity

    check = fidelity.check_for(figure)
    scored = (fidelity.evaluate(check, results) if check is not None
              else fidelity.skip(figure))
    gates = ", ".join("%s %.3g" % (name, gate["value"])
                      for name, gate in scored.gates.items())
    text = "fidelity %s: %s%s" % (figure, scored.verdict,
                                  " (%s)" % gates if gates else "")
    print(text)
    return text


def comparison_table(title, headers, rows):
    """Print an aligned paper-vs-measured table (shown with ``-s``)."""
    widths = [len(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["", "=== %s ===" % title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in str_rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    text = "\n".join(lines)
    print(text)
    return text
