"""MOS scales (Figure 6) and ITU-T G.114 delay classification.

The paper colours its figures with two MOS scales:

* Figure 6a — the G.711/E-model user-satisfaction scale used for VoIP
  (P.862.2 mapping): 4.3+ "very satisfied" down to <2.6 "not
  recommended".
* Figure 6b — the classic ACR scale used for video and web: 5 excellent,
  4 good, 3 fair, 2 poor, 1 bad.

Figure 4's queueing-delay heatmap uses ITU-T Recommendation G.114, which
classifies one-way delay for interactive applications: below 150 ms
acceptable, up to 400 ms problematic, above that causing problems.
"""

#: G.114 one-way delay thresholds (milliseconds).
G114_ACCEPTABLE_MS = 150.0
G114_PROBLEMATIC_MS = 400.0


def g114_class(delay_seconds):
    """Classify a one-way delay per ITU-T G.114.

    Returns ``"acceptable"`` (green in the paper), ``"problematic"``
    (orange) or ``"bad"`` (red).
    """
    delay_ms = delay_seconds * 1000.0
    if delay_ms <= G114_ACCEPTABLE_MS:
        return "acceptable"
    if delay_ms <= G114_PROBLEMATIC_MS:
        return "problematic"
    return "bad"


#: Figure 6a: VoIP (G.711 / P.862.2) user-satisfaction bands,
#: as (lower MOS bound, label) in descending order.
VOIP_MOS_BANDS = (
    (4.3, "very satisfied"),
    (4.0, "satisfied"),
    (3.6, "some users satisfied"),
    (3.1, "many users dissatisfied"),
    (2.6, "nearly all users dissatisfied"),
    (1.0, "not recommended"),
)

#: Figure 6b: ACR quality bands for video and web.
ACR_MOS_BANDS = (
    (4.5, "excellent"),
    (3.5, "good"),
    (2.5, "fair"),
    (1.5, "poor"),
    (1.0, "bad"),
)


def _classify(mos, bands):
    for lower_bound, label in bands:
        if mos >= lower_bound:
            return label
    return bands[-1][1]


def voip_mos_class(mos):
    """User-satisfaction label for a VoIP MOS (Figure 6a)."""
    return _classify(mos, VOIP_MOS_BANDS)


def mos_class(mos):
    """ACR label for a video/web MOS (Figure 6b)."""
    return _classify(mos, ACR_MOS_BANDS)


#: Short markers used by the ASCII heatmaps, mirroring the paper's
#: green/orange/red colouring: '+' fine, 'o' degraded, '!' bad.
def heat_marker_from_mos(mos):
    """One-character quality marker for heatmap cells."""
    if mos >= 3.5:
        return "+"
    if mos >= 2.5:
        return "o"
    return "!"


def heat_marker_from_delay(delay_seconds):
    """One-character G.114 marker for delay heatmap cells."""
    cls = g114_class(delay_seconds)
    if cls == "acceptable":
        return "+"
    if cls == "problematic":
        return "o"
    return "!"
