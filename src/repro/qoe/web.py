"""WebQoE: ITU-T G.1030 one-page model (§9.1).

G.1030 maps page-load times logarithmically onto the ACR MOS scale for
web information-retrieval tasks.  The paper anchors the mapping with a
maximum PLT of six seconds ("bad") and a minimum — "excellent" — PLT of
0.56 s on the access testbed and 0.85 s on the backbone (their
respective baseline loading times, dominated by 14 RTTs).
"""

import math

#: The paper's G.1030 anchors.
MAX_PLT = 6.0
ACCESS_MIN_PLT = 0.56
BACKBONE_MIN_PLT = 0.85


def g1030_mos(plt, min_plt=ACCESS_MIN_PLT, max_plt=MAX_PLT):
    """Map a page-load time (seconds) to MOS in [1, 5].

    Logarithmic interpolation between ``min_plt`` (MOS 5) and
    ``max_plt`` (MOS 1), clipped outside.
    """
    if plt is None:
        return 1.0
    if plt <= min_plt:
        return 5.0
    if plt >= max_plt:
        return 1.0
    span = math.log(max_plt) - math.log(min_plt)
    return 1.0 + 4.0 * (math.log(max_plt) - math.log(plt)) / span


def min_plt_for(testbed):
    """The paper's per-testbed "excellent" anchor."""
    return ACCESS_MIN_PLT if testbed == "access" else BACKBONE_MIN_PLT
