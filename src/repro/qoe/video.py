"""Video QoE: SSIM/PSNR to MOS mapping (§8.1, mapping per Zinner et al.).

The paper's Figure 9 prints the SSIM value in each cell and colours it
by the mapped MOS (Figure 6b scale).  The mapping below is piecewise
linear through the anchor points used for scalable video in Zinner
et al. 2010: SSIM 1.0 is excellent, ~0.95 good, ~0.88 fair, and the
0.4-0.6 SSIM range the congested cells land in maps to "bad".
"""

import numpy as np

_SSIM_ANCHORS = [0.00, 0.40, 0.50, 0.60, 0.70, 0.80, 0.88, 0.95, 1.00]
_MOS_ANCHORS = [1.00, 1.00, 1.20, 1.50, 1.90, 2.40, 3.00, 4.00, 5.00]


def ssim_to_mos(ssim_value):
    """Map a mean SSIM score to the ACR MOS scale."""
    return float(np.interp(ssim_value, _SSIM_ANCHORS, _MOS_ANCHORS))
