"""Peak Signal-to-Noise Ratio — the paper's secondary video metric.

PSNR "enables a quality ranking of the same content subject to
different impairments" (§8.1) even though it correlates worse with
perception than SSIM; the paper reports that both produced equivalent
rankings.
"""

import numpy as np


def psnr(reference, degraded, peak=1.0):
    """PSNR in dB between two images; identical images give +inf."""
    reference = np.asarray(reference, dtype=np.float64)
    degraded = np.asarray(degraded, dtype=np.float64)
    if reference.shape != degraded.shape:
        raise ValueError("shape mismatch %s vs %s"
                         % (reference.shape, degraded.shape))
    mse = np.mean((reference - degraded) ** 2)
    if mse == 0:
        return float("inf")
    return float(10.0 * np.log10(peak * peak / mse))


def psnr_sequence(reference_frames, degraded_frames, peak=1.0, cap=60.0):
    """Mean PSNR over a sequence, with lossless frames capped at ``cap``."""
    scores = []
    for ref, deg in zip(reference_frames, degraded_frames):
        value = psnr(ref, deg, peak=peak)
        scores.append(min(value, cap))
    if not scores:
        return cap
    return float(np.mean(scores))


def psnr_to_mos(psnr_db):
    """Map PSNR to the ACR MOS scale (piecewise linear, Zinner et al.)."""
    anchors_db = [20.0, 25.0, 31.0, 37.0, 45.0]
    anchors_mos = [1.0, 2.0, 3.0, 4.0, 5.0]
    return float(np.interp(psnr_db, anchors_db, anchors_mos))
