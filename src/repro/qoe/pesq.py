"""PESQ-like full-reference speech quality model (the paper's z1).

ITU-T P.862 (PESQ) is a licensed reference implementation, so this is a
clean-room *signal-based* model with the same interface and the response
characteristics that matter for the study: it compares the degraded
signal against the reference in a perceptual (Bark-warped, compressed-
loudness) domain and is therefore sensitive to packet loss, concealment
artifacts and late-loss exactly through the waveform, not through QoS
numbers.

Pipeline (a simplified PESQ):

1. frame both signals (32 ms Hann windows, 50% overlap);
2. power spectra -> 18 Bark-spaced bands (100-3700 Hz);
3. Zwicker-style loudness compression ``S = B^0.23``;
4. per-frame disturbance = band-mean |S_deg - S_ref|, with the standard
   asymmetry emphasis on additive distortions (concealment noise);
5. time-aggregate (L3 norm) and map through a calibrated function to
   MOS-LQO in [1.02, 4.56].

The mapping constants are calibrated against published PESQ scores for
G.711 with random packet loss and concealment (MOS ~4.4 at 0%, ~3.6 at
3%, ~2.8 at 10%); tests pin these anchors.
"""

import numpy as np

from repro.media.speech import SAMPLE_RATE

_FRAME = 256  # 32 ms at 8 kHz
_HOP = 128
_N_BANDS = 18
_BAND_LO = 100.0
_BAND_HI = 3700.0

#: Calibrated score range: real PESQ tops out around 4.4-4.5 for clean
#: G.711 speech (the paper's noBG rows sit at 4.1-4.4).
_MOS_MAX = 4.40
_MOS_MIN = 1.02


def _bark(f):
    return 13.0 * np.arctan(0.00076 * f) + 3.5 * np.arctan((f / 7500.0) ** 2)


def _band_edges():
    lo, hi = _bark(_BAND_LO), _bark(_BAND_HI)
    bark_edges = np.linspace(lo, hi, _N_BANDS + 1)
    # Invert the Bark scale numerically on a dense frequency grid.
    freqs = np.linspace(0.0, 4000.0, 4001)
    barks = _bark(freqs)
    return np.interp(bark_edges, barks, freqs)


_EDGES = _band_edges()
_FFT_FREQS = np.fft.rfftfreq(_FRAME, 1.0 / SAMPLE_RATE)
_BAND_OF_BIN = np.clip(
    np.searchsorted(_EDGES, _FFT_FREQS) - 1, -1, _N_BANDS - 1
)
_WINDOW = np.hanning(_FRAME)


def _band_powers(signal):
    """Frame the signal and project power spectra onto the Bark bands."""
    n = len(signal)
    if n < _FRAME:
        signal = np.pad(signal, (0, _FRAME - n))
        n = len(signal)
    n_frames = 1 + (n - _FRAME) // _HOP
    strides = (signal.strides[0] * _HOP, signal.strides[0])
    frames = np.lib.stride_tricks.as_strided(
        signal, shape=(n_frames, _FRAME), strides=strides)
    spectra = np.abs(np.fft.rfft(frames * _WINDOW, axis=1)) ** 2
    bands = np.zeros((n_frames, _N_BANDS))
    for band in range(_N_BANDS):
        mask = _BAND_OF_BIN == band
        if mask.any():
            bands[:, band] = spectra[:, mask].sum(axis=1)
    return bands


def perceptual_disturbance(reference, degraded):
    """Mean perceptual disturbance between two aligned signals."""
    reference = np.asarray(reference, dtype=np.float64)
    degraded = np.asarray(degraded, dtype=np.float64)
    n = min(len(reference), len(degraded))
    if n == 0:
        return 0.0
    ref_bands = _band_powers(reference[:n])
    deg_bands = _band_powers(degraded[:n])
    floor = 1e4  # hearing-threshold-ish floor at int16 scale
    ref_loud = (ref_bands + floor) ** 0.23
    deg_loud = (deg_bands + floor) ** 0.23
    diff = deg_loud - ref_loud
    # Asymmetry: additive distortions (concealment noise, clicks) are
    # more annoying than attenuations.
    weighted = np.where(diff > 0, 1.8 * diff, -0.8 * diff)
    frame_dist = weighted.mean(axis=1)
    # Only score frames where either signal carries energy (speech
    # activity), as PESQ's time alignment effectively does.
    activity = (ref_bands.sum(axis=1) > 10 * floor) | (
        deg_bands.sum(axis=1) > 10 * floor)
    if activity.any():
        frame_dist = frame_dist[activity]
    # L3 time aggregation emphasises bursts of distortion.
    return float(np.mean(frame_dist ** 3) ** (1.0 / 3.0))


def pesq_like_mos(reference, degraded):
    """MOS-LQO estimate in [1.02, 4.56] for a degraded speech signal."""
    disturbance = perceptual_disturbance(reference, degraded)
    # Calibrated logistic (d0=15, p=2.5): hits the published PESQ anchors
    # for G.711 + concealment under random loss — ~4.5 clean, ~4.0 at 1%,
    # ~3.6 at 3%, ~3.1 at 5%, ~2.4 at 10%, <2 at 20%+.
    mos = _MOS_MIN + (_MOS_MAX - _MOS_MIN) / (
        1.0 + (disturbance / 15.0) ** 2.5)
    return float(min(_MOS_MAX, max(_MOS_MIN, mos)))
