"""QoE metric layer.

Standardized quality models used by the paper:

* :mod:`repro.qoe.scales` — MOS scales (Figure 6) and ITU-T G.114 delay
  classes.
* :mod:`repro.qoe.emodel` — ITU-T G.107 E-model (delay impairment Id is
  the paper's z2).
* :mod:`repro.qoe.pesq` — PESQ-like full-reference speech quality (z1).
* :mod:`repro.qoe.voip` — the paper's z = max(0, z1 - z2) combination.
* :mod:`repro.qoe.ssim` / :mod:`repro.qoe.psnr` — full-reference video
  metrics; :mod:`repro.qoe.video` maps them to MOS.
* :mod:`repro.qoe.web` — ITU-T G.1030 page-load-time model.
"""

from repro.qoe.emodel import EModel, delay_impairment, r_to_mos
from repro.qoe.scales import (
    G114_ACCEPTABLE_MS,
    G114_PROBLEMATIC_MS,
    g114_class,
    mos_class,
    voip_mos_class,
)

__all__ = [
    "EModel",
    "delay_impairment",
    "r_to_mos",
    "G114_ACCEPTABLE_MS",
    "G114_PROBLEMATIC_MS",
    "g114_class",
    "mos_class",
    "voip_mos_class",
]
