"""Structural Similarity (SSIM) — full-reference video metric (§8.1).

Clean-room implementation of Wang et al. 2004.  Default local statistics
use the 8x8 uniform window of the original paper's fast variant (a
Gaussian 11x11 window is available via ``window="gaussian"``); constants
are the standard C1=(0.01 L)^2, C2=(0.03 L)^2.
"""

import numpy as np
from scipy.ndimage import gaussian_filter, uniform_filter

C1 = 0.01 ** 2
C2 = 0.03 ** 2


def _local_stats(image, window):
    if window == "gaussian":
        def smooth(x):
            return gaussian_filter(x, sigma=1.5, truncate=3.5)
    else:
        def smooth(x):
            return uniform_filter(x, size=8)
    return smooth


def ssim(reference, degraded, window="uniform"):
    """Mean SSIM between two images in [0, 1].  Identity gives 1.0."""
    reference = np.asarray(reference, dtype=np.float64)
    degraded = np.asarray(degraded, dtype=np.float64)
    if reference.shape != degraded.shape:
        raise ValueError("shape mismatch %s vs %s"
                         % (reference.shape, degraded.shape))
    smooth = _local_stats(reference, window)
    mu_x = smooth(reference)
    mu_y = smooth(degraded)
    mu_xx = mu_x * mu_x
    mu_yy = mu_y * mu_y
    mu_xy = mu_x * mu_y
    sigma_xx = smooth(reference * reference) - mu_xx
    sigma_yy = smooth(degraded * degraded) - mu_yy
    sigma_xy = smooth(reference * degraded) - mu_xy
    numerator = (2.0 * mu_xy + C1) * (2.0 * sigma_xy + C2)
    denominator = (mu_xx + mu_yy + C1) * (sigma_xx + sigma_yy + C2)
    return float(np.mean(numerator / denominator))


def ssim_sequence(reference_frames, degraded_frames, window="uniform"):
    """Mean SSIM across a frame sequence (the paper's per-video score)."""
    scores = [
        ssim(ref, deg, window=window)
        for ref, deg in zip(reference_frames, degraded_frames)
    ]
    if not scores:
        return 1.0
    return float(np.mean(scores))
