"""VoIP QoE composition (§7.1).

The paper scores each call with two standardized models and combines
them:

* z1 — PESQ (signal-based: loss and jitter enter via the degraded
  waveform), remapped from MOS to the R scale [0, 100];
* z2 — the E-model delay impairment factor (conversational dynamics);
* z = max(0, z1 - z2), mapped back to MOS per ITU-T P.862.2 / G.107.
"""

from dataclasses import dataclass

from repro.qoe.emodel import delay_impairment, mos_to_r, r_to_mos
from repro.qoe.pesq import pesq_like_mos


@dataclass
class VoipScore:
    """Quality breakdown for one call."""

    mos: float  # final combined MOS (the heatmap value)
    z1_mos: float  # PESQ-like listening quality
    z1_r: float  # z1 on the R scale [0, 100]
    z2: float  # delay impairment on the R scale [0, 100]
    mouth_to_ear_delay: float  # seconds
    effective_loss: float  # frame-loss fraction in [0, 1]

    def __str__(self):
        return ("MOS %.2f (z1 %.2f MOS / %.0f R; z2 %.0f R; "
                "delay %.0f ms; loss %.1f%%)" % (
                    self.mos, self.z1_mos, self.z1_r, self.z2,
                    self.mouth_to_ear_delay * 1000,
                    self.effective_loss * 100))


def score_call(clean_signal, degraded_signal, playout_result,
               conversational_delay=None):
    """Score one finished call leg (see :class:`repro.apps.voip.VoipCall`).

    ``conversational_delay`` is the delay driving z2.  In a conversation
    it is the worse of the two directions' mouth-to-ear delays — §7.2
    stresses that an inflated uplink delay degrades the *listening*
    direction too, because turn-taking spans both paths.  Defaults to
    this leg's own mouth-to-ear delay.
    """
    z1_mos = pesq_like_mos(clean_signal, degraded_signal)
    z1_r = mos_to_r(z1_mos)
    if conversational_delay is None:
        conversational_delay = playout_result.mouth_to_ear_delay
    z2 = delay_impairment(conversational_delay)
    z = max(0.0, z1_r - z2)
    return VoipScore(
        mos=r_to_mos(z),
        z1_mos=z1_mos,
        z1_r=z1_r,
        z2=z2,
        mouth_to_ear_delay=playout_result.mouth_to_ear_delay,
        effective_loss=playout_result.effective_loss_rate,
    )
