"""ITU-T G.107 E-model (the paper's z2 delay impairment, §7.1).

The E-model composes a transmission rating factor::

    R = Ro - Is - Id - Ie,eff + A

With all default parameters (G.711, no echo, no noise) the budget is
R = 93.2.  The paper uses the *delay impairment* ``Id`` — dominated by
``Idd``, the pure-delay term — as the score z2 on the R scale [0, 100],
and the G.107 Annex B polynomial to map R scores to MOS.

``Ie,eff`` (packet-loss impairment) is implemented as well: the full
E-model is exposed for the AQM ablations and for tests, even though the
paper's combination builds its loss sensitivity into z1 (PESQ) instead.
"""

import math

#: Default transmission rating budget with G.107 defaults.
DEFAULT_R0 = 93.2

#: Packet-loss robustness of G.711 (ITU-T G.113 Appendix I): 4.3 without
#: concealment, 25.1 with packet-loss concealment.
G711_BPL_PLC = 25.1
G711_BPL_NO_PLC = 4.3
G711_IE = 0.0


def delay_impairment(one_way_delay):
    """G.107 delay impairment factor Idd for a one-way delay in seconds.

    Zero below 100 ms, then the standard's sixth-order interpolation —
    roughly 25 R-points at ~390 ms and saturating toward 50 for
    multi-second (bufferbloat) delays.
    """
    ta_ms = one_way_delay * 1000.0
    if ta_ms <= 100.0:
        return 0.0
    x = math.log(ta_ms / 100.0, 2.0)
    term1 = (1.0 + x ** 6) ** (1.0 / 6.0)
    term2 = 3.0 * (1.0 + (x / 3.0) ** 6) ** (1.0 / 6.0)
    return 25.0 * (term1 - term2 + 2.0)


def loss_impairment(loss_rate, ie=G711_IE, bpl=G711_BPL_PLC, burst_ratio=1.0):
    """G.107 effective equipment impairment Ie,eff.

    ``loss_rate`` is the end-to-end packet-loss probability in [0, 1];
    ``burst_ratio`` 1.0 means random loss, larger means burstier.
    """
    ppl = max(0.0, min(1.0, loss_rate)) * 100.0
    if ppl == 0.0:
        return ie
    return ie + (95.0 - ie) * ppl / (ppl / burst_ratio + bpl)


def r_to_mos(r):
    """G.107 Annex B mapping from the R scale to MOS (1.0 .. 4.5)."""
    if r <= 0.0:
        return 1.0
    if r >= 100.0:
        return 4.5
    return 1.0 + 0.035 * r + r * (r - 60.0) * (100.0 - r) * 7e-6


def mos_to_r(mos):
    """Numeric inverse of :func:`r_to_mos` (bisection on [0, 100])."""
    target = max(1.0, min(4.5, mos))
    lo, hi = 0.0, 100.0
    for __ in range(60):
        mid = (lo + hi) / 2.0
        if r_to_mos(mid) < target:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


class EModel:
    """Convenience wrapper with fixed codec parameters.

    >>> model = EModel()
    >>> r, mos = model.score(one_way_delay=0.05, loss_rate=0.0)
    >>> round(mos, 1)
    4.4
    """

    def __init__(self, r0=DEFAULT_R0, ie=G711_IE, bpl=G711_BPL_PLC,
                 burst_ratio=1.0, advantage=0.0):
        self.r0 = r0
        self.ie = ie
        self.bpl = bpl
        self.burst_ratio = burst_ratio
        self.advantage = advantage

    def rating(self, one_way_delay, loss_rate=0.0):
        """Full R factor in [0, 100]; ``one_way_delay`` in seconds,
        ``loss_rate`` a fraction in [0, 1]."""
        r = (self.r0
             - delay_impairment(one_way_delay)
             - loss_impairment(loss_rate, self.ie, self.bpl, self.burst_ratio)
             + self.advantage)
        return max(0.0, min(100.0, r))

    def score(self, one_way_delay, loss_rate=0.0):
        """Return ``(R, MOS)`` for a delay (seconds) / loss (fraction)
        operating point."""
        r = self.rating(one_way_delay, loss_rate)
        return r, r_to_mos(r)
