"""Declarative scenario/sweep registry — the single source of truth for
every experiment grid.

The paper's artifacts (and our extensions) are all grids of independent
(scenario x buffer size x extra axes) cells.  This module declares each
grid once, as a named :class:`SweepSpec`, and everything else consumes
that declaration:

* the study-layer grid builders (:mod:`repro.core.study`,
  :mod:`repro.core.voip_study`, ...) construct ad-hoc specs from their
  arguments and run them;
* the benchmarks look their artifact up in :data:`REGISTRY` so the
  benchmark grid and the CLI grid are the *same tasks* (bit-identical
  cell hashes, shared result cache);
* ``python -m repro list/describe/run`` (see :mod:`repro.cli`) exposes
  the catalog on the command line.

Specs are frozen, JSON-serializable dataclasses; :meth:`SweepSpec.tasks`
lowers a spec to :class:`repro.runner.task.CellTask` cells and
:meth:`SweepSpec.run` executes them through a
:class:`repro.runner.grid.GridRunner` (parallel + cached).

Scale resolution
----------------
The global fidelity knob ``REPRO_SCALE`` (float, default 1.0) stretches
measurement windows and repetition counts: a spec stores a *base*
duration plus a floor (``duration``/``duration_min``, both in simulated
seconds) and resolves ``max(duration_min, duration * scale)``; scaled
integer knobs such as web fetch counts are declared in ``counts`` the
same way.  Specs may also declare reduced axes (``scenarios_small``,
``buffers_small``) used below ``full_scale`` so quick runs stay quick.
"""

import os
from dataclasses import asdict, dataclass

from repro.core.scenarios import (
    access_scenario,
    backbone_scenario,
    with_loss,
)
from repro.runner import CellTask, GridRunner
from repro.runner.task import DISCIPLINES, KINDS


def resolve_scale(default=1.0):
    """Read the global fidelity knob (``REPRO_SCALE`` env var, float)."""
    try:
        return float(os.environ.get("REPRO_SCALE", default))
    except ValueError:
        return default


# ---------------------------------------------------------------------------
# ScenarioSpec: a declarative pointer to one workload row.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """Pointer to one :class:`repro.core.scenarios.Scenario` row.

    Parameters
    ----------
    testbed:
        ``"access"`` or ``"backbone"``.
    workload:
        Table 1 row name (``"noBG"``, ``"long-many"``, ``"short-low"``,
        ...).
    direction:
        Congestion direction for access scenarios: ``"down"``, ``"up"``
        or ``"bidir"`` (ignored for ``noBG`` and the backbone).
    loss:
        Wire loss probability in ``[0, 1)`` applied to both bottleneck
        directions — the wireless-like extension variant; 0.0 is the
        paper's clean testbed.
    label:
        Cell-key label used in sweep results; defaults to ``workload``.
        Must be unique within a sweep.
    """

    testbed: str
    workload: str
    direction: str = "down"
    loss: float = 0.0
    label: str = ""

    def __post_init__(self):
        if self.testbed not in ("access", "backbone"):
            raise ValueError("unknown testbed %r" % (self.testbed,))
        if not 0.0 <= self.loss < 1.0:
            raise ValueError("loss must be in [0, 1), got %r" % (self.loss,))

    @property
    def key(self):
        """The label this row contributes to sweep cell keys."""
        return self.label or self.workload

    def build(self):
        """Materialize the :class:`repro.core.scenarios.Scenario`."""
        if self.testbed == "access":
            scenario = access_scenario(self.workload, self.direction)
        else:
            scenario = backbone_scenario(self.workload)
        if self.loss > 0.0:
            scenario = with_loss(scenario, down_loss=self.loss,
                                 up_loss=self.loss)
        return scenario

    def to_json(self):
        """Plain-JSON dict representation (tuple-free)."""
        return asdict(self)

    @classmethod
    def from_json(cls, data):
        return cls(**data)


def access(workload, direction="down", loss=0.0, label=""):
    """Shorthand for an access-testbed :class:`ScenarioSpec`."""
    return ScenarioSpec("access", workload, direction, loss, label)


def backbone(workload, loss=0.0, label=""):
    """Shorthand for a backbone-testbed :class:`ScenarioSpec`."""
    return ScenarioSpec("backbone", workload, "down", loss, label)


# ---------------------------------------------------------------------------
# SweepSpec: a named experiment grid.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SweepSpec:
    """One named experiment grid (a paper artifact or an extension).

    The cell cross-product is ``scenarios x buffers x axes x
    disciplines``; each cell lowers to one
    :class:`repro.runner.task.CellTask`.  Every duration/warmup field is
    in simulated seconds; buffer sizes are in packets (an entry may be a
    ``(down, up)`` pair for per-direction buffers).

    Cell keys in :meth:`run` results are ``(scenario.key, buffer)``
    extended by one value per entry of ``axes`` (in declaration order)
    and, when more than one discipline is swept, the discipline name.
    """

    name: str
    kind: str  # "qos" | "voip" | "video" | "web"
    title: str
    provenance: str  # e.g. "Figure 5" / "Table 1 (access)" / "extension"
    description: str = ""
    scenarios: tuple = ()  # ScenarioSpec rows (full-scale axis)
    scenarios_small: tuple = None  # reduced axis below full_scale
    buffers: tuple = ()  # packet counts, or (down, up) tuples
    buffers_small: tuple = None
    full_scale: float = 4.0  # REPRO_SCALE at which the full axes kick in
    seed: int = 0
    warmup: float = 5.0  # seconds (simulated) before measurement starts
    duration: float = 8.0  # base measurement window, seconds (simulated)
    duration_min: float = 4.0  # window floor, seconds (simulated)
    counts: tuple = ()  # ((param, base, minimum), ...) scale-resolved ints
    params: tuple = ()  # ((param, value), ...) static cell parameters
    axes: tuple = ()  # ((param, (value, ...)), ...) extra cell axes
    disciplines: tuple = ("droptail",)  # queue disciplines to sweep

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError("unknown sweep kind %r (have %s)"
                             % (self.kind, KINDS))
        for discipline in self.disciplines:
            if discipline not in DISCIPLINES:
                raise ValueError("unknown discipline %r (have %s)"
                                 % (discipline, DISCIPLINES))
        for axis in (self.scenarios, self.scenarios_small or ()):
            labels = [spec.key for spec in axis]
            if len(set(labels)) != len(labels):
                raise ValueError(
                    "sweep %r has duplicate scenario labels %s — set "
                    "ScenarioSpec.label to disambiguate" % (self.name, labels))

    # -- axis resolution ------------------------------------------------
    def scenario_axis(self, scale=None):
        """The scenario rows active at ``scale`` (REPRO_SCALE default)."""
        scale = resolve_scale() if scale is None else scale
        if self.scenarios_small is not None and scale < self.full_scale:
            return self.scenarios_small
        return self.scenarios

    def buffer_axis(self, scale=None):
        """The buffer sizes (packets) active at ``scale``."""
        scale = resolve_scale() if scale is None else scale
        if self.buffers_small is not None and scale < self.full_scale:
            return self.buffers_small
        return self.buffers

    def workloads(self, scale=None):
        """Cell-key labels of the active scenario rows."""
        return tuple(spec.key for spec in self.scenario_axis(scale))

    def resolved_duration(self, scale=None):
        """Measurement window in simulated seconds at ``scale``."""
        scale = resolve_scale() if scale is None else scale
        return max(self.duration_min, self.duration * scale)

    def resolved_counts(self, scale=None):
        """Scale-dependent integer parameters, e.g. web fetch counts."""
        scale = resolve_scale() if scale is None else scale
        return {name: max(minimum, int(round(base * scale)))
                for name, base, minimum in self.counts}

    # -- lowering to tasks ---------------------------------------------
    def _axis_product(self):
        """Cross-product of the extra ``axes`` as (key-part, params) pairs."""
        combos = [((), {})]
        for param, values in self.axes:
            combos = [(key + (value,), dict(params, **{param: value}))
                      for key, params in combos for value in values]
        return combos

    def cells(self, scale=None):
        """Cell keys, aligned one-to-one with :meth:`tasks`."""
        keys = []
        multi_discipline = len(self.disciplines) > 1
        for scenario in self.scenario_axis(scale):
            for buffer_packets in self.buffer_axis(scale):
                for axis_key, __ in self._axis_product():
                    for discipline in self.disciplines:
                        key = (scenario.key, buffer_packets) + axis_key
                        if multi_discipline:
                            key += (discipline,)
                        keys.append(key)
        return keys

    def tasks(self, scale=None):
        """Lower the spec to :class:`repro.runner.task.CellTask` cells."""
        duration = self.resolved_duration(scale)
        params = dict(self.params)
        params.update(self.resolved_counts(scale))
        tasks = []
        for scenario_spec in self.scenario_axis(scale):
            scenario = scenario_spec.build()
            for buffer_packets in self.buffer_axis(scale):
                for __, axis_params in self._axis_product():
                    for discipline in self.disciplines:
                        tasks.append(CellTask.make(
                            self.kind, scenario, buffer_packets,
                            seed=self.seed, warmup=self.warmup,
                            duration=duration, discipline=discipline,
                            **dict(params, **axis_params)))
        return tasks

    def cell_count(self, scale=None):
        """Number of grid cells at ``scale``."""
        axis_cells = 1
        for __, values in self.axes:
            axis_cells *= len(values)
        return (len(self.scenario_axis(scale)) * len(self.buffer_axis(scale))
                * axis_cells * len(self.disciplines))

    def run(self, runner=None, scale=None):
        """Execute the grid; returns ``{cell key: result}``.

        ``runner`` defaults to a fresh :class:`repro.runner.GridRunner`
        (parallel + cached, env-driven); results are revived study-layer
        values (:class:`repro.core.experiment.QosReport` for ``qos``
        cells, plain dicts otherwise).
        """
        results = (runner or GridRunner()).run(self.tasks(scale))
        return dict(zip(self.cells(scale), results))

    # -- serialization --------------------------------------------------
    def to_json(self):
        """Plain-JSON dict representation of the full spec."""
        data = asdict(self)
        if self.scenarios_small is None:
            data.pop("scenarios_small")
        if self.buffers_small is None:
            data.pop("buffers_small")
        return data

    @classmethod
    def from_json(cls, data):
        data = dict(data)
        for axis in ("scenarios", "scenarios_small"):
            if data.get(axis) is not None:
                data[axis] = tuple(ScenarioSpec.from_json(item)
                                   for item in data[axis])
        for axis in ("buffers", "buffers_small"):
            if data.get(axis) is not None:
                data[axis] = tuple(tuple(b) if isinstance(b, list) else b
                                   for b in data[axis])
        for name in ("counts", "params", "axes", "disciplines"):
            if data.get(name) is not None:
                data[name] = tuple(
                    tuple(tuple(part) if isinstance(part, list) else part
                          for part in item) if isinstance(item, list)
                    else item
                    for item in data[name])
        return cls(**data)

    def describe(self, scale=None):
        """JSON-ready summary with scale-resolved axes and durations."""
        scale = resolve_scale() if scale is None else scale
        return {
            "name": self.name,
            "kind": self.kind,
            "title": self.title,
            "provenance": self.provenance,
            "description": self.description,
            "scale": scale,
            "workloads": list(self.workloads(scale)),
            "buffers": [list(b) if isinstance(b, tuple) else b
                        for b in self.buffer_axis(scale)],
            "disciplines": list(self.disciplines),
            "axes": [[param, list(values)] for param, values in self.axes],
            "seed": self.seed,
            "warmup_s": self.warmup,
            "duration_s": self.resolved_duration(scale),
            "counts": self.resolved_counts(scale),
            "params": dict(self.params),
            "cells": self.cell_count(scale),
        }


def adhoc_sweep(name, kind, scenarios, buffers, seed=0, warmup=5.0,
                duration=8.0, disciplines=("droptail",), params=(),
                axes=()):
    """Build an unregistered spec with a *literal* (unscaled) duration.

    The study-layer grid builders use this so their explicit
    ``duration=`` arguments pass through verbatim: the base duration
    doubles as its own floor, making :meth:`SweepSpec.resolved_duration`
    the identity at any ``REPRO_SCALE`` ≤ 1 and callers responsible for
    scaling above it.
    """
    return SweepSpec(
        name=name, kind=kind, title=name, provenance="ad-hoc",
        scenarios=tuple(scenarios), buffers=tuple(buffers), seed=seed,
        warmup=warmup, duration=duration, duration_min=duration,
        params=tuple(params), axes=tuple(axes),
        disciplines=tuple(disciplines))


def run_sweep(spec, runner=None, scale=None):
    """Execute ``spec`` (see :meth:`SweepSpec.run`)."""
    return spec.run(runner=runner, scale=scale)


# ---------------------------------------------------------------------------
# The registry.
# ---------------------------------------------------------------------------
REGISTRY = {}


def register(spec):
    """Add ``spec`` to the global catalog (name collisions are errors)."""
    if spec.name in REGISTRY:
        raise ValueError("duplicate sweep name %r" % (spec.name,))
    REGISTRY[spec.name] = spec
    return spec


def get(name):
    """Look a registered sweep up by name."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError("unknown sweep %r — run `python -m repro list` "
                       "(have: %s)" % (name, ", ".join(sorted(REGISTRY)))
                       ) from None


def names():
    """Registered sweep names in catalog (registration) order."""
    return list(REGISTRY)


def paper_sweeps():
    """Registered sweeps that reproduce a paper artifact."""
    return [spec for spec in REGISTRY.values()
            if spec.provenance != "extension"]


def extension_sweeps():
    """Registered sweeps that extend beyond the paper."""
    return [spec for spec in REGISTRY.values()
            if spec.provenance == "extension"]


# -- paper grids (provenance = figure/table) --------------------------------
#
# The parameters below are exactly the ones the benchmarks under
# benchmarks/ historically used, so warm caches stay warm: at scale 1
# the *_small axes and duration floors reproduce the quick benchmark
# grids; at REPRO_SCALE >= full_scale the full paper grids run.

ACCESS_BUFFER_SIZES = (8, 16, 32, 64, 128, 256)
BACKBONE_BUFFER_SIZES = (8, 28, 749, 7490)

register(SweepSpec(
    name="fig4-up",
    kind="qos",
    title="Figure 4c: mean queueing delay, upstream congestion",
    provenance="Figure 4",
    description="Mean up/downlink queueing delay per (workload, buffer) "
                "on the access testbed with upload activity — the "
                "bufferbloat staircase.",
    scenarios=tuple(access(w, "up") for w in
                    ("long-few", "long-many", "short-few", "short-many")),
    scenarios_small=(access("long-few", "up"), access("short-few", "up")),
    buffers=ACCESS_BUFFER_SIZES,
    seed=2, warmup=8.0, duration=12.0, duration_min=8.0))

register(SweepSpec(
    name="fig4-down",
    kind="qos",
    title="Figure 4a: mean queueing delay, downstream congestion",
    provenance="Figure 4",
    description="Downlink congestion keeps the mean delay envelope below "
                "200 ms at every buffer size; the uplink carries only ACKs.",
    scenarios=(access("long-many", "down"),),
    buffers=ACCESS_BUFFER_SIZES,
    seed=2, warmup=6.0, duration=10.0, duration_min=6.0))

register(SweepSpec(
    name="fig5",
    kind="qos",
    title="Figure 5: link utilization, bidirectional long workload",
    provenance="Figure 5",
    description="Per-second utilization boxplots of both bottleneck "
                "directions under the 8-up/64-down long-flow workload.",
    scenarios=(access("long-many", "bidir"),),
    buffers=ACCESS_BUFFER_SIZES,
    seed=1, warmup=8.0, duration=15.0, duration_min=10.0))

register(SweepSpec(
    name="table1-access",
    kind="qos",
    title="Table 1 (access): workload characteristics at BDP buffers",
    provenance="Table 1",
    description="Utilization/loss columns of the access half of Table 1, "
                "measured at the per-direction BDP buffers (64 down, 8 up).",
    scenarios=tuple(
        access(name, direction, label="%s/%s" % (name, direction))
        for name in ("short-few", "short-many", "long-few", "long-many")
        for direction in ("up", "bidir", "down")),
    scenarios_small=(
        access("short-few", "down", label="short-few/down"),
        access("short-many", "down", label="short-many/down"),
        access("long-few", "bidir", label="long-few/bidir"),
        access("long-many", "down", label="long-many/down"),
        access("short-few", "up", label="short-few/up")),
    buffers=((64, 8),),
    seed=1, warmup=6.0, duration=20.0, duration_min=10.0))

register(SweepSpec(
    name="table1-backbone",
    kind="qos",
    title="Table 1 (backbone): workload characteristics at the BDP buffer",
    provenance="Table 1",
    description="Utilization/loss columns of the backbone half of Table 1 "
                "at the 749-packet BDP buffer.",
    scenarios=tuple(backbone(w) for w in
                    ("short-low", "short-medium", "short-high",
                     "short-overload", "long")),
    scenarios_small=tuple(backbone(w) for w in
                          ("short-low", "short-medium", "short-high")),
    buffers=(749,),
    full_scale=2.0,
    seed=1, warmup=5.0, duration=15.0, duration_min=8.0))

register(SweepSpec(
    name="fig7a",
    kind="voip",
    title="Figure 7a: access VoIP MOS, download activity",
    provenance="Figure 7",
    description="Median combined MOS for both call directions under "
                "downstream background traffic.",
    scenarios=tuple(access(w, "down") for w in
                    ("noBG", "long-few", "long-many")),
    buffers=(8, 64, 256),
    seed=3, warmup=8.0, duration=8.0, duration_min=5.0,
    params=(("calls", 1), ("directions", ("talks", "listens")))))

register(SweepSpec(
    name="fig7b",
    kind="voip",
    title="Figure 7b: access VoIP MOS, upload activity (bufferbloat)",
    provenance="Figure 7",
    description="The headline result: upload congestion plus a bloated "
                "uplink buffer destroys both call directions.",
    scenarios=tuple(access(w, "up") for w in
                    ("noBG", "long-few", "long-many", "short-few",
                     "short-many")),
    scenarios_small=tuple(access(w, "up") for w in
                          ("noBG", "long-few", "long-many")),
    buffers=ACCESS_BUFFER_SIZES,
    buffers_small=(8, 64, 256),
    seed=3, warmup=10.0, duration=8.0, duration_min=5.0,
    params=(("calls", 1), ("directions", ("talks", "listens")))))

register(SweepSpec(
    name="fig8",
    kind="voip",
    title="Figure 8: backbone VoIP MOS",
    provenance="Figure 8",
    description="Unidirectional (server -> client) audio across the "
                "backbone workloads; workload, not buffer size, dominates.",
    scenarios=tuple(backbone(w) for w in
                    ("noBG", "short-low", "short-medium", "short-high",
                     "short-overload", "long")),
    scenarios_small=tuple(backbone(w) for w in
                          ("noBG", "short-medium", "long")),
    buffers=BACKBONE_BUFFER_SIZES,
    buffers_small=(8, 749, 7490),
    full_scale=2.0,
    seed=3, warmup=12.0, duration=8.0, duration_min=5.0,
    params=(("calls", 1), ("directions", ("listens",)))))

register(SweepSpec(
    name="fig9a",
    kind="video",
    title="Figure 9a: access IPTV SSIM, download activity",
    provenance="Figure 9",
    description="RTP video streamed downstream; SSIM is binary in the "
                "workload and almost independent of the buffer size.",
    scenarios=tuple(access(w, "down") for w in
                    ("noBG", "long-few", "long-many", "short-few",
                     "short-many")),
    scenarios_small=tuple(access(w, "down") for w in
                          ("noBG", "long-few", "long-many")),
    buffers=(8, 64, 256),
    seed=4, warmup=6.0, duration=6.0, duration_min=4.0,
    params=(("clip", "C"),),
    axes=(("resolution", ("SD", "HD")),)))

register(SweepSpec(
    name="fig9b",
    kind="video",
    title="Figure 9b: backbone IPTV SSIM",
    provenance="Figure 9",
    description="Backbone streaming: clean under light load, degraded by "
                "the sustained long workload regardless of buffer size.",
    scenarios=tuple(backbone(w) for w in ("noBG", "short-medium", "long")),
    buffers=(749, 7490),
    seed=4, warmup=12.0, duration=6.0, duration_min=4.0,
    params=(("clip", "C"),),
    axes=(("resolution", ("SD", "HD")),)))

register(SweepSpec(
    name="fig10a",
    kind="web",
    title="Figure 10a: access WebQoE, download activity",
    provenance="Figure 10",
    description="Median page-load time per (workload, buffer); moderate "
                "load likes large buffers, heavy load small ones.",
    scenarios=tuple(access(w, "down") for w in
                    ("noBG", "long-few", "long-many", "short-few")),
    buffers=ACCESS_BUFFER_SIZES,
    buffers_small=(8, 64, 256),
    seed=5, warmup=8.0, duration=0.0, duration_min=0.0,
    counts=(("fetches", 8, 4),)))

register(SweepSpec(
    name="fig10b",
    kind="web",
    title="Figure 10b: access WebQoE, upload activity",
    provenance="Figure 10",
    description="Upload congestion wrecks page loads; only a small uplink "
                "buffer keeps long-few barely acceptable.",
    scenarios=tuple(access(w, "up") for w in
                    ("noBG", "long-few", "short-many")),
    buffers=(8, 64, 256),
    seed=5, warmup=8.0, duration=0.0, duration_min=0.0,
    counts=(("fetches", 6, 3),)))

register(SweepSpec(
    name="fig11",
    kind="web",
    title="Figure 11: backbone WebQoE",
    provenance="Figure 11",
    description="Backbone page loads: fine under light load at every "
                "size, RTT-dominated under the sustained long workload.",
    scenarios=tuple(backbone(w) for w in
                    ("noBG", "short-low", "short-medium", "short-high",
                     "short-overload", "long")),
    scenarios_small=tuple(backbone(w) for w in
                          ("noBG", "short-medium", "long")),
    buffers=(8, 749, 7490),
    full_scale=2.0,
    seed=5, warmup=15.0, duration=0.0, duration_min=0.0,
    counts=(("fetches", 5, 3),)))

# -- extension families (provenance = "extension") --------------------------

register(SweepSpec(
    name="aqm-voip",
    kind="voip",
    title="AQM sweep: VoIP under upload congestion",
    provenance="extension",
    description="DropTail vs RED vs CoDel on the bloated uplink of the "
                "paper's worst VoIP cell; AQM should recover most of the "
                "MOS that standing queues cost.",
    scenarios=(access("long-few", "up"),),
    buffers=(64, 256),
    seed=3, warmup=12.0, duration=8.0, duration_min=5.0,
    params=(("calls", 1), ("directions", ("talks", "listens"))),
    disciplines=("droptail", "red", "codel")))

register(SweepSpec(
    name="aqm-video",
    kind="video",
    title="AQM sweep: IPTV under download congestion",
    provenance="extension",
    description="Queue disciplines trade queueing delay for loss; video "
                "QoE is loss-bound, so AQM helps far less than for VoIP.",
    scenarios=(access("long-few", "down"),),
    buffers=(64, 256),
    seed=4, warmup=6.0, duration=6.0, duration_min=4.0,
    params=(("clip", "C"), ("resolution", "SD")),
    disciplines=("droptail", "red", "codel")))

register(SweepSpec(
    name="aqm-web",
    kind="web",
    title="AQM sweep: WebQoE under heavy download congestion",
    provenance="extension",
    description="Page loads under long-many download congestion per "
                "discipline; CoDel bounds the RTT inflation that makes "
                "large drop-tail buffers lose.",
    scenarios=(access("long-many", "down"),),
    buffers=(8, 64, 256),
    seed=5, warmup=8.0, duration=0.0, duration_min=0.0,
    counts=(("fetches", 6, 3),),
    disciplines=("droptail", "red", "codel")))

register(SweepSpec(
    name="wireless-voip",
    kind="voip",
    title="Lossy-link sweep: VoIP over a wireless-like access link",
    provenance="extension",
    description="The access VoIP grid with 1% and 3% random wire loss on "
                "both bottleneck directions — does buffer sizing still "
                "matter when the channel itself drops packets?",
    scenarios=(access("noBG", "up", label="noBG"),
               access("noBG", "up", loss=0.01, label="noBG+loss1%"),
               access("noBG", "up", loss=0.03, label="noBG+loss3%"),
               access("long-few", "up", label="long-few"),
               access("long-few", "up", loss=0.01, label="long-few+loss1%"),
               access("long-few", "up", loss=0.03, label="long-few+loss3%")),
    buffers=(8, 64, 256),
    seed=3, warmup=10.0, duration=8.0, duration_min=5.0,
    params=(("calls", 1), ("directions", ("talks", "listens")))))

register(SweepSpec(
    name="wireless-qos",
    kind="qos",
    title="Lossy-link sweep: background QoS over a wireless-like link",
    provenance="extension",
    description="Table-1-style utilization/loss of the long-few download "
                "workload as wire loss grows: random loss starves TCP and "
                "empties the buffer the sweep is meant to size.",
    scenarios=(access("long-few", "down", label="long-few"),
               access("long-few", "down", loss=0.01, label="long-few+loss1%"),
               access("long-few", "down", loss=0.03, label="long-few+loss3%")),
    buffers=(8, 64, 256),
    seed=1, warmup=6.0, duration=12.0, duration_min=8.0))

register(SweepSpec(
    name="bufferbloat-mixed",
    kind="voip",
    title="Mixed VoIP + bulk bufferbloat sweep (bidirectional)",
    provenance="extension",
    description="A call sharing the access link with bidirectional bulk "
                "uploads and downloads (long-many bidir) across the full "
                "buffer range — the §7.2 bufferbloat discussion as a grid.",
    scenarios=(access("long-few", "bidir"), access("long-many", "bidir")),
    buffers=ACCESS_BUFFER_SIZES,
    buffers_small=(8, 32, 64, 256),
    seed=3, warmup=10.0, duration=8.0, duration_min=5.0,
    params=(("calls", 1), ("directions", ("talks", "listens")))))
