"""The paper's core contribution: the QoE buffer-sizing sensitivity study.

This package turns the substrates (simulator, TCP, media, QoE models)
into the paper's experiment grid:

* :mod:`repro.core.buffers` — Table 2's buffer catalog and sizing rules
  (BDP, Stanford BDP/sqrt(n), tiny buffers, 10x BDP).
* :mod:`repro.core.scenarios` — Table 1's workload catalog for both
  testbeds, with calibrated Harpoon parameters.
* :mod:`repro.core.workloads` — applies a scenario to a built network.
* :mod:`repro.core.experiment` — single-cell experiment runners (QoS and
  per-application QoE).
* :mod:`repro.core.study` — grid sweeps producing the paper's heatmaps.
* :mod:`repro.core.registry` — the declarative sweep catalog behind the
  benchmarks and the ``python -m repro`` CLI.
* :mod:`repro.core.paper_data` — the numbers printed in the paper, for
  side-by-side comparison.
"""

from repro.core.buffers import (
    ACCESS_BUFFERS,
    BACKBONE_BUFFERS,
    BufferConfig,
    bdp_packets,
    max_queueing_delay,
    stanford_packets,
)
from repro.core.scenarios import (
    ACCESS_SCENARIOS,
    BACKBONE_SCENARIOS,
    Scenario,
    access_scenario,
    backbone_scenario,
)
from repro.core.experiment import QosReport, run_qos_cell
from repro.core.workloads import apply_workload

__all__ = [
    "ACCESS_BUFFERS",
    "BACKBONE_BUFFERS",
    "BufferConfig",
    "bdp_packets",
    "max_queueing_delay",
    "stanford_packets",
    "ACCESS_SCENARIOS",
    "BACKBONE_SCENARIOS",
    "Scenario",
    "access_scenario",
    "backbone_scenario",
    "QosReport",
    "run_qos_cell",
    "apply_workload",
]
