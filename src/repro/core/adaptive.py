"""Load-dependent buffer sizing (the scheme §9.4/§10 calls for).

The paper's WebQoE findings are two-sided: at low-to-moderate load,
*large* buffers help (they absorb bursts and avoid retransmissions); at
high load, *small* buffers help (PLT becomes RTT-dominated).  It
concludes that "this suggests load-dependent buffer sizing schemes".

:class:`LoadAdaptiveBuffer` implements the obvious controller: measure
the bottleneck utilization over an interval and re-size the drop-tail
queue's capacity between a "large" and a "small" configuration with
hysteresis.  The ablation benchmark (A2) compares it against the fixed
sizes of Table 2.
"""


class LoadAdaptiveBuffer:
    """Periodically re-sizes an interface's queue based on utilization.

    Parameters
    ----------
    sim, interface:
        The bottleneck to control.
    small_packets, large_packets:
        The two capacities to switch between (e.g. BDP/4 and 2x BDP).
    high_watermark, low_watermark:
        Utilization thresholds with hysteresis: above ``high`` the
        buffer shrinks (delay-dominated regime), below ``low`` it grows
        (burst-absorption regime).
    interval:
        Measurement period in seconds.
    """

    def __init__(self, sim, interface, small_packets, large_packets,
                 high_watermark=0.85, low_watermark=0.60, interval=1.0):
        if small_packets > large_packets:
            raise ValueError("small_packets must be <= large_packets")
        self.sim = sim
        self.interface = interface
        self.small_packets = small_packets
        self.large_packets = large_packets
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.interval = interval
        self.switches = 0
        self._last_bytes = 0
        self._event = None

    @property
    def current_packets(self):
        return self.interface.queue.capacity_packets

    def start(self):
        """Begin controlling (queue starts at the large size)."""
        self.interface.queue.capacity_packets = self.large_packets
        self._last_bytes = self.interface.stats.tx_bytes
        self._event = self.sim.schedule(self.interval, self._tick)
        return self

    def stop(self):
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self):
        tx_bytes = self.interface.stats.tx_bytes
        delta = tx_bytes - self._last_bytes
        self._last_bytes = tx_bytes
        capacity = self.interface.rate_bps * self.interval / 8.0
        utilization = min(1.0, delta / capacity)
        queue = self.interface.queue
        if (utilization >= self.high_watermark
                and queue.capacity_packets != self.small_packets):
            queue.capacity_packets = self.small_packets
            self.switches += 1
        elif (utilization <= self.low_watermark
                and queue.capacity_packets != self.large_packets):
            queue.capacity_packets = self.large_packets
            self.switches += 1
        self._event = self.sim.schedule(self.interval, self._tick)
