"""Workload scenario catalog (Table 1).

Each :class:`Scenario` fully describes the background traffic of one row
of Table 1: how many Harpoon sessions or long-lived flows run in each
direction and with which parameters.

Calibration note
----------------
The paper states the file-size distribution exactly
(Weibull(0.35, 10039), mean ~50 KB) but describes the session behaviour
only as "Harpoon's default parameters" with inter-arrival means of 2 s
(access, "exp-a") and 1 s (backbone, "exp-b").  Taken literally as one
transfer per session per inter-arrival, those numbers produce a fraction
of the utilizations Table 1 reports (e.g. ~10% instead of 44% for
short-few downstream).  Harpoon sessions issue several concurrent
transfers; we calibrate the *effective* per-session inter-arrival so the
measured utilizations match Table 1:

* access downstream: 0.5 s (nominal 2 s) → short-few ~40%, short-many ~79%
* access upstream: 0.3 s with a deep per-session cap → sustained ~99%
  uplink utilization and tens of piled-up concurrent flows, as reported
* backbone: 0.5 s (nominal 1 s) → 16.5% / 49% / 98% / overload, matching
  short-low/-medium/-high/-overload

Congestion control follows §5.2: TCP Reno for the backbone background
traffic, CUBIC (BIC available) for the access testbed.
"""

from dataclasses import dataclass, replace

#: Calibrated effective inter-arrival means (see module docstring).
ACCESS_DOWN_INTERARRIVAL = 0.45
ACCESS_UP_INTERARRIVAL = 0.12
BACKBONE_INTERARRIVAL = 0.5

#: Per-session outstanding-transfer caps.
ACCESS_DOWN_CAP = 8
ACCESS_UP_CAP = 35
BACKBONE_CAP = 3


@dataclass(frozen=True)
class Scenario:
    """Background traffic for one experiment.

    ``*_sessions`` are Harpoon session counts ("short" workloads);
    ``*_flows`` are long-lived flow counts ("long" workloads).  A
    scenario may combine both directions (the bidirectional access
    rows).  ``*_interarrival`` are mean inter-transfer times in seconds;
    ``down_loss``/``up_loss`` are wire loss probabilities of the
    bottleneck directions (0.0 = the paper's clean wired testbeds; >0
    models a wireless-like lossy channel, see :func:`with_loss`).
    """

    name: str
    testbed: str  # "access" | "backbone"
    direction: str  # "down" | "up" | "bidir" | "none"
    kind: str  # "none" | "short" | "long"
    down_sessions: int = 0
    up_sessions: int = 0
    down_flows: int = 0
    up_flows: int = 0
    down_interarrival: float = ACCESS_DOWN_INTERARRIVAL
    up_interarrival: float = ACCESS_UP_INTERARRIVAL
    down_session_cap: int = ACCESS_DOWN_CAP
    up_session_cap: int = ACCESS_UP_CAP
    cc: str = "cubic"
    down_loss: float = 0.0
    up_loss: float = 0.0

    @property
    def label(self):
        """Row label as used in the paper's figures."""
        if self.kind == "none":
            return "noBG"
        return self.name

    @property
    def has_background(self):
        return self.kind != "none"

    @property
    def is_lossy(self):
        return self.down_loss > 0.0 or self.up_loss > 0.0

    def __str__(self):
        base = "%s/%s[%s]" % (self.testbed, self.name, self.direction)
        if self.is_lossy:
            base += "+loss(%g/%g)" % (self.down_loss, self.up_loss)
        return base


def with_loss(scenario, down_loss=0.0, up_loss=0.0):
    """Copy ``scenario`` with wireless-like wire loss on the bottleneck.

    ``down_loss``/``up_loss`` are per-packet loss probabilities in
    ``[0, 1)`` applied after serialization on each bottleneck direction
    (the "wireless-like" access variant of the extension sweeps).
    """
    return replace(scenario, down_loss=down_loss, up_loss=up_loss)


# ---------------------------------------------------------------------------
# Access testbed (Table 1, upper half).  Base workload shapes; the three
# direction rows of the table are derived by access_scenario().
# ---------------------------------------------------------------------------
_ACCESS_BASE = {
    "noBG": dict(kind="none"),
    "short-few": dict(kind="short", up_sessions=1, down_sessions=8),
    "short-many": dict(kind="short", up_sessions=1, down_sessions=16),
    "long-few": dict(kind="long", up_flows=1, down_flows=8),
    "long-many": dict(kind="long", up_flows=8, down_flows=64),
}

ACCESS_WORKLOAD_NAMES = ("noBG", "short-few", "short-many",
                         "long-few", "long-many")
ACCESS_DIRECTIONS = ("down", "up", "bidir")


def access_scenario(name, direction="down", cc="cubic"):
    """Build one access-testbed scenario row.

    ``direction`` selects which side of the base workload is active:
    ``"down"`` (downstream congestion only), ``"up"`` (upstream only) or
    ``"bidir"`` (both, the rows that triggered the bufferbloat debate).
    """
    try:
        base = dict(_ACCESS_BASE[name])
    except KeyError:
        raise ValueError("unknown access workload %r (have %s)"
                         % (name, sorted(_ACCESS_BASE))) from None
    kind = base.pop("kind")
    if kind == "none":
        return Scenario(name=name, testbed="access", direction="none",
                        kind="none", cc=cc)
    if direction not in ACCESS_DIRECTIONS:
        raise ValueError("direction must be one of %s" % (ACCESS_DIRECTIONS,))
    if direction == "down":
        base["up_sessions"] = 0
        base["up_flows"] = 0
    elif direction == "up":
        base["down_sessions"] = 0
        base["down_flows"] = 0
    return Scenario(name=name, testbed="access", direction=direction,
                    kind=kind, cc=cc, **{k: v for k, v in base.items()})


#: The full access catalog: noBG plus every (workload, direction) pair.
ACCESS_SCENARIOS = tuple(
    [access_scenario("noBG")]
    + [access_scenario(name, direction)
       for name in ACCESS_WORKLOAD_NAMES if name != "noBG"
       for direction in ACCESS_DIRECTIONS]
)


# ---------------------------------------------------------------------------
# Backbone testbed (Table 1, lower half).  All traffic flows downstream
# (servers -> clients); session counts follow the paper's 3 x N notation.
# ---------------------------------------------------------------------------
_BACKBONE_BASE = {
    "noBG": dict(kind="none"),
    "short-low": dict(kind="short", down_sessions=3 * 10),
    "short-medium": dict(kind="short", down_sessions=3 * 30),
    "short-high": dict(kind="short", down_sessions=3 * 60),
    "short-overload": dict(kind="short", down_sessions=3 * 256),
    "long": dict(kind="long", down_flows=3 * 256),
}

BACKBONE_WORKLOAD_NAMES = ("noBG", "short-low", "short-medium",
                           "short-high", "short-overload", "long")


def backbone_scenario(name, cc="reno"):
    """Build one backbone-testbed scenario row."""
    try:
        base = dict(_BACKBONE_BASE[name])
    except KeyError:
        raise ValueError("unknown backbone workload %r (have %s)"
                         % (name, sorted(_BACKBONE_BASE))) from None
    kind = base.pop("kind")
    if kind == "none":
        return Scenario(name=name, testbed="backbone", direction="none",
                        kind="none", cc=cc)
    return Scenario(
        name=name, testbed="backbone", direction="down", kind=kind, cc=cc,
        down_interarrival=BACKBONE_INTERARRIVAL,
        down_session_cap=BACKBONE_CAP,
        **{k: v for k, v in base.items()},
    )


#: The full backbone catalog in Table 1 order.
BACKBONE_SCENARIOS = tuple(
    backbone_scenario(name) for name in BACKBONE_WORKLOAD_NAMES
)
