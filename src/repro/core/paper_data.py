"""The paper's reported numbers, transcribed for side-by-side comparison.

Benchmarks print these next to the measured values so EXPERIMENTS.md can
record paper-vs-measured per artifact.  Keys follow the figure grids:
``(workload, buffer_packets)`` (plus a resolution for Figure 9).

Transcription notes
-------------------
* Figure 4a's per-cell values are ambiguous in the source text (the
  OCR interleaves the two sub-areas), so only its qualitative envelope
  is recorded; Figures 4b/4c transcribe cleanly.
* Figure 7a's "user listens"/"user talks" halves are transcribed
  column-by-column as printed.
"""

ACCESS_BUFFER_SIZES = (8, 16, 32, 64, 128, 256)
BACKBONE_BUFFER_SIZES = (8, 28, 749, 7490)

ACCESS_WORKLOAD_ROWS = ("noBG", "long-few", "long-many", "short-few",
                        "short-many")
BACKBONE_WORKLOAD_ROWS = ("noBG", "short-low", "short-medium", "short-high",
                          "short-overload", "long")


def _grid(rows, cols, column_major_values):
    """Build {(row, col): value} from column-major value lists."""
    table = {}
    index = 0
    for col in cols:
        for row in rows:
            table[(row, col)] = column_major_values[index]
            index += 1
    return table


# ---------------------------------------------------------------------------
# Table 1 (selected measured columns): {(workload, direction):
#   (up util %, down util %, up loss %, down loss %, concurrent flows)}
# ---------------------------------------------------------------------------
TABLE1_ACCESS = {
    ("short-few", "up"): (98.9, 0.3, 34.7, 0.0, 0.7),
    ("short-few", "bidir"): (95.0, 8.5, 58.6, 0.7, 15.2),
    ("short-few", "down"): (27.8, 44.1, 1.4, 3.0, 25.1),
    ("short-many", "up"): (98.9, 0.3, 33.1, 0.0, 0.7),
    ("short-many", "bidir"): (93.3, 10.7, 60.9, 1.3, 20.1),
    ("short-many", "down"): (53.8, 78.7, 4.0, 4.5, 23.5),
    ("long-few", "up"): (99.0, 0.2, 1.0, 0.0, 0.7),
    ("long-few", "bidir"): (71.9, 83.1, 41.7, 0.6, 12.6),
    ("long-few", "down"): (39.5, 99.9, 0.1, 0.5, 0.6),
    ("long-many", "up"): (98.9, 0.3, 14.4, 0.0, 0.7),
    ("long-many", "bidir"): (83.8, 61.8, 60.7, 0.2, 26.4),
    ("long-many", "down"): (68.5, 99.6, 0.03, 9.3, 4.9),
}

#: Backbone Table 1: {workload: (down util %, util sd, loss %, flows)}
TABLE1_BACKBONE = {
    "short-low": (16.5, 11.6, 0.0, 18),
    "short-medium": (49.5, 18.8, 0.0, 49),
    "short-high": (98.0, 6.5, 0.2, 206),
    "short-overload": (99.7, 2.2, 5.2, 2170),
    "long": (99.7, 0.1, 3.8, 675),
}

# ---------------------------------------------------------------------------
# Table 2: maximum queueing delays (ms) per buffer size.
# ---------------------------------------------------------------------------
TABLE2_ACCESS = {  # packets: (uplink ms, downlink ms)
    8: (98, 6), 16: (198, 12), 32: (395, 24),
    64: (788, 49), 128: (1583, 97), 256: (3167, 195),
}
TABLE2_BACKBONE = {8: 0.6, 28: 2.2, 749: 58.0, 7490: 580.0}

# ---------------------------------------------------------------------------
# Figure 4: mean queueing delay (ms).  Rows run long-few, long-many,
# short-few, short-many; "down"/"up" are the two heatmap sub-areas.
# ---------------------------------------------------------------------------
_FIG4_ROWS = ("long-few", "long-many", "short-few", "short-many")

FIG4_BIDIR_DOWNLINK = _grid(_FIG4_ROWS, ACCESS_BUFFER_SIZES, [
    1, 0, 0, 0,   2, 1, 0, 0,   7, 4, 0, 0,
    16, 14, 0, 0,   32, 46, 0, 0,   75, 120, 0, 0,
])
FIG4_BIDIR_UPLINK = _grid(_FIG4_ROWS, ACCESS_BUFFER_SIZES, [
    19, 58, 90, 88,   47, 128, 188, 185,   138, 293, 384, 380,
    412, 646, 774, 771,   851, 1399, 1545, 1538,   1609, 2857, 3066, 3023,
])
FIG4_UP_ONLY_UPLINK = _grid(_FIG4_ROWS, ACCESS_BUFFER_SIZES, [
    52, 96, 98, 91,   123, 184, 196, 192,   227, 348, 392, 391,
    450, 665, 788, 788,   870, 1282, 1572, 1573,   1858, 2448, 3083, 3044,
])
#: Figure 4a (downstream-only): qualitative envelope — downlink mean
#: delay stays under ~200 ms at every size; uplink stays near zero.
FIG4_DOWN_ONLY_DOWNLINK_MAX_MS = 200.0

# ---------------------------------------------------------------------------
# Figure 7: access VoIP median MOS.
# ---------------------------------------------------------------------------
FIG7A_LISTENS = _grid(ACCESS_WORKLOAD_ROWS, ACCESS_BUFFER_SIZES, [
    4.1, 3.9, 2.7, 3.8, 3.6,   4.1, 3.7, 2.7, 3.6, 3.3,
    4.2, 4.0, 2.7, 3.6, 3.4,   4.1, 3.9, 2.8, 3.5, 3.3,
    4.2, 3.7, 3.2, 3.6, 3.3,   4.2, 3.2, 2.9, 3.5, 3.1,
])
FIG7A_TALKS = _grid(ACCESS_WORKLOAD_ROWS, ACCESS_BUFFER_SIZES, [
    4.2, 4.1, 3.5, 4.0, 3.7,   4.2, 4.1, 3.2, 4.0, 3.4,
    4.2, 4.1, 3.5, 3.9, 3.4,   4.2, 4.1, 3.7, 4.0, 3.4,
    4.2, 4.2, 4.1, 4.0, 3.7,   4.2, 4.0, 3.8, 4.0, 3.8,
])
FIG7B_LISTENS = _grid(ACCESS_WORKLOAD_ROWS, ACCESS_BUFFER_SIZES, [
    4.1, 4.3, 4.4, 4.3, 4.4,   4.3, 4.2, 4.2, 4.3, 4.3,
    4.1, 4.0, 3.8, 4.1, 3.7,   4.1, 3.4, 3.0, 3.3, 3.6,
    4.2, 2.7, 2.4, 2.6, 2.7,   4.2, 2.3, 2.2, 2.3, 2.1,
])
FIG7B_TALKS = _grid(ACCESS_WORKLOAD_ROWS, ACCESS_BUFFER_SIZES, [
    4.2, 3.2, 2.6, 2.8, 2.7,   4.2, 3.0, 2.4, 2.4, 2.3,
    4.2, 2.7, 1.6, 1.3, 1.3,   4.2, 1.4, 1.2, 1.0, 1.0,
    4.2, 1.0, 1.0, 1.0, 1.0,   4.2, 1.0, 1.0, 1.0, 1.0,
])

# ---------------------------------------------------------------------------
# Figure 8: backbone VoIP median MOS.
# ---------------------------------------------------------------------------
FIG8 = _grid(BACKBONE_WORKLOAD_ROWS, BACKBONE_BUFFER_SIZES, [
    4.4, 4.4, 4.4, 3.5, 1.5, 2.8,   4.4, 4.4, 4.2, 3.5, 1.7, 2.7,
    4.4, 4.4, 4.3, 3.5, 1.5, 3.2,   4.4, 4.4, 4.2, 3.1, 1.2, 1.6,
])

# ---------------------------------------------------------------------------
# Figure 9: median SSIM.
# ---------------------------------------------------------------------------
FIG9A_SD = _grid(ACCESS_WORKLOAD_ROWS, ACCESS_BUFFER_SIZES, [
    1, 0.47, 0.41, 0.47, 0.44,   1, 0.47, 0.40, 0.48, 0.43,
    1, 0.47, 0.40, 0.48, 0.42,   1, 0.47, 0.41, 0.48, 0.41,
    1, 0.47, 0.42, 0.48, 0.45,   1, 0.47, 0.44, 0.48, 0.46,
])
FIG9A_HD = _grid(ACCESS_WORKLOAD_ROWS, ACCESS_BUFFER_SIZES, [
    1, 0.55, 0.46, 0.56, 0.53,   1, 0.56, 0.46, 0.56, 0.51,
    1, 0.55, 0.47, 0.56, 0.50,   1, 0.56, 0.45, 0.56, 0.48,
    1, 0.56, 0.47, 0.56, 0.48,   1, 0.56, 0.51, 0.57, 0.48,
])
FIG9B_SD = _grid(BACKBONE_WORKLOAD_ROWS, BACKBONE_BUFFER_SIZES, [
    1, 1, 0.95, 0.46, 0.40, 0.38,   1, 1, 0.95, 0.47, 0.40, 0.38,
    1, 1, 0.88, 0.48, 0.41, 0.40,   1, 1, 0.88, 0.49, 0.46, 0.48,
])
FIG9B_HD = _grid(BACKBONE_WORKLOAD_ROWS, BACKBONE_BUFFER_SIZES, [
    1, 0.99, 0.58, 0.52, 0.45, 0.44,   1, 0.99, 0.58, 0.53, 0.45, 0.44,
    1, 1, 0.59, 0.56, 0.46, 0.45,   1, 1, 0.59, 0.58, 0.54, 0.56,
])

# ---------------------------------------------------------------------------
# Figures 10/11: median page-load times (seconds).
# ---------------------------------------------------------------------------
FIG10A = _grid(ACCESS_WORKLOAD_ROWS, ACCESS_BUFFER_SIZES, [
    1.0, 0.8, 3.8, 0.8, 1.4,   0.6, 0.9, 3.7, 0.8, 1.3,
    0.6, 1.1, 3.4, 0.8, 1.1,   0.6, 1.4, 4.4, 0.7, 1.0,
    0.6, 2.1, 4.9, 0.6, 1.0,   0.6, 3.1, 5.8, 0.6, 1.2,
])
FIG10B = _grid(ACCESS_WORKLOAD_ROWS, ACCESS_BUFFER_SIZES, [
    1.0, 1.3, 8.2, 4.0, 7.0,   0.6, 2.1, 6.2, 7.1, 8.3,
    0.6, 3.1, 3.9, 10.1, 11.4,   0.6, 5.1, 7.4, 13.0, 14.0,
    0.6, 8.9, 14.6, 16.6, 16.1,   0.6, 20.5, 24.4, 18.7, 19.2,
])
FIG11 = _grid(BACKBONE_WORKLOAD_ROWS, BACKBONE_BUFFER_SIZES, [
    0.9, 0.8, 0.9, 1.3, 3.4, 5.0,   0.8, 0.8, 1.0, 1.3, 3.5, 4.8,
    0.8, 0.8, 0.8, 1.5, 4.5, 5.9,   0.8, 0.8, 0.8, 1.6, 9.5, 9.2,
])

# ---------------------------------------------------------------------------
# Digitized-grid index: sweep name -> {series label: {(row, col): value}}.
#
# This index feeds the SVG report figures' per-cell paper overlays
# (repro.report.figures); the series labels match the reproduced result
# columns drawn next to them (VoIP call directions, video resolutions,
# web PLT).  The fidelity *checks* are declared separately — and more
# richly, with thresholds, key mappings and Table-1/fig4-down special
# cases this simple index cannot express — in
# repro.report.fidelity.CHECKS; when transcribing new paper data, add
# it here for the overlay AND declare a FigureCheck for the verdict.
# ---------------------------------------------------------------------------
DIGITIZED = {
    "fig4-up": {"uplink": FIG4_UP_ONLY_UPLINK},
    "fig7a": {"listens": FIG7A_LISTENS, "talks": FIG7A_TALKS},
    "fig7b": {"listens": FIG7B_LISTENS, "talks": FIG7B_TALKS},
    "fig8": {"listens": FIG8},
    "fig9a": {"SD": FIG9A_SD, "HD": FIG9A_HD},
    "fig9b": {"SD": FIG9B_SD, "HD": FIG9B_HD},
    "fig10a": {"median PLT": FIG10A},
    "fig10b": {"median PLT": FIG10B},
    "fig11": {"median PLT": FIG11},
}

#: Buffer sizes the paper's discussion highlights (§6–§7): the uplink
#: BDP, the downlink BDP and the bufferbloat extreme on access; tiny /
#: Stanford / BDP / 10x BDP on the backbone.  Fidelity trend checks are
#: anchored at the smallest/largest highlighted size of each testbed.
HIGHLIGHT_BUFFERS = {
    "access": (8, 64, 256),
    "backbone": (8, 749, 7490),
}


# ---------------------------------------------------------------------------
# Section 3 (Figure 1) headline statistics.
# ---------------------------------------------------------------------------
WILD_STATS = {
    "qd_below_100ms": 0.80,
    "qd_above_500ms": 0.028,
    "qd_above_1s": 0.01,
    "near_qd_below_100ms": 0.95,
    "near_qd_below_1s": 0.999,
    "adsl_share": 0.70,
    "cable_share": 0.014,
    "ftth_share": 0.0002,
}
