"""Single-cell experiment runners.

A "cell" is one (scenario, buffer size) combination — one cell of the
paper's heatmaps.  :func:`run_qos_cell` measures the background traffic
itself (Section 6 / Table 1 / Figures 4-5); the per-application QoE
runners live next to their applications and reuse the same build/warm-up
machinery via :func:`build_network`.
"""

from dataclasses import dataclass, field

from repro.core.workloads import apply_workload
from repro.sim.engine import Simulator
from repro.sim.stats import UtilizationSampler, five_number_summary
from repro.sim.topology import AccessNetwork, BackboneNetwork

#: Default measurement windows (seconds, simulated).  The paper measures
#: for two hours; shapes stabilize within tens of seconds in simulation.
DEFAULT_WARMUP = 5.0
DEFAULT_DURATION = 30.0


def build_network(scenario, buffer_packets, sim=None, queue_factory=None):
    """Build the testbed network a scenario calls for.

    ``buffer_packets`` is either a single size applied to both bottleneck
    directions (the paper's sweeps) or a ``(down, up)`` tuple — Table 1's
    QoS baseline uses per-direction BDP buffers (64 down, 8 up).
    """
    if sim is None:
        sim = Simulator()
    if isinstance(buffer_packets, tuple):
        down_packets, up_packets = buffer_packets
    else:
        down_packets = up_packets = buffer_packets
    if scenario.testbed == "access":
        network = AccessNetwork(
            sim,
            down_buffer_packets=down_packets,
            up_buffer_packets=up_packets,
            queue_factory=queue_factory,
            down_loss=scenario.down_loss,
            up_loss=scenario.up_loss,
        )
    elif scenario.testbed == "backbone":
        network = BackboneNetwork(
            sim, buffer_packets=down_packets, queue_factory=queue_factory,
            down_loss=scenario.down_loss, up_loss=scenario.up_loss)
    else:
        raise ValueError("unknown testbed %r" % (scenario.testbed,))
    return sim, network


@dataclass
class QosReport:
    """QoS measurements for one cell (Table 1 / Figures 4-5 content)."""

    scenario: str
    buffer_packets: int
    duration: float
    down_utilization: float = 0.0
    up_utilization: float = 0.0
    down_utilization_sd: float = 0.0
    up_utilization_sd: float = 0.0
    down_loss: float = 0.0
    up_loss: float = 0.0
    down_mean_delay: float = 0.0
    up_mean_delay: float = 0.0
    down_max_delay: float = 0.0
    up_max_delay: float = 0.0
    concurrent_flows: float = 0.0
    completed_transfers: int = 0
    down_utilization_samples: list = field(default_factory=list)
    up_utilization_samples: list = field(default_factory=list)

    def down_utilization_boxplot(self):
        """Five-number summary of per-second downlink utilization."""
        return five_number_summary(self.down_utilization_samples)

    def up_utilization_boxplot(self):
        """Five-number summary of per-second uplink utilization."""
        return five_number_summary(self.up_utilization_samples)


def run_qos_cell(scenario, buffer_packets, warmup=DEFAULT_WARMUP,
                 duration=DEFAULT_DURATION, seed=0, queue_factory=None):
    """Run background traffic alone and measure the bottleneck QoS.

    Returns a :class:`QosReport` with utilization (mean and per-second
    samples), loss and queueing delay for both bottleneck directions.
    """
    import numpy as np

    sim, network = build_network(scenario, buffer_packets,
                                 queue_factory=queue_factory)
    workload = apply_workload(sim, network, scenario, seed=seed)
    sim.run(until=warmup)
    network.reset_measurements()
    workload.reset_measurements()
    down_sampler = UtilizationSampler(sim, network.down_bottleneck, 1.0)
    up_sampler = UtilizationSampler(sim, network.up_bottleneck, 1.0)
    down_sampler.start()
    up_sampler.start()
    sim.run(until=warmup + duration)
    down_sampler.stop()
    up_sampler.stop()

    report = QosReport(
        scenario=str(scenario),
        buffer_packets=buffer_packets,
        duration=duration,
        down_utilization=network.down_bottleneck.utilization(),
        up_utilization=network.up_bottleneck.utilization(),
        down_loss=network.down_bottleneck.queue.stats.loss_rate,
        up_loss=network.up_bottleneck.queue.stats.loss_rate,
        down_mean_delay=network.down_bottleneck.queue.stats.mean_delay,
        up_mean_delay=network.up_bottleneck.queue.stats.mean_delay,
        down_max_delay=network.down_bottleneck.queue.stats.delay_max,
        up_max_delay=network.up_bottleneck.queue.stats.delay_max,
        concurrent_flows=workload.mean_concurrent_flows(),
        completed_transfers=workload.completed_transfers(),
        down_utilization_samples=list(down_sampler.samples),
        up_utilization_samples=list(up_sampler.samples),
    )
    if report.down_utilization_samples:
        report.down_utilization_sd = float(np.std(report.down_utilization_samples))
    if report.up_utilization_samples:
        report.up_utilization_sd = float(np.std(report.up_utilization_samples))
    workload.stop()
    return report
