"""Video QoE grids: Figure 9 (access 9a, backbone 9b)."""

import numpy as np

from repro.apps.video import VideoStream, clip_frames
from repro.core.experiment import build_network
from repro.core.registry import ScenarioSpec, adhoc_sweep
from repro.core.study import _deprecated_grid, _run_mapping
from repro.core.workloads import apply_workload
from repro.media.codec import decode
from repro.qoe.psnr import psnr_sequence
from repro.qoe.scales import heat_marker_from_mos
from repro.qoe.ssim import ssim_sequence
from repro.qoe.video import ssim_to_mos
from repro.viz.heatmap import render_grid

FIG9A_WORKLOADS = ("noBG", "long-few", "long-many", "short-few", "short-many")
FIG9B_WORKLOADS = ("noBG", "short-low", "short-medium", "short-high",
                   "short-overload", "long")

VIDEO_PORT = 6200


def run_video_cell(scenario, buffer_packets, resolution="SD", clip="C",
                   duration=8.0, warmup=5.0, seed=0, arq=False,
                   queue_factory=None):
    """Stream one clip through a loaded cell and score it.

    ``warmup``/``duration`` are simulated seconds.  Returns a dict with
    ``ssim`` (in [0, 1]), ``psnr`` (dB), ``mos`` and ``packet_loss`` /
    ``slice_loss`` (fractions).  IPTV flows run server -> client (the
    paper streams only downstream).
    """
    sim, network = build_network(scenario, buffer_packets,
                                 queue_factory=queue_factory)
    workload = apply_workload(sim, network, scenario, seed=seed)
    sim.run(until=warmup)
    stream = VideoStream(sim, network.media_server, network.media_client,
                         port=VIDEO_PORT, clip=clip, resolution=resolution,
                         duration=duration, arq=arq)
    stream.start()
    sim.run(until=sim.now + stream.end_time + 1.0)
    received = stream.finish()
    workload.stop()

    reference = clip_frames(clip, resolution, stream.n_frames)
    degraded = decode(reference, received)
    ssim_value = ssim_sequence(reference, degraded)
    return {
        "ssim": ssim_value,
        "psnr": psnr_sequence(reference, degraded),
        "mos": ssim_to_mos(ssim_value),
        "packet_loss": stream.packet_loss_rate,
        "slice_loss": float(1.0 - received.mean()),
    }


def fig9_grid(testbed, buffers, workloads=None, resolutions=("SD", "HD"),
              clip="C", duration=8.0, warmup=5.0, seed=0, runner=None):
    """Figure 9: {(workload, packets, resolution): cell result}.

    ``testbed`` is ``"access"`` (9a, download activity) or ``"backbone"``
    (9b).

    .. deprecated:: use :func:`repro.api.run_sweep`.
    """
    _deprecated_grid("fig9_grid", "repro.api.run_sweep(\"fig9a\"/\"fig9b\")")
    if workloads is None:
        workloads = FIG9A_WORKLOADS if testbed == "access" else FIG9B_WORKLOADS
    spec = adhoc_sweep(
        "adhoc-fig9", "video",
        scenarios=[ScenarioSpec(testbed, w, "down") for w in workloads],
        buffers=buffers, seed=seed, warmup=warmup, duration=duration,
        params=(("clip", clip),),
        axes=(("resolution", tuple(resolutions)),))
    return _run_mapping(spec, runner)


def render_fig9(results, testbed, buffers, workloads=None,
                resolutions=("SD", "HD")):
    """ASCII Figure 9: one block per resolution, SSIM value + MOS marker."""
    if workloads is None:
        workloads = FIG9A_WORKLOADS if testbed == "access" else FIG9B_WORKLOADS
    blocks = []
    for resolution in resolutions:
        def fn(workload, packets, resolution=resolution):
            cell = results[(workload, packets, resolution)]
            return "%.2f%s" % (cell["ssim"], heat_marker_from_mos(cell["mos"]))

        blocks.append(render_grid(
            "Figure 9 (%s, %s): median SSIM (marker = MOS class)"
            % (testbed, resolution),
            list(workloads), list(buffers), fn, col_header="workload\\buf"))
    return "\n\n".join(blocks)


def median_over_clips(scenario, buffer_packets, resolution, clips=("A", "B", "C"),
                      **kwargs):
    """Median scores across the three content classes (§8.2's comparison)."""
    cells = [run_video_cell(scenario, buffer_packets, resolution=resolution,
                            clip=clip, **kwargs) for clip in clips]
    return {
        "ssim": float(np.median([c["ssim"] for c in cells])),
        "mos": float(np.median([c["mos"] for c in cells])),
        "psnr": float(np.median([c["psnr"] for c in cells])),
    }
