"""VoIP QoE grids: Figures 7 (access) and 8 (backbone).

One cell = one (workload, buffer size) pair.  Per cell we place calls in
both directions between the multimedia hosts:

* "user talks"  — client -> server, crossing the *uplink* buffer;
* "user listens" — server -> client, crossing the *downlink* buffer.

and report the median combined MOS per direction, exactly the two
heatmap halves of Figure 7.  The backbone (Figure 8) carries
unidirectional audio server -> client.
"""

import numpy as np

from repro.core.experiment import build_network
from repro.core.registry import ScenarioSpec, adhoc_sweep
from repro.core.study import _deprecated_grid, _run_mapping
from repro.core.workloads import apply_workload
from repro.apps.voip import VoipCall
from repro.qoe.scales import heat_marker_from_mos
from repro.qoe.voip import score_call
from repro.viz.heatmap import render_grid

#: Figure 7 row order.
FIG7_WORKLOADS = ("noBG", "long-few", "long-many", "short-few", "short-many")
FIG8_WORKLOADS = ("noBG", "short-low", "short-medium", "short-high",
                  "short-overload", "long")

#: Gap between the end of one call and the start of the next.
CALL_GAP = 0.5

TALK_PORT = 6000
LISTEN_PORT = 6002


def run_voip_cell(scenario, buffer_packets, calls=2, warmup=5.0, seed=0,
                  duration=8.0, directions=("talks", "listens"),
                  queue_factory=None):
    """Run ``calls`` sequential calls per direction through one cell.

    ``warmup`` and ``duration`` (per call) are simulated seconds;
    ``buffer_packets`` is a packet count or ``(down, up)`` pair.
    Returns ``{direction: [VoipScore, ...]}``.
    """
    sim, network = build_network(scenario, buffer_packets,
                                 queue_factory=queue_factory)
    workload = apply_workload(sim, network, scenario, seed=seed)
    sim.run(until=warmup)

    scores = {direction: [] for direction in directions}
    for call_index in range(calls):
        live = {}
        for direction in directions:
            if direction == "talks":
                call = VoipCall(sim, network.media_client,
                                network.media_server,
                                port=TALK_PORT + call_index,
                                sample_seed=1000 + call_index,
                                duration=duration)
            else:
                call = VoipCall(sim, network.media_server,
                                network.media_client,
                                port=LISTEN_PORT + call_index,
                                sample_seed=1000 + call_index,
                                duration=duration)
            live[direction] = call.start()
        # Let the calls play out plus slack for queued tail packets.
        sim.run(until=sim.now + duration + 2.0)
        finished = {direction: call.finish()
                    for direction, call in live.items()}
        # z2 reflects conversational dynamics: both directions share the
        # worse mouth-to-ear delay (an inflated uplink hurts listening too).
        conversational_delay = max(
            playout.mouth_to_ear_delay for playout, __ in finished.values())
        for direction, (playout, degraded) in finished.items():
            scores[direction].append(
                score_call(live[direction].clean_signal, degraded, playout,
                           conversational_delay=conversational_delay))
        sim.run(until=sim.now + CALL_GAP)
    workload.stop()
    return scores


def median_mos(score_list):
    """Median combined MOS across a cell's calls."""
    if not score_list:
        return 0.0
    return float(np.median([score.mos for score in score_list]))


def fig7_grid(activity, buffers, workloads=FIG7_WORKLOADS, calls=2,
              warmup=5.0, duration=8.0, seed=0, runner=None):
    """Figure 7: access VoIP MOS per (workload, buffer).

    ``activity`` is the background congestion direction: ``"down"``
    (Figure 7a), ``"up"`` (Figure 7b) or ``"bidir"`` (discussed in
    §7.2); ``warmup``/``duration`` are simulated seconds, ``buffers``
    packet counts.  Returns
    ``{(workload, packets): {"talks": mos, "listens": mos, ...}}``.

    .. deprecated:: use :func:`repro.api.run_sweep`.
    """
    _deprecated_grid("fig7_grid", "repro.api.run_sweep(\"fig7a\"/\"fig7b\")")
    spec = adhoc_sweep(
        "adhoc-fig7", "voip",
        scenarios=[ScenarioSpec("access", w, activity) for w in workloads],
        buffers=buffers, seed=seed, warmup=warmup, duration=duration,
        params=(("calls", calls), ("directions", ("talks", "listens"))))
    return _run_mapping(spec, runner)


def fig8_grid(buffers, workloads=FIG8_WORKLOADS, calls=2, warmup=5.0,
              duration=8.0, seed=0, runner=None):
    """Figure 8: backbone VoIP MOS (unidirectional, server -> client).

    .. deprecated:: use :func:`repro.api.run_sweep`.
    """
    _deprecated_grid("fig8_grid", "repro.api.run_sweep(\"fig8\")")
    spec = adhoc_sweep(
        "adhoc-fig8", "voip",
        scenarios=[ScenarioSpec("backbone", w) for w in workloads],
        buffers=buffers, seed=seed, warmup=warmup, duration=duration,
        params=(("calls", calls), ("directions", ("listens",))))
    return _run_mapping(spec, runner)


def render_fig7(results, activity, buffers, workloads=FIG7_WORKLOADS):
    """ASCII Figure 7: two blocks (user talks / user listens)."""
    def cell(direction):
        def fn(workload, packets):
            mos = results[(workload, packets)][direction]
            return "%.1f%s" % (mos, heat_marker_from_mos(mos))
        return fn

    talks = render_grid(
        "Figure 7 (%s activity): median MOS, user TALKS" % activity,
        list(workloads), list(buffers), cell("talks"),
        col_header="workload\\buf")
    listens = render_grid(
        "Figure 7 (%s activity): median MOS, user LISTENS" % activity,
        list(workloads), list(buffers), cell("listens"),
        col_header="workload\\buf")
    return talks + "\n\n" + listens


def render_fig8(results, buffers, workloads=FIG8_WORKLOADS):
    """ASCII Figure 8."""
    def fn(workload, packets):
        mos = results[(workload, packets)]["listens"]
        return "%.1f%s" % (mos, heat_marker_from_mos(mos))

    return render_grid(
        "Figure 8: backbone median MOS (server -> client audio)",
        list(workloads), list(buffers), fn, col_header="workload\\buf")
