"""Attach a :class:`repro.core.scenarios.Scenario` to a built network."""

from repro.apps.bulk import BulkTraffic
from repro.apps.harpoon import HarpoonGenerator
from repro.util.rng import RngRegistry

#: Ports used by the background traffic (the applications under test use
#: their own, so nothing collides).
HARPOON_DOWN_PORT = 8080
HARPOON_UP_PORT = 8081
BULK_DOWN_PORT = 5001
BULK_UP_PORT = 5002


class WorkloadHandle:
    """Running background traffic: the generators plus their statistics."""

    def __init__(self, generators):
        self.generators = list(generators)

    def stop(self):
        """Stop all generators and abort their connections."""
        for generator in self.generators:
            generator.stop()

    def reset_measurements(self):
        """Clear windowed statistics after warm-up."""
        for generator in self.generators:
            stats = getattr(generator, "stats", None)
            if stats is not None:
                stats.reset_measurements()

    def mean_concurrent_flows(self):
        """Mean simultaneously-active transfers across all Harpoon parts,
        plus the constant count of long-lived flows."""
        total = 0.0
        for generator in self.generators:
            if isinstance(generator, HarpoonGenerator):
                total += generator.stats.mean_concurrent_flows
            elif isinstance(generator, BulkTraffic):
                total += generator.count
        return total

    def completed_transfers(self):
        total = 0
        for generator in self.generators:
            if isinstance(generator, HarpoonGenerator):
                total += generator.stats.completed
        return total


def apply_workload(sim, network, scenario, seed=0):
    """Create and start the background traffic described by ``scenario``.

    Returns a :class:`WorkloadHandle`.  All randomness derives from
    ``seed`` through named streams, so a (scenario, seed) pair is fully
    reproducible.
    """
    registry = RngRegistry(seed)
    generators = []

    if scenario.down_sessions > 0:
        generator = HarpoonGenerator(
            sim,
            network.traffic_servers(),
            network.traffic_clients(),
            sessions=scenario.down_sessions,
            direction="down",
            interarrival_mean=scenario.down_interarrival,
            session_cap=scenario.down_session_cap,
            rng=registry.stream("harpoon-down"),
            cc=scenario.cc,
            port=HARPOON_DOWN_PORT,
        )
        generators.append(generator)
    if scenario.up_sessions > 0:
        generator = HarpoonGenerator(
            sim,
            network.traffic_servers(),
            network.traffic_clients(),
            sessions=scenario.up_sessions,
            direction="up",
            interarrival_mean=scenario.up_interarrival,
            session_cap=scenario.up_session_cap,
            rng=registry.stream("harpoon-up"),
            cc=scenario.cc,
            port=HARPOON_UP_PORT,
        )
        generators.append(generator)
    if scenario.down_flows > 0:
        generator = BulkTraffic(
            sim,
            network.traffic_servers(),
            network.traffic_clients(),
            count=scenario.down_flows,
            direction="down",
            cc=scenario.cc,
            port=BULK_DOWN_PORT,
        )
        generators.append(generator)
    if scenario.up_flows > 0:
        generator = BulkTraffic(
            sim,
            network.traffic_servers(),
            network.traffic_clients(),
            count=scenario.up_flows,
            direction="up",
            cc=scenario.cc,
            port=BULK_UP_PORT,
        )
        generators.append(generator)

    for generator in generators:
        generator.start()
    return WorkloadHandle(generators)
