"""WebQoE grids: Figures 10 (access) and 11 (backbone)."""

import numpy as np

from repro.apps.web import PageFetch, WebServer
from repro.core.experiment import build_network
from repro.core.registry import ScenarioSpec, adhoc_sweep
from repro.core.study import _deprecated_grid, _run_mapping
from repro.core.workloads import apply_workload
from repro.qoe.scales import heat_marker_from_mos
from repro.qoe.web import g1030_mos, min_plt_for
from repro.viz.heatmap import render_grid

FIG10_WORKLOADS = ("noBG", "long-few", "long-many", "short-few", "short-many")
FIG11_WORKLOADS = ("noBG", "short-low", "short-medium", "short-high",
                   "short-overload", "long")

#: Think time between consecutive page fetches.
FETCH_GAP = 0.25

#: Give-up time per fetch (PLTs beyond this are "bad" anyway).
FETCH_TIMEOUT = 30.0


def run_web_cell(scenario, buffer_packets, fetches=10, warmup=5.0, seed=0,
                 queue_factory=None):
    """Fetch the page repeatedly through one cell.

    ``warmup`` is simulated seconds.  Returns a dict with the PLT list
    (seconds), median/80th-percentile PLT and median MOS (scored with
    the testbed's G.1030 anchor).  Fetches that exceed ``FETCH_TIMEOUT``
    count with that ceiling, like an impatient user.
    """
    sim, network = build_network(scenario, buffer_packets,
                                 queue_factory=queue_factory)
    workload = apply_workload(sim, network, scenario, seed=seed)
    server = WebServer(sim, network.media_server, cc=scenario.cc)
    sim.run(until=warmup)

    plts = []
    for __ in range(fetches):
        fetch = PageFetch(sim, network.media_client,
                          network.media_server.addr, cc=scenario.cc)
        fetch.start()
        deadline = sim.now + FETCH_TIMEOUT
        # Run until this fetch finishes or times out.
        while sim.now < deadline and fetch.plt is None and not fetch.failed:
            sim.run(until=min(deadline, sim.now + 0.25))
        plts.append(fetch.plt if fetch.plt is not None else FETCH_TIMEOUT)
        if fetch.plt is None:
            fetch.abort()
        sim.run(until=sim.now + FETCH_GAP)
    workload.stop()
    server.close()

    min_plt = min_plt_for(scenario.testbed)
    median_plt = float(np.median(plts))
    return {
        "plts": plts,
        "median_plt": median_plt,
        "mos": g1030_mos(median_plt, min_plt=min_plt),
        "p80_plt": float(np.percentile(plts, 80)),
    }


def fig10_grid(activity, buffers, workloads=FIG10_WORKLOADS, fetches=10,
               warmup=5.0, seed=0, runner=None):
    """Figure 10: access WebQoE per (workload, buffer).

    ``activity`` is ``"down"`` (10a), ``"up"`` (10b) or ``"bidir"``.

    .. deprecated:: use :func:`repro.api.run_sweep`.
    """
    _deprecated_grid("fig10_grid", "repro.api.run_sweep(\"fig10a\"/\"fig10b\")")
    spec = adhoc_sweep(
        "adhoc-fig10", "web",
        scenarios=[ScenarioSpec("access", w, activity) for w in workloads],
        buffers=buffers, seed=seed, warmup=warmup, duration=0.0,
        params=(("fetches", fetches),))
    return _run_mapping(spec, runner)


def fig11_grid(buffers, workloads=FIG11_WORKLOADS, fetches=10, warmup=5.0,
               seed=0, runner=None):
    """Figure 11: backbone WebQoE.

    .. deprecated:: use :func:`repro.api.run_sweep`.
    """
    _deprecated_grid("fig11_grid", "repro.api.run_sweep(\"fig11\")")
    spec = adhoc_sweep(
        "adhoc-fig11", "web",
        scenarios=[ScenarioSpec("backbone", w) for w in workloads],
        buffers=buffers, seed=seed, warmup=warmup, duration=0.0,
        params=(("fetches", fetches),))
    return _run_mapping(spec, runner)


def render_fig10(results, activity, buffers, workloads=FIG10_WORKLOADS,
                 title="Figure 10"):
    """ASCII Figures 10/11: median PLT with a MOS marker per cell."""
    def fn(workload, packets):
        cell = results[(workload, packets)]
        return "%.1fs%s" % (cell["median_plt"],
                            heat_marker_from_mos(cell["mos"]))

    return render_grid(
        "%s (%s): median page load time (marker = MOS class)"
        % (title, activity),
        list(workloads), list(buffers), fn, col_header="workload\\buf")
