"""Grid sweeps for the QoS part of the study (Figures 4-5, Tables 1-2).

Each function declares one paper artifact's experiment grid through the
sweep registry (:mod:`repro.core.registry`) and routes it through a
:class:`repro.runner.grid.GridRunner` (parallel, cached); rendering
helpers turn the results into the ASCII equivalents of the paper's
figures.  Pass ``runner=`` to control workers/caching; the default
runner reads the ``REPRO_WORKERS`` / ``REPRO_CACHE`` env knobs.

Units: ``warmup`` and ``duration`` are simulated seconds; buffer sizes
are packets; utilizations and loss rates are fractions in ``[0, 1]``;
queueing delays are seconds.

.. deprecated::
    The dict-returning grid functions (:func:`fig4_delay_grid`,
    :func:`fig5_utilization`, :func:`table1_rows`) are shims over
    :func:`repro.api.run_sweep` and will be removed; call the facade and
    work with its typed :class:`repro.results.set.ResultSet` instead.
    The renderers and row assemblers here are *not* deprecated.
"""

import warnings

from repro.core.buffers import (
    ACCESS_BUFFERS,
    access_buffer_delays,
    backbone_buffer_delays,
)
from repro.core.registry import ScenarioSpec, adhoc_sweep, resolve_scale
from repro.qoe.scales import heat_marker_from_delay
from repro.viz.heatmap import render_grid, render_table

#: Workload rows of Figure 4 (y axis order as in the paper).
FIG4_WORKLOADS = ("long-few", "long-many", "short-few", "short-many")


def scale_factor(default=1.0):
    """Read the global experiment scale knob (``REPRO_SCALE`` env var)."""
    return resolve_scale(default)


def buffer_sizes(buffers):
    """Normalize a buffer axis: `BufferConfig`s or plain packet counts."""
    return [getattr(config, "packets", config) for config in buffers]


def _deprecated_grid(name, replacement):
    """Warn that shim ``name`` is deprecated, naming its replacement.

    ``replacement`` is the concrete ``repro.api`` call (e.g.
    ``'repro.api.run_sweep("fig5")'``) so callers can migrate without
    hunting through the registry for the sweep name.
    """
    warnings.warn(
        "%s() is deprecated: use %s and the returned ResultSet "
        "(.to_mapping() gives this dict shape)" % (name, replacement),
        DeprecationWarning, stacklevel=3)


def _run_mapping(spec, runner):
    """Run an ad-hoc spec through the facade; legacy dict shape back."""
    from repro import api

    return api.run_sweep(spec, scale=1.0, runner=runner).to_mapping()


def fig4_delay_grid(direction, buffers=None, workloads=FIG4_WORKLOADS,
                    warmup=5.0, duration=20.0, seed=0, runner=None):
    """Figure 4: mean queueing delay per (workload, buffer size).

    ``direction`` is the congestion direction: ``"down"``, ``"bidir"``
    or ``"up"`` (the paper's three heatmaps); ``warmup``/``duration``
    are simulated seconds.  Returns ``{(workload, packets): QosReport}``.

    .. deprecated:: use :func:`repro.api.run_sweep`.
    """
    _deprecated_grid("fig4_delay_grid",
                     "repro.api.run_sweep(\"fig4-up\"/\"fig4-down\")")
    spec = adhoc_sweep(
        "adhoc-fig4", "qos",
        scenarios=[ScenarioSpec("access", w, direction) for w in workloads],
        buffers=buffer_sizes(buffers or ACCESS_BUFFERS),
        seed=seed, warmup=warmup, duration=duration)
    return _run_mapping(spec, runner)


def render_fig4(results, direction, buffers=None, workloads=FIG4_WORKLOADS):
    """ASCII version of one Figure 4 heatmap (uplink and downlink blocks).

    Cells show the mean queueing delay in ms with a G.114 marker
    (``+`` acceptable, ``o`` problematic, ``!`` bad).
    """
    sizes = buffer_sizes(buffers or ACCESS_BUFFERS)

    def cell(side):
        def fn(workload, packets):
            report = results[(workload, packets)]
            delay = (report.up_mean_delay if side == "up"
                     else report.down_mean_delay)
            return "%.0f%s" % (delay * 1000.0, heat_marker_from_delay(delay))
        return fn

    up = render_grid(
        "Figure 4 (%s): mean UPLINK queueing delay [ms]" % direction,
        list(workloads), sizes, cell("up"), col_header="workload\\buf")
    down = render_grid(
        "Figure 4 (%s): mean DOWNLINK queueing delay [ms]" % direction,
        list(workloads), sizes, cell("down"), col_header="workload\\buf")
    return up + "\n\n" + down


def fig5_utilization(buffers=None, warmup=5.0, duration=20.0, seed=0,
                     runner=None):
    """Figure 5: per-second link utilization for the bidirectional
    long-many workload (8 uplink / 64 downlink long flows) per buffer.

    Returns ``{packets: QosReport}`` (reports carry the per-second
    samples for the boxplots).

    .. deprecated:: use :func:`repro.api.run_sweep`.
    """
    _deprecated_grid("fig5_utilization", "repro.api.run_sweep(\"fig5\")")
    spec = adhoc_sweep(
        "adhoc-fig5", "qos",
        scenarios=[ScenarioSpec("access", "long-many", "bidir")],
        buffers=buffer_sizes(buffers or ACCESS_BUFFERS),
        seed=seed, warmup=warmup, duration=duration)
    results = _run_mapping(spec, runner)
    return {packets: report for (__, packets), report in results.items()}


def render_fig5(results):
    """ASCII boxplot table of Figure 5 (``{packets: QosReport}``)."""
    rows = []
    for packets in sorted(results):
        report = results[packets]
        for side, box in (("down", report.down_utilization_boxplot()),
                          ("up", report.up_utilization_boxplot())):
            rows.append((
                packets, side,
                "%.0f%%" % (box[0] * 100), "%.0f%%" % (box[1] * 100),
                "%.0f%%" % (box[2] * 100), "%.0f%%" % (box[3] * 100),
                "%.0f%%" % (box[4] * 100),
            ))
    return render_table(
        "Figure 5: link utilization, bidirectional long workload (8 up/64 down)",
        ("buffer", "link", "min", "q1", "median", "q3", "max"), rows)


def table1_specs(testbed, include_overload=True, workloads=None):
    """The :class:`ScenarioSpec` rows of one Table 1 half.

    ``workloads`` optionally restricts the sweep: a list of
    ``(name, direction)`` pairs for the access testbed, or a list of
    names for the backbone.
    """
    if testbed == "access":
        if workloads is None:
            workloads = [(name, direction)
                         for name in ("short-few", "short-many",
                                      "long-few", "long-many")
                         for direction in ("up", "bidir", "down")]
        return [ScenarioSpec("access", name, direction,
                             label="%s/%s" % (name, direction))
                for name, direction in workloads]
    if workloads is None:
        workloads = ["short-low", "short-medium", "short-high", "long"]
        if include_overload:
            workloads.insert(3, "short-overload")
    return [ScenarioSpec("backbone", name) for name in workloads]


def table1_rows_for(specs, reports):
    """Assemble Table 1 row dicts from scenario specs and their reports.

    ``specs``/``reports`` are aligned lists (one :class:`QosReport` per
    :class:`ScenarioSpec`); utilizations and losses are fractions.
    """
    rows = []
    for scenario_spec, report in zip(specs, reports):
        scenario = scenario_spec.build()
        rows.append({
            "workload": scenario.name,
            "direction": scenario.direction,
            "up_util": report.up_utilization,
            "down_util": report.down_utilization,
            "up_util_sd": report.up_utilization_sd,
            "down_util_sd": report.down_utilization_sd,
            "up_loss": report.up_loss,
            "down_loss": report.down_loss,
            "concurrent": report.concurrent_flows,
        })
    return rows


def table1_rows(testbed, warmup=5.0, duration=20.0, seed=0,
                include_overload=True, workloads=None, runner=None):
    """Measure Table 1's utilization/loss columns at BDP buffers.

    Returns a list of dicts, one per (workload, direction) row; see
    :func:`table1_specs` for the ``workloads`` format.  ``warmup`` and
    ``duration`` are simulated seconds.

    .. deprecated:: use :func:`repro.api.run_sweep`.
    """
    _deprecated_grid("table1_rows",
                     "repro.api.run_sweep(\"table1-access\"/\"table1-backbone\")")
    specs = table1_specs(testbed, include_overload=include_overload,
                         workloads=workloads)
    # Per-direction BDP buffers, as in the paper: (64 down, 8 up) on the
    # access testbed, 749 packets on the backbone.
    buffer_packets = (64, 8) if testbed == "access" else 749
    sweep = adhoc_sweep("adhoc-table1-%s" % testbed, "qos",
                        scenarios=specs, buffers=[buffer_packets],
                        seed=seed, warmup=warmup, duration=duration)
    results = _run_mapping(sweep, runner)
    return table1_rows_for(specs, list(results.values()))


def render_table1(rows, testbed):
    """ASCII version of Table 1's measured columns."""
    out = []
    for row in rows:
        out.append((
            row["workload"], row["direction"],
            "%.1f" % (row["up_util"] * 100),
            "%.1f" % (row["down_util"] * 100),
            "%.1f" % (row["up_util_sd"] * 100),
            "%.1f" % (row["down_util_sd"] * 100),
            "%.2f" % (row["up_loss"] * 100),
            "%.2f" % (row["down_loss"] * 100),
            "%.0f" % row["concurrent"],
        ))
    return render_table(
        "Table 1 (%s): measured workload characteristics at BDP buffers" % testbed,
        ("workload", "dir", "up util%", "down util%", "up sd", "down sd",
         "up loss%", "down loss%", "flows"),
        out)


def table2_rows():
    """Table 2: analytic maximum queueing delays for the buffer catalog."""
    access = access_buffer_delays()
    backbone = backbone_buffer_delays()
    return access, backbone


def render_table2():
    """ASCII version of Table 2."""
    access, backbone = table2_rows()
    access_rows = [
        (packets, "%.0f" % (up * 1000), "%.0f" % (down * 1000))
        for packets, up, down in access
    ]
    backbone_rows = [
        (packets, "%.1f" % (delay * 1000)) for packets, delay in backbone
    ]
    part1 = render_table(
        "Table 2 (access): buffer sizes and max queueing delay",
        ("packets", "uplink delay ms", "downlink delay ms"), access_rows)
    part2 = render_table(
        "Table 2 (backbone): buffer sizes and max queueing delay",
        ("packets", "delay ms"), backbone_rows)
    return part1 + "\n\n" + part2
