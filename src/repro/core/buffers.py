"""Buffer-size catalog and sizing rules (Table 2).

The paper configures the bottleneck buffers in *packets*:

* Access (asymmetric 1/16 Mbit/s): powers of two from 8 to 256 packets —
  8 is roughly the uplink BDP, 64 the downlink BDP, 256 the maximum of
  the Stanford reference router and deep into bufferbloat territory.
* Backbone (OC-3): 8 ("tiny buffers", Enachescu et al.), 28 (Stanford
  BDP/sqrt(n) with n = 768), 749 (BDP at 60 ms RTT) and 7490 (10x BDP,
  the excessive-buffering scheme).
"""

import math
from dataclasses import dataclass

from repro.sim.topology import FULL_PACKET_BYTES, AccessNetwork, BackboneNetwork


def bdp_packets(rate_bps, rtt_seconds, packet_bytes=FULL_PACKET_BYTES):
    """Bandwidth-delay product in full-sized packets (rounded down)."""
    return max(1, int((rate_bps * rtt_seconds) / (8.0 * packet_bytes)))


def stanford_packets(rate_bps, rtt_seconds, n_flows,
                     packet_bytes=FULL_PACKET_BYTES):
    """Appenzeller et al.'s BDP/sqrt(n) rule."""
    if n_flows < 1:
        raise ValueError("n_flows must be >= 1")
    return max(1, int(bdp_packets(rate_bps, rtt_seconds, packet_bytes)
                      / math.sqrt(n_flows)))


def max_queueing_delay(packets, rate_bps, packet_bytes=FULL_PACKET_BYTES):
    """Worst-case queueing delay of a full buffer, in seconds."""
    return (packets * packet_bytes * 8.0) / rate_bps


@dataclass(frozen=True)
class BufferConfig:
    """One buffer configuration of the study.

    ``scheme`` is the paper's label for the sizing rule the size
    corresponds to ("~BDP", "Stanford", "TinyBuf", "10xBDP", ...).
    """

    packets: int
    scheme: str = ""

    def delay_at(self, rate_bps, packet_bytes=FULL_PACKET_BYTES):
        """Maximum queueing delay this buffer can add at ``rate_bps``."""
        return max_queueing_delay(self.packets, rate_bps, packet_bytes)

    def __str__(self):
        if self.scheme:
            return "%d pkts (%s)" % (self.packets, self.scheme)
        return "%d pkts" % self.packets


#: Access testbed buffer sizes (applied to uplink and downlink alike,
#: mirroring the paper which sweeps one size across both directions).
ACCESS_BUFFERS = (
    BufferConfig(8, "~BDP up / min down"),
    BufferConfig(16, ""),
    BufferConfig(32, ""),
    BufferConfig(64, "~BDP down"),
    BufferConfig(128, ""),
    BufferConfig(256, "max"),
)

#: Backbone testbed buffer sizes.
BACKBONE_BUFFERS = (
    BufferConfig(8, "~TinyBuf"),
    BufferConfig(28, "Stanford"),
    BufferConfig(749, "BDP"),
    BufferConfig(7490, "10xBDP"),
)


def access_buffer_delays():
    """(size, uplink delay, downlink delay) rows of Table 2's access half."""
    rows = []
    for config in ACCESS_BUFFERS:
        rows.append((
            config.packets,
            config.delay_at(AccessNetwork.UP_RATE),
            config.delay_at(AccessNetwork.DOWN_RATE),
        ))
    return rows


def backbone_buffer_delays():
    """(size, delay) rows of Table 2's backbone half."""
    return [
        (config.packets, config.delay_at(BackboneNetwork.RATE))
        for config in BACKBONE_BUFFERS
    ]
