"""Section 3 analysis pipeline: Figures 1a, 1b and 1c.

Mirrors the paper exactly: keep flows with at least 10 RTT samples,
estimate the per-flow queueing delay as the sRTT range (max - min),
build log-scale PDFs of the min/avg/max RTT (1a), a 2D min-vs-max
histogram (1b) and per-technology queueing-delay PDFs (1c), plus the
headline statistics quoted in the text.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.wild.dataset import AccessTech

MIN_SAMPLES = 10


def _log_pdf(values, bins):
    """Probability density over log10(milliseconds), as in Figure 1."""
    log_ms = np.log10(np.maximum(values, 1e-6) * 1000.0)
    hist, edges = np.histogram(log_ms, bins=bins, range=(0.0, 4.0),
                               density=True)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, hist


@dataclass
class WildAnalysis:
    """All derived artifacts of Section 3."""

    n_total: int
    n_filtered: int
    rtt_pdfs: dict  # {"min"|"avg"|"max": (bin centers, density)}
    qd_pdfs: dict  # {tech or "all": (bin centers, density)}
    hist2d: tuple  # (H, xedges, yedges) of log min vs log max
    stats: dict = field(default_factory=dict)

    def summary(self):
        """Human-readable headline statistics (§3's quoted numbers)."""
        lines = [
            "flows analysed: %d (of %d, >= %d RTT samples)"
            % (self.n_filtered, self.n_total, MIN_SAMPLES),
            "queueing delay < 100 ms: %.1f%% (paper: ~80%%)"
            % (self.stats["qd_below_100ms"] * 100),
            "queueing delay > 500 ms: %.2f%% (paper: 2.8%%)"
            % (self.stats["qd_above_500ms"] * 100),
            "queueing delay > 1 s:    %.2f%% (paper: 1%%)"
            % (self.stats["qd_above_1s"] * 100),
            "near flows (min <= 100 ms) with qd < 100 ms: %.1f%% (paper: 95%%)"
            % (self.stats["near_qd_below_100ms"] * 100),
            "near flows with qd < 1 s: %.2f%% (paper: 99.9%%)"
            % (self.stats["near_qd_below_1s"] * 100),
        ]
        return "\n".join(lines)


def analyze(dataset, bins=60):
    """Run the full Section 3 pipeline on a generated dataset."""
    samples = dataset["samples"]
    keep = samples >= MIN_SAMPLES
    n_total = len(samples)
    min_srtt = dataset["min"][keep]
    avg_srtt = dataset["avg"][keep]
    max_srtt = dataset["max"][keep]
    tech = dataset["tech"][keep]
    queueing = max_srtt - min_srtt

    rtt_pdfs = {
        "min": _log_pdf(min_srtt, bins),
        "avg": _log_pdf(avg_srtt, bins),
        "max": _log_pdf(max_srtt, bins),
    }
    qd_pdfs = {"all": _log_pdf(queueing, bins)}
    for label in (AccessTech.ADSL, AccessTech.CABLE, AccessTech.FTTH):
        mask = tech == label.value
        if mask.any():
            qd_pdfs[label.value] = _log_pdf(queueing[mask], bins)

    log_min = np.log10(np.maximum(min_srtt, 1e-6) * 1000.0)
    log_max = np.log10(np.maximum(max_srtt, 1e-6) * 1000.0)
    hist2d = np.histogram2d(log_max, log_min, bins=40,
                            range=[[0.5, 3.5], [0.5, 3.5]])

    near = min_srtt <= 0.100
    stats = {
        "qd_below_100ms": float(np.mean(queueing < 0.100)),
        "qd_above_500ms": float(np.mean(queueing > 0.500)),
        "qd_above_1s": float(np.mean(queueing > 1.0)),
        "near_qd_below_100ms": float(np.mean(queueing[near] < 0.100))
        if near.any() else 0.0,
        "near_qd_below_1s": float(np.mean(queueing[near] < 1.0))
        if near.any() else 0.0,
        "median_qd": float(np.median(queueing)),
        "mean_min_rtt": float(np.mean(min_srtt)),
    }
    return WildAnalysis(
        n_total=n_total,
        n_filtered=int(keep.sum()),
        rtt_pdfs=rtt_pdfs,
        qd_pdfs=qd_pdfs,
        hist2d=hist2d,
        stats=stats,
    )


def render_fig1(analysis, width=50):
    """ASCII sparklines of Figure 1's three panels."""
    def spark(centers, density):
        peak = density.max() if density.size and density.max() > 0 else 1.0
        blocks = " .:-=+*#%@"
        # Downsample to `width` columns.
        idx = np.linspace(0, len(density) - 1, width).astype(int)
        return "".join(blocks[int(density[i] / peak * (len(blocks) - 1))]
                       for i in idx)

    lines = ["Figure 1a: PDF of log10(RTT [ms]), 1..10^4 ms"]
    for key in ("min", "avg", "max"):
        centers, density = analysis.rtt_pdfs[key]
        lines.append("  %-4s |%s|" % (key, spark(centers, density)))
    lines.append("")
    lines.append("Figure 1c: PDF of log10(estimated queueing delay [ms])")
    for key in ("ftth", "cable", "adsl", "all"):
        if key in analysis.qd_pdfs:
            centers, density = analysis.qd_pdfs[key]
            lines.append("  %-5s |%s|" % (key, spark(centers, density)))
    lines.append("")
    lines.append(analysis.summary())
    return "\n".join(lines)
