"""Section 3: queueing "in the wild" from CDN sRTT statistics."""

from repro.wild.analysis import WildAnalysis, analyze
from repro.wild.dataset import AccessTech, FlowRecord, generate_dataset

__all__ = ["AccessTech", "FlowRecord", "generate_dataset", "WildAnalysis",
           "analyze"]
