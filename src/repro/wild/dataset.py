"""Synthetic CDN sRTT dataset (Section 3's data substrate).

The paper analyses kernel-level TCP statistics of 430M connections from
a major CDN: per connection the minimum / average / maximum smoothed
RTT and the sample count, plus a whois/DNS-based access-technology
label.  That corpus is proprietary, so this module generates records
from a statistical model calibrated to every aggregate the paper
reports:

* access mix: ~70% ADSL, 1.4% Cable, 0.02% FTTH, rest unlabelled;
* ~80% of flows see < 100 ms of estimated queueing delay (max - min);
* ~2.8% exceed 500 ms and ~1% exceed 1 s;
* flows with min RTT <= 100 ms see even less queueing (95% < 100 ms);
* FTTH < Cable < ADSL in queueing-delay distribution (Figure 1c).

The queueing delay per flow is a two-component lognormal mixture: a
"light" component (most flows barely queue — access uplinks are seldom
utilized) and a rare "heavy" bufferbloat component.
"""

from dataclasses import dataclass
from enum import Enum

import numpy as np


class AccessTech(str, Enum):
    """Access technology labels used in Figure 1c."""

    ADSL = "adsl"
    CABLE = "cable"
    FTTH = "ftth"
    UNKNOWN = "unknown"


#: Mixture fractions per the paper (§3).
TECH_MIX = (
    (AccessTech.ADSL, 0.70),
    (AccessTech.CABLE, 0.014),
    (AccessTech.FTTH, 0.0002),
    (AccessTech.UNKNOWN, 0.2858),
)

#: Per-tech model parameters:
#: (min-RTT lognormal median s, sigma; light qd median s, sigma;
#:  heavy probability; heavy qd median s, sigma)
_TECH_PARAMS = {
    AccessTech.ADSL: (0.080, 0.70, 0.030, 1.05, 0.035, 0.70, 0.80),
    AccessTech.CABLE: (0.050, 0.60, 0.020, 1.00, 0.020, 0.55, 0.80),
    AccessTech.FTTH: (0.015, 0.45, 0.006, 0.90, 0.006, 0.30, 0.80),
    AccessTech.UNKNOWN: (0.120, 0.80, 0.028, 1.05, 0.025, 0.65, 0.85),
}


@dataclass(frozen=True)
class FlowRecord:
    """One TCP connection's kernel sRTT statistics."""

    min_srtt: float
    avg_srtt: float
    max_srtt: float
    samples: int
    tech: AccessTech

    @property
    def estimated_queueing_delay(self):
        """The paper's estimator: sRTT range (max - min)."""
        return self.max_srtt - self.min_srtt


def generate_dataset(n_flows=200_000, seed=7):
    """Generate ``n_flows`` records; returns a structured numpy bundle.

    Returns a dict of arrays: ``min``, ``avg``, ``max`` (seconds),
    ``samples`` (int) and ``tech`` (object array of AccessTech) — array
    form keeps 200k-flow analyses instant.
    """
    rng = np.random.default_rng(seed)
    techs = [t for t, __ in TECH_MIX]
    probs = np.array([p for __, p in TECH_MIX])
    probs = probs / probs.sum()
    assignment = rng.choice(len(techs), size=n_flows, p=probs)

    min_srtt = np.empty(n_flows)
    queueing = np.empty(n_flows)
    for index, tech in enumerate(techs):
        mask = assignment == index
        count = int(mask.sum())
        if count == 0:
            continue
        (min_med, min_sigma, light_med, light_sigma,
         heavy_p, heavy_med, heavy_sigma) = _TECH_PARAMS[tech]
        min_srtt[mask] = rng.lognormal(np.log(min_med), min_sigma, count)
        heavy = rng.random(count) < heavy_p
        qd = rng.lognormal(np.log(light_med), light_sigma, count)
        qd[heavy] = rng.lognormal(np.log(heavy_med), heavy_sigma,
                                  int(heavy.sum()))
        queueing[mask] = qd

    # Queueing correlates mildly with path length: flows close to the
    # CDN caches traverse fewer (and better-provisioned) segments — the
    # paper finds 95% of min-RTT<=100ms flows below 100 ms of queueing.
    queueing *= np.clip((min_srtt / 0.10) ** 0.85, 0.18, 3.5)

    # Sample counts: heavy-tailed (most flows are short); the analysis
    # filters at >= 10 samples like the paper.
    samples = np.ceil(rng.pareto(1.2, n_flows) * 6.0).astype(int) + 1
    # The average sits somewhere inside the range, biased low (queues
    # are empty most of a flow's lifetime).
    avg_frac = rng.beta(1.5, 5.0, n_flows)
    max_srtt = min_srtt + queueing
    avg_srtt = min_srtt + avg_frac * queueing
    return {
        "min": min_srtt,
        "avg": avg_srtt,
        "max": max_srtt,
        "samples": samples,
        "tech": np.array([techs[i].value for i in assignment], dtype=object),
    }


def to_records(dataset):
    """Materialize :class:`FlowRecord` objects (tests / small analyses)."""
    return [
        FlowRecord(
            min_srtt=float(dataset["min"][i]),
            avg_srtt=float(dataset["avg"][i]),
            max_srtt=float(dataset["max"][i]),
            samples=int(dataset["samples"][i]),
            tech=AccessTech(dataset["tech"][i]),
        )
        for i in range(len(dataset["min"]))
    ]
