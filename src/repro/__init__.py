"""repro — reproduction of "A QoE Perspective on Sizing Network Buffers".

Hohlfeld, Pujol, Ciucu, Feldmann, Barford — ACM IMC 2014.

The package builds the paper's entire experimental apparatus in Python:
a packet-level discrete-event simulator with the paper's two dumbbell
testbeds (:mod:`repro.sim`), a from-scratch TCP with Reno/BIC/CUBIC
(:mod:`repro.tcp`), Harpoon-style workloads (:mod:`repro.apps`),
signal-level media pipelines (:mod:`repro.media`), standardized QoE
models (:mod:`repro.qoe`), the Section-3 CDN analysis (:mod:`repro.wild`)
and the sensitivity-study grids that regenerate every table and figure
(:mod:`repro.core`), declared once in a scenario registry
(:mod:`repro.core.registry`) and executed by a parallel cached grid
runner (:mod:`repro.runner`).  ``python -m repro list/describe/run/
figures`` exposes the registered sweeps on the command line.

Quickstart::

    from repro.core.scenarios import access_scenario
    from repro.core.voip_study import run_voip_cell, median_mos

    scenario = access_scenario("long-many", "up")   # upload congestion
    scores = run_voip_cell(scenario, buffer_packets=256, calls=1)
    print(median_mos(scores["talks"]))              # bufferbloat: ~1.x
"""

__version__ = "1.0.0"

from repro.sim import Simulator
from repro.sim.topology import AccessNetwork, BackboneNetwork

__all__ = ["Simulator", "AccessNetwork", "BackboneNetwork", "__version__"]
