"""TCP connection state machine.

Implements the subset of TCP that the paper's experiments exercise, on
top of the simulator's packet/node layer:

* handshake (SYN / SYN-ACK / ACK) and FIN teardown, with retransmission;
* byte-stream sequence space: the SYN occupies sequence 0, application
  data starts at sequence 1, a FIN occupies one sequence number;
* cumulative ACKs with delayed-ACK policy (ack every second segment or
  after 40 ms, immediate ACK on out-of-order data);
* duplicate-ACK fast retransmit with NewReno fast recovery (partial-ACK
  retransmission, window inflation during recovery);
* retransmission timeout with Jacobson/Karn estimation — RTT samples come
  from a modelled timestamp-echo option, so samples from retransmitted
  segments remain valid;
* pluggable congestion control (:mod:`repro.tcp.cc`).

Applications talk to connections through a message-oriented facade:
:meth:`TcpConnection.send` queues ``nbytes`` and optionally marks the end
of an application message; the receiving side fires ``on_message`` once
every byte of that message has been delivered in order.  Actual payload
bytes are never materialized — only counts flow through the simulator —
but delivery ordering, retransmission and flow dynamics are real.
"""

import heapq
from bisect import bisect_right
from itertools import count as _counter

from repro.sim.engine import Timer
from repro.sim.packet import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_SYN,
    IPV4_HEADER,
    TCP_HEADER,
    Packet,
    tcp_wire_size,
)
from repro.tcp.cc import Reno

# Connection states (strings keep debugging output readable).
CLOSED = "closed"
SYN_SENT = "syn-sent"
SYN_RCVD = "syn-rcvd"
ESTABLISHED = "established"
FIN_WAIT = "fin-wait"  # our FIN sent, waiting for its ACK / peer FIN
CLOSE_WAIT = "close-wait"  # peer FIN consumed, we may still send
LAST_ACK = "last-ack"  # peer FIN consumed and our FIN sent

INITIAL_RTO = 1.0
MIN_RTO = 0.2
MAX_RTO = 60.0
DELACK_TIMEOUT = 0.040
DUPACK_THRESHOLD = 3
MAX_HANDSHAKE_RETRIES = 6

#: Sentinel stream length for send_forever() sources.
_INFINITE_BYTES = 1 << 62

_marker_ids = _counter()


class TcpStats:
    """Per-connection counters, including the kernel-style sRTT triple.

    ``srtt_min`` / ``srtt_avg`` / ``srtt_max`` and ``srtt_samples`` mirror
    the fields of the CDN dataset analysed in Section 3 of the paper
    (smoothed RTT as estimated by Karn's algorithm).
    """

    __slots__ = (
        "created_at",
        "established_at",
        "closed_at",
        "srtt_min",
        "srtt_max",
        "srtt_sum",
        "srtt_samples",
        "bytes_acked",
        "bytes_delivered",
        "segments_sent",
        "fast_retransmits",
        "timeouts",
        "retransmitted_segments",
    )

    def __init__(self, now):
        self.created_at = now
        self.established_at = None
        self.closed_at = None
        self.srtt_min = float("inf")
        self.srtt_max = 0.0
        self.srtt_sum = 0.0
        self.srtt_samples = 0
        self.bytes_acked = 0
        self.bytes_delivered = 0
        self.segments_sent = 0
        self.fast_retransmits = 0
        self.timeouts = 0
        self.retransmitted_segments = 0

    @property
    def srtt_avg(self):
        if self.srtt_samples == 0:
            return 0.0
        return self.srtt_sum / self.srtt_samples

    def record_srtt(self, srtt):
        self.srtt_samples += 1
        self.srtt_sum += srtt
        if srtt < self.srtt_min:
            self.srtt_min = srtt
        if srtt > self.srtt_max:
            self.srtt_max = srtt


class TcpConnection:
    """One endpoint of a TCP connection.

    Client side::

        conn = TcpConnection(sim, node, peer_addr=server.addr, peer_port=80)
        conn.on_established = lambda c: c.send(300, meta="GET /")
        conn.connect()

    Server side: created by :class:`repro.tcp.listener.TcpListener`.
    """

    __slots__ = (
        "sim", "node", "peer_addr", "peer_port", "local_port", "cc", "mss",
        "delayed_ack", "rwnd", "state", "stats",
        "on_established", "on_data", "on_message", "on_peer_fin", "on_close",
        "snd_una", "snd_nxt", "_app_bytes", "_infinite", "_fin_pending",
        "_fin_sent", "_fin_acked", "_fin_seq", "_tx_marker_offsets",
        "_tx_marker_meta", "_dupacks", "_in_recovery", "_recover",
        "_inflation", "_partial_acks", "_peer_rwnd", "srtt", "rttvar",
        "min_rtt", "rto", "_rto_timer", "_handshake_retries",
        "rcv_nxt", "_rx_holes", "_rx_marker_heap", "_rx_marker_seen",
        "_peer_fin_seq", "_peer_fin_consumed", "_delack_timer",
        "_pending_ack_segments", "_ts_to_echo",
    )

    def __init__(
        self,
        sim,
        node,
        peer_addr,
        peer_port,
        local_port=None,
        cc=None,
        mss=1460,
        delayed_ack=True,
        rwnd=1 << 30,
    ):
        self.sim = sim
        self.node = node
        self.peer_addr = peer_addr
        self.peer_port = peer_port
        self.local_port = node.allocate_port() if local_port is None else local_port
        self.cc = cc if cc is not None else Reno(mss)
        self.mss = mss
        self.delayed_ack = delayed_ack
        self.rwnd = rwnd
        self.state = CLOSED
        self.stats = TcpStats(sim.now)

        # Application callbacks (assign after construction).
        self.on_established = None
        self.on_data = None  # fn(conn, delivered_bytes)
        self.on_message = None  # fn(conn, meta)
        self.on_peer_fin = None  # fn(conn)
        self.on_close = None  # fn(conn)

        # --- sender state -------------------------------------------------
        self.snd_una = 0
        self.snd_nxt = 0
        self._app_bytes = 0  # bytes queued by the application
        self._infinite = False
        self._fin_pending = False
        self._fin_sent = False
        self._fin_acked = False
        self._fin_seq = None
        self._tx_marker_offsets = []
        self._tx_marker_meta = []
        self._dupacks = 0
        self._in_recovery = False
        self._recover = 0
        self._inflation = 0.0
        self._partial_acks = 0
        self._peer_rwnd = rwnd  # symmetric default; never advertised smaller
        self.srtt = None
        self.rttvar = None
        self.min_rtt = None  # minimum raw RTT sample (HyStart baseline)
        self.rto = INITIAL_RTO
        self._rto_timer = Timer(sim, self._on_rto)
        self._handshake_retries = 0

        # --- receiver state -------------------------------------------------
        self.rcv_nxt = 0
        self._rx_holes = None  # lazily created IntervalSet for OOO data
        self._rx_marker_heap = []
        self._rx_marker_seen = set()
        self._peer_fin_seq = None
        self._peer_fin_consumed = False
        self._delack_timer = Timer(sim, self._send_ack_now)
        self._pending_ack_segments = 0
        self._ts_to_echo = -1.0  # < 0 means "nothing to echo"

        node.register_tcp(peer_addr, peer_port, self.local_port, self)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def connect(self):
        """Actively open the connection (client side)."""
        if self.state != CLOSED:
            raise RuntimeError("connect() on %s connection" % self.state)
        self.state = SYN_SENT
        self.snd_una = 0
        self.snd_nxt = 1  # SYN consumes sequence 0
        self._send_control(FLAG_SYN, seq=0)
        self._rto_timer.restart(self.rto)

    def send(self, nbytes, meta=None):
        """Queue ``nbytes`` of application data.

        When ``meta`` is given, the byte at the end of this call marks an
        application-message boundary: the peer's ``on_message(conn, meta)``
        fires once everything up to it has been delivered in order.
        """
        if nbytes < 0:
            raise ValueError("cannot send %d bytes" % nbytes)
        if self._fin_pending or self._fin_sent:
            raise RuntimeError("send() after close()")
        self._app_bytes += nbytes
        if meta is not None:
            self._tx_marker_offsets.append(self._app_bytes)
            self._tx_marker_meta.append(meta)
        self._try_send()

    def send_forever(self):
        """Turn this endpoint into an infinite (long-lived) data source."""
        self._infinite = True
        self._try_send()

    def close(self):
        """Half-close: send a FIN once all queued data is out."""
        if self._infinite:
            raise RuntimeError("close() on an infinite source")
        self._fin_pending = True
        self._try_send()

    def abort(self):
        """Tear down immediately without FIN (used at experiment end)."""
        self._rto_timer.cancel()
        self._delack_timer.cancel()
        if self.state != CLOSED:
            self.state = CLOSED
            self.stats.closed_at = self.sim.now
            self.node.unregister_tcp(self.peer_addr, self.peer_port, self.local_port)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def flight_size(self):
        """Unacknowledged sequence span (bytes)."""
        return self.snd_nxt - self.snd_una

    @property
    def close_requested(self):
        """True once close() was called (FIN pending or sent)."""
        return self._fin_pending or self._fin_sent

    @property
    def bytes_unsent(self):
        """Application bytes queued but not yet transmitted."""
        if self._infinite:
            return _INFINITE_BYTES
        return max(0, self._data_end_seq() - self.snd_nxt)

    def effective_window(self):
        """Current usable congestion window in bytes."""
        return min(self.cc.cwnd + self._inflation, self._peer_rwnd)

    # ------------------------------------------------------------------
    # Sending machinery
    # ------------------------------------------------------------------
    def _data_end_seq(self):
        if self._infinite:
            return _INFINITE_BYTES
        return 1 + self._app_bytes

    def _try_send(self):
        if self.state not in (ESTABLISHED, CLOSE_WAIT, FIN_WAIT, LAST_ACK):
            return
        data_end = self._data_end_seq()
        mss = self.mss
        peer_rwnd = self._peer_rwnd
        cc = self.cc
        while True:
            # Inline effective_window(): cwnd may move inside the loop
            # (never does today), so re-read it like the method did.
            window = cc.cwnd + self._inflation
            if peer_rwnd < window:
                window = peer_rwnd
            limit = self.snd_una + window
            snd_nxt = self.snd_nxt
            if snd_nxt >= limit:
                break
            if snd_nxt < data_end:
                payload = int(min(mss, data_end - snd_nxt, limit - snd_nxt))
                if payload <= 0:
                    break
                self._send_segment(snd_nxt, payload)
                self.snd_nxt = snd_nxt + payload
            elif self._fin_pending and not self._fin_sent:
                self._fin_seq = self.snd_nxt
                self._send_control(FLAG_FIN | FLAG_ACK, seq=self.snd_nxt,
                                   markers=self._all_markers())
                self._fin_sent = True
                self.snd_nxt += 1
                if self.state == ESTABLISHED:
                    self.state = FIN_WAIT
                elif self.state == CLOSE_WAIT:
                    self.state = LAST_ACK
                break
            else:
                break
        if self.snd_nxt > self.snd_una:
            rto_timer = self._rto_timer
            entry = rto_timer._entry
            if entry is None or entry[2] is None:  # inline Timer.active
                rto_timer.restart(self.rto)

    def _markers_for(self, seq, payload_len):
        """Message markers whose end offset falls inside this segment.

        Zero-length messages produce markers at offset 0 which no data
        byte covers; they ride on the first data segment (and on the FIN,
        see :meth:`_all_markers`).
        """
        if not self._tx_marker_offsets:
            return None
        stream_start = seq - 1  # data offset of the segment's first byte
        if stream_start == 0:
            lo = 0  # include zero-offset markers on the first segment
        else:
            lo = bisect_right(self._tx_marker_offsets, stream_start)
        hi = bisect_right(self._tx_marker_offsets, stream_start + payload_len)
        if lo == hi:
            return None
        return [
            (self._tx_marker_offsets[i], i, self._tx_marker_meta[i])
            for i in range(lo, hi)
        ]

    def _all_markers(self):
        """Every marker queued so far — attached to FINs as a safety net.

        Receivers deduplicate by marker id, so re-announcing is harmless
        and guarantees that markers for zero-length messages arrive even
        when no data segment ever carried them.
        """
        if not self._tx_marker_offsets:
            return None
        return [
            (offset, i, meta)
            for i, (offset, meta) in enumerate(
                zip(self._tx_marker_offsets, self._tx_marker_meta)
            )
        ]

    def _send_segment(self, seq, payload_len, retransmission=False):
        now = self.sim.now
        markers = (self._markers_for(seq, payload_len)
                   if self._tx_marker_offsets else None)
        packet = Packet.alloc(
            self.node.addr,          # src
            self.peer_addr,          # dst
            self.local_port,         # sport
            self.peer_port,          # dport
            "tcp",
            IPV4_HEADER + TCP_HEADER + payload_len,  # tcp_wire_size()
            seq,
            self.rcv_nxt,            # ack_no
            FLAG_ACK,
            payload_len,
            now,                     # ts
            self._ts_to_echo,
            markers,
            now,                     # created
        )
        stats = self.stats
        stats.segments_sent += 1
        if retransmission:
            stats.retransmitted_segments += 1
        # Data segments piggyback the current ACK: cancel any pending one
        # (guarded inline — the timer is idle for almost every segment a
        # bulk sender pushes).
        delack = self._delack_timer
        if delack._entry is not None:
            delack.cancel()
        self._pending_ack_segments = 0
        self.node.send(packet)

    def _send_control(self, flags, seq, payload_len=0, markers=None):
        now = self.sim.now
        packet = Packet.alloc(
            self.node.addr,          # src
            self.peer_addr,          # dst
            self.local_port,         # sport
            self.peer_port,          # dport
            "tcp",
            IPV4_HEADER + TCP_HEADER + payload_len,  # tcp_wire_size()
            seq,
            self.rcv_nxt if (flags & FLAG_ACK) else 0,  # ack_no
            flags,
            payload_len,
            now,                     # ts
            self._ts_to_echo,
            markers,
            now,                     # created
        )
        self.node.send(packet)

    def _retransmit_head(self):
        """Retransmit the segment at ``snd_una`` (data or FIN)."""
        seq = self.snd_una
        data_end = self._data_end_seq()
        if seq < data_end:
            payload = int(min(self.mss, data_end - seq))
            self._send_segment(seq, payload, retransmission=True)
        elif self._fin_sent and seq == self._fin_seq:
            self.stats.retransmitted_segments += 1
            self._send_control(FLAG_FIN | FLAG_ACK, seq=seq,
                               markers=self._all_markers())

    # ------------------------------------------------------------------
    # Packet ingress
    # ------------------------------------------------------------------
    def handle_packet(self, packet):
        """Entry point from the node's TCP demultiplexer."""
        flags = packet.flags
        if flags & FLAG_SYN:
            if flags & FLAG_ACK:
                self._handle_synack(packet)
            else:
                self.handle_syn(packet)
            return
        if packet.payload is not None:
            self._stash_markers(packet.payload)
        if flags & FLAG_ACK:
            self._process_ack(packet)
        if packet.payload_len > 0:
            self._process_data(packet)
        if flags & FLAG_FIN:
            self._process_fin(packet)

    # --- handshake --------------------------------------------------------
    def handle_syn(self, packet):
        """Passive open / retransmitted SYN (server side)."""
        self._ts_to_echo = packet.ts
        if self.state == CLOSED:
            self.state = SYN_RCVD
            self.snd_una = 0
            self.snd_nxt = 1
            self.rcv_nxt = 1  # peer ISS is 0, their SYN consumed
        if self.state == SYN_RCVD:
            self._send_control(FLAG_SYN | FLAG_ACK, seq=0)
            self._rto_timer.restart(self.rto)

    def _handle_synack(self, packet):
        if self.state != SYN_SENT:
            # Duplicate SYN-ACK; our final ACK was lost.  Re-ACK.
            self._ts_to_echo = packet.ts
            self._send_ack_now()
            return
        self.rcv_nxt = 1
        self.snd_una = 1
        self._ts_to_echo = packet.ts
        if packet.ts_echo >= 0:
            self._update_rtt(self.sim.now - packet.ts_echo)
        self._rto_timer.cancel()
        self.rto = max(self.rto, MIN_RTO)
        self.state = ESTABLISHED
        self.stats.established_at = self.sim.now
        self._send_ack_now()
        if self.on_established is not None:
            self.on_established(self)
        self._try_send()

    # --- ACK path ---------------------------------------------------------
    def _process_ack(self, packet):
        if self.state == SYN_RCVD and packet.ack_no >= 1:
            self.state = ESTABLISHED
            self.stats.established_at = self.sim.now
            self._rto_timer.cancel()
            if packet.ts_echo >= 0:
                self._update_rtt(self.sim.now - packet.ts_echo)
            if self.on_established is not None:
                self.on_established(self)

        ack = packet.ack_no
        snd_una = self.snd_una
        if ack > snd_una:
            acked = ack - snd_una
            self.snd_una = ack
            self.stats.bytes_acked += acked
            if packet.ts_echo >= 0:
                self._update_rtt(self.sim.now - packet.ts_echo)
            if self._in_recovery:
                if ack >= self._recover:
                    self._in_recovery = False
                    self._inflation = 0.0
                    self._dupacks = 0
                    self.cc.on_exit_recovery(self.sim.now)
                    if self.snd_nxt > ack:
                        self._rto_timer.restart(self.rto)
                    else:
                        self._rto_timer.cancel()
                else:
                    # NewReno partial ACK: the next hole is lost too.
                    self._retransmit_head()
                    self._inflation = max(0.0, self._inflation - acked + self.mss)
                    self._partial_acks += 1
                    if self._partial_acks == 1:
                        # RFC 6582 "impatient" variant: only the first
                        # partial ACK rearms the RTO, so a recovery with
                        # many holes ends in a timeout instead of dragging
                        # on for one hole per RTT indefinitely.
                        self._rto_timer.restart(self.rto)
            else:
                self._dupacks = 0
                self.cc.on_ack(acked, self.sim.now, self.srtt)
                if self.snd_nxt > ack:
                    self._rto_timer.restart(self.rto)
                else:
                    rto_timer = self._rto_timer
                    if rto_timer._entry is not None:  # inline guard
                        rto_timer.cancel()
            if self._fin_sent and not self._fin_acked and ack > self._fin_seq:
                self._fin_acked = True
                self._maybe_finish()
            self._try_send()
        elif (
            ack == self.snd_una
            and self.snd_nxt > self.snd_una
            and packet.payload_len == 0
            and not (packet.flags & FLAG_FIN)
        ):
            self._dupacks += 1
            if self._in_recovery:
                # Inflate for the segment that left the network, but cap the
                # inflation so a long multi-hole recovery cannot balloon the
                # effective window without bound.
                self._inflation = min(self._inflation + self.mss,
                                      2.0 * self.cc.cwnd)
                self._try_send()
            elif self._dupacks == DUPACK_THRESHOLD and self.snd_una > self._recover:
                # RFC 6582 §4 guard: after a timeout, go-back-N resends
                # segments the receiver already buffered, and their dup
                # ACKs must not trigger a (spurious) fast retransmit until
                # the cumulative ACK passes the recorded recover point.
                self._enter_recovery()

    def _enter_recovery(self):
        flight = self.flight_size
        self.cc.on_loss(flight, self.sim.now)
        self._in_recovery = True
        self._recover = self.snd_nxt
        self._inflation = DUPACK_THRESHOLD * self.mss
        self._partial_acks = 0
        self.stats.fast_retransmits += 1
        self._retransmit_head()
        self._rto_timer.restart(self.rto)

    def _on_rto(self):
        if self.state == SYN_SENT:
            self._handshake_retries += 1
            if self._handshake_retries > MAX_HANDSHAKE_RETRIES:
                self._fail_connection()
                return
            self.rto = min(self.rto * 2.0, MAX_RTO)
            self._send_control(FLAG_SYN, seq=0)
            self._rto_timer.restart(self.rto)
            return
        if self.state == SYN_RCVD:
            self._handshake_retries += 1
            if self._handshake_retries > MAX_HANDSHAKE_RETRIES:
                self._fail_connection()
                return
            self.rto = min(self.rto * 2.0, MAX_RTO)
            self._send_control(FLAG_SYN | FLAG_ACK, seq=0)
            self._rto_timer.restart(self.rto)
            return
        if self.snd_nxt <= self.snd_una:
            return
        self.stats.timeouts += 1
        self.cc.on_timeout(self.flight_size, self.sim.now)
        self._in_recovery = False
        self._inflation = 0.0
        self._dupacks = 0
        self._recover = self.snd_nxt  # RFC 6582: no fast rtx below this
        self.rto = min(self.rto * 2.0, MAX_RTO)
        # Go-back-N: rewind and slow-start from the hole (RFC 5681 §3.1).
        # The receiver discards duplicates and its cumulative ACKs jump
        # over whatever it already buffered.
        self.stats.retransmitted_segments += 1
        self.snd_nxt = self.snd_una
        if self._fin_sent and self._fin_seq is not None \
                and self._fin_seq >= self.snd_nxt:
            self._fin_sent = False  # FIN needs resending too
        self._try_send()
        self._rto_timer.restart(self.rto)

    def _fail_connection(self):
        self.state = CLOSED
        self.stats.closed_at = self.sim.now
        self.node.unregister_tcp(self.peer_addr, self.peer_port, self.local_port)
        if self.on_close is not None:
            self.on_close(self)

    def _update_rtt(self, sample):
        if sample <= 0:
            return
        if self.min_rtt is None or sample < self.min_rtt:
            self.min_rtt = sample
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        srtt = self.srtt
        self.rto = min(max(srtt + max(0.01, 4.0 * self.rttvar), MIN_RTO), MAX_RTO)
        # Inline stats.record_srtt: one sample per timestamped ACK.
        stats = self.stats
        stats.srtt_samples += 1
        stats.srtt_sum += srtt
        if srtt < stats.srtt_min:
            stats.srtt_min = srtt
        if srtt > stats.srtt_max:
            stats.srtt_max = srtt
        cc = self.cc
        if cc.cwnd < cc.ssthresh:  # inline in_slow_start precondition
            cc.maybe_exit_slow_start(sample, self.min_rtt)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def _process_data(self, packet):
        seq = packet.seq
        end = seq + packet.payload_len
        if end <= self.rcv_nxt:
            # Stale duplicate: re-ACK immediately so the peer resynchronizes.
            self._ts_to_echo = packet.ts
            self._send_ack_now()
            return
        if self._pending_ack_segments == 0:
            self._ts_to_echo = packet.ts

        old_next = self.rcv_nxt
        holes = self._rx_holes
        # `holes._ivals` is accessed directly (instead of len()) on this
        # per-segment path; IntervalSet is repo-local, see util/intervals.
        if seq <= old_next and (holes is None or not holes._ivals):
            self.rcv_nxt = end  # fast path: in-order arrival, no holes
        else:
            if holes is None:
                from repro.util.intervals import IntervalSet

                holes = self._rx_holes = IntervalSet()
            holes.add(max(seq, old_next), end)
            self.rcv_nxt = holes.contiguous_end(old_next)
            holes.prune_below(self.rcv_nxt)

        delivered = self.rcv_nxt - old_next
        out_of_order = delivered == 0 or (
            holes is not None and len(holes._ivals) > 0
        )
        if delivered > 0:
            self.stats.bytes_delivered += delivered
            if self.on_data is not None:
                self.on_data(self, delivered)
            if self._rx_marker_heap:
                self._fire_markers()
            if self._peer_fin_seq is not None and not self._peer_fin_consumed:
                self._consume_fin_if_ready()

        if out_of_order or not self.delayed_ack:
            self._send_ack_now()
        else:
            pending = self._pending_ack_segments + 1
            self._pending_ack_segments = pending
            if pending >= 2:
                self._send_ack_now()
            else:
                # Inline Timer.active: one delayed-ACK decision per
                # in-order data segment.
                delack = self._delack_timer
                entry = delack._entry
                if entry is None or entry[2] is None:
                    delack.start(DELACK_TIMEOUT)

    def _stash_markers(self, markers):
        for offset, marker_id, meta in markers:
            if marker_id in self._rx_marker_seen:
                continue  # duplicate delivery via retransmission
            self._rx_marker_seen.add(marker_id)
            heapq.heappush(self._rx_marker_heap, (offset, marker_id, meta))

    def _fire_markers(self):
        delivered_offset = self.rcv_nxt - 1  # data offset delivered so far
        heap = self._rx_marker_heap
        while heap and heap[0][0] <= delivered_offset:
            __, __, meta = heapq.heappop(heap)
            if self.on_message is not None:
                self.on_message(self, meta)

    def _process_fin(self, packet):
        self._peer_fin_seq = packet.seq + packet.payload_len
        self._fire_markers()
        self._consume_fin_if_ready()
        self._send_ack_now()

    def _consume_fin_if_ready(self):
        if self._peer_fin_consumed or self._peer_fin_seq is None:
            return
        if self.rcv_nxt == self._peer_fin_seq:
            self.rcv_nxt += 1
            self._peer_fin_consumed = True
            if self.state == ESTABLISHED:
                self.state = CLOSE_WAIT
            if self.on_peer_fin is not None:
                self.on_peer_fin(self)
            self._maybe_finish()

    def _maybe_finish(self):
        if self._fin_acked and self._peer_fin_consumed and self.state != CLOSED:
            self.state = CLOSED
            self.stats.closed_at = self.sim.now
            self._rto_timer.cancel()
            self._delack_timer.cancel()
            self.node.unregister_tcp(self.peer_addr, self.peer_port, self.local_port)
            if self.on_close is not None:
                self.on_close(self)

    def _send_ack_now(self):
        delack = self._delack_timer
        if delack._entry is not None:
            delack.cancel()
        self._pending_ack_segments = 0
        # Inline _send_control(FLAG_ACK, seq=self.snd_nxt): pure ACKs are
        # the most common control segment by far (one per delivered data
        # pair), so skip the extra frame and the flag branches.
        now = self.sim.now
        self.node.send(Packet.alloc(
            self.node.addr,          # src
            self.peer_addr,          # dst
            self.local_port,         # sport
            self.peer_port,          # dport
            "tcp",
            IPV4_HEADER + TCP_HEADER,  # tcp_wire_size(0)
            self.snd_nxt,            # seq
            self.rcv_nxt,            # ack_no
            FLAG_ACK,
            0,                       # payload_len
            now,                     # ts
            self._ts_to_echo,
            None,                    # payload
            now,                     # created
        ))

    def __repr__(self):
        return "TcpConnection(%s, %d:%d->%d:%d, una=%d nxt=%d rcv=%d)" % (
            self.state,
            self.node.addr,
            self.local_port,
            self.peer_addr,
            self.peer_port,
            self.snd_una,
            self.snd_nxt,
            self.rcv_nxt,
        )
