"""Passive TCP endpoints."""

from repro.tcp.cc import Reno
from repro.tcp.connection import TcpConnection


class TcpListener:
    """Accepts incoming connections on a port.

    Parameters
    ----------
    sim, node, port:
        Where to listen.
    on_connection:
        ``fn(connection)`` invoked for every new connection *before* the
        SYN is processed, so the application can attach callbacks (e.g.
        ``on_message``) without racing the handshake.
    cc_factory:
        Zero-argument callable building the congestion controller for
        each accepted connection; defaults to Reno.
    """

    def __init__(self, sim, node, port, on_connection=None, cc_factory=None,
                 delayed_ack=True):
        self.sim = sim
        self.node = node
        self.port = port
        self.on_connection = on_connection
        self.cc_factory = cc_factory if cc_factory is not None else Reno
        self.delayed_ack = delayed_ack
        self.accepted = 0
        node.register_tcp_listener(port, self)

    def handle_packet(self, packet):
        """Process a SYN with no established connection (from the node demux)."""
        from repro.sim.packet import FLAG_ACK, FLAG_SYN

        if not (packet.flags & FLAG_SYN) or (packet.flags & FLAG_ACK):
            return  # stray segment for a connection we no longer track
        connection = TcpConnection(
            self.sim,
            self.node,
            peer_addr=packet.src,
            peer_port=packet.sport,
            local_port=self.port,
            cc=self.cc_factory(),
            delayed_ack=self.delayed_ack,
        )
        self.accepted += 1
        if self.on_connection is not None:
            self.on_connection(connection)
        connection.handle_syn(packet)

    def close(self):
        """Stop accepting new connections."""
        self.node.unregister_tcp_listener(self.port)

    def __repr__(self):
        return "TcpListener(%s:%d, accepted=%d)" % (
            self.node.name,
            self.port,
            self.accepted,
        )
