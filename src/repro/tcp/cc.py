"""Congestion-control algorithms: Reno, BIC and CUBIC.

The algorithm object owns ``cwnd`` and ``ssthresh`` (bytes).  The
connection calls:

* :meth:`on_ack` for every ACK that advances ``snd_una`` outside recovery,
* :meth:`on_loss` when entering fast recovery (dup-ACK loss detection),
* :meth:`on_exit_recovery` when recovery completes,
* :meth:`on_timeout` on RTO expiry.

Windows are floats in bytes; the connection rounds down to whole segments
when deciding what to transmit.  BIC and CUBIC follow the published
algorithms (Xu et al. 2004; Ha/Rhee/Xu 2008, RFC 8312) with windows
expressed in segments internally.
"""

INFINITE_SSTHRESH = float("inf")


class CongestionControl:
    """Base class: window state plus the Reno slow-start machinery."""

    name = "base"

    def __init__(self, mss=1460, initial_window_segments=3):
        self.mss = mss
        self.cwnd = float(initial_window_segments * mss)
        self.ssthresh = INFINITE_SSTHRESH

    # -- helpers --------------------------------------------------------
    @property
    def in_slow_start(self):
        return self.cwnd < self.ssthresh

    def _slow_start_increase(self, acked_bytes):
        # Appropriate byte counting, capped at one MSS per ACK.
        self.cwnd += min(acked_bytes, self.mss)

    def maybe_exit_slow_start(self, rtt_sample, min_rtt):
        """HyStart-style delay-based slow-start exit.

        Linux has shipped HyStart with CUBIC/BIC since 2.6.29: once RTT
        samples exceed the path minimum by a threshold (min_rtt/8 clamped
        to [4 ms, 16 ms]), the queue is clearly building and slow start
        ends by setting ``ssthresh`` to the current window.  Without this,
        slow start overshoots to ~2x (BDP + buffer) and the first seconds
        of every flow are a loss storm.
        """
        if not self.in_slow_start or self.cwnd < 16 * self.mss:
            return False
        if rtt_sample is None or min_rtt is None:
            return False
        threshold = min(max(min_rtt / 8.0, 0.004), 0.016)
        if rtt_sample >= min_rtt + threshold:
            self.ssthresh = self.cwnd
            return True
        return False

    # -- events ---------------------------------------------------------
    def on_ack(self, acked_bytes, now, srtt):
        raise NotImplementedError

    def on_loss(self, flight_bytes, now):
        """Dup-ACK loss: set ssthresh, deflate cwnd.  Returns new ssthresh."""
        raise NotImplementedError

    def on_exit_recovery(self, now):
        """Recovery finished; cwnd collapses to ssthresh (standard)."""
        self.cwnd = self.ssthresh

    def on_timeout(self, flight_bytes, now):
        """RTO: ssthresh per algorithm, cwnd back to one segment."""
        self.ssthresh = max(flight_bytes / 2.0, 2.0 * self.mss)
        self.cwnd = float(self.mss)

    def __repr__(self):
        return "%s(cwnd=%.0f, ssthresh=%s)" % (
            type(self).__name__,
            self.cwnd,
            "inf" if self.ssthresh == INFINITE_SSTHRESH else "%.0f" % self.ssthresh,
        )


class Reno(CongestionControl):
    """Classic Reno: slow start, then +1 MSS per RTT; halve on loss."""

    name = "reno"

    def on_ack(self, acked_bytes, now, srtt):
        if self.in_slow_start:
            self._slow_start_increase(acked_bytes)
        else:
            self.cwnd += self.mss * self.mss / self.cwnd

    def on_loss(self, flight_bytes, now):
        self.ssthresh = max(flight_bytes / 2.0, 2.0 * self.mss)
        self.cwnd = self.ssthresh
        return self.ssthresh


class Bic(CongestionControl):
    """Binary Increase Congestion control (Xu, Harfoush, Rhee 2004).

    Above ``LOW_WINDOW`` segments, the window binary-searches toward the
    pre-loss maximum (capped at ``S_MAX`` per RTT, floored at ``S_MIN``)
    and probes additively beyond it.  Below ``LOW_WINDOW`` it behaves
    like Reno.
    """

    name = "bic"

    LOW_WINDOW = 14.0  # segments
    S_MAX = 16.0  # max increment, segments per RTT (Linux BICTCP_MAX_INCREMENT)
    S_MIN = 0.01  # min increment, segments per RTT
    BETA = 0.8  # multiplicative decrease (BIC uses 0.8/0.875 variants)

    def __init__(self, mss=1460, initial_window_segments=3):
        super().__init__(mss, initial_window_segments)
        self.w_max = 0.0  # segments

    def _segments(self):
        return self.cwnd / self.mss

    def on_ack(self, acked_bytes, now, srtt):
        if self.in_slow_start:
            self._slow_start_increase(acked_bytes)
            return
        w = self._segments()
        if w < self.LOW_WINDOW or self.w_max <= 0.0:
            increment = 1.0  # Reno-like regime
        elif w < self.w_max:
            distance = (self.w_max - w) / 2.0  # binary search step
            increment = min(max(distance, self.S_MIN), self.S_MAX)
        else:
            # Max probing: slow start-like departure from w_max.
            distance = w - self.w_max
            increment = min(max(distance, self.S_MIN), self.S_MAX)
        # Spread the per-RTT increment over one window of ACKs.
        self.cwnd += self.mss * increment / max(w, 1.0)

    def on_loss(self, flight_bytes, now):
        w = flight_bytes / self.mss
        if w < self.w_max:
            # Fast convergence: release bandwidth for newer flows.
            self.w_max = w * (1.0 + self.BETA) / 2.0
        else:
            self.w_max = w
        self.ssthresh = max(flight_bytes * self.BETA, 2.0 * self.mss)
        self.cwnd = self.ssthresh
        return self.ssthresh


class Cubic(CongestionControl):
    """CUBIC (RFC 8312): cubic window growth in real time + TCP friendliness."""

    name = "cubic"

    C = 0.4  # scaling constant (segments / s^3)
    BETA = 0.7  # multiplicative decrease

    def __init__(self, mss=1460, initial_window_segments=3):
        super().__init__(mss, initial_window_segments)
        self.w_max = 0.0  # segments
        self.epoch_start = None
        self.k = 0.0
        self.ack_count = 0
        self.w_est = 0.0

    def _reset_epoch(self, now):
        w = self.cwnd / self.mss
        self.epoch_start = now
        if self.w_max > w:
            self.k = ((self.w_max - w) / self.C) ** (1.0 / 3.0)
        else:
            self.k = 0.0
        self.ack_count = 0
        self.w_est = w

    def on_ack(self, acked_bytes, now, srtt):
        if self.in_slow_start:
            self._slow_start_increase(acked_bytes)
            return
        if self.epoch_start is None:
            self._reset_epoch(now)
        rtt = srtt if srtt and srtt > 0 else 0.1
        t = now - self.epoch_start + rtt
        w_cubic = self.C * (t - self.k) ** 3 + self.w_max  # segments
        # TCP-friendly region estimate (average Reno window at same time).
        self.w_est += 3.0 * (1.0 - self.BETA) / (1.0 + self.BETA) * (
            acked_bytes / self.cwnd
        )
        target = max(w_cubic, self.w_est)
        w = self.cwnd / self.mss
        if target > w:
            # Approach the target over the next window of ACKs.
            self.cwnd += self.mss * (target - w) / w
        else:
            self.cwnd += self.mss * 0.01 / w  # minimal growth when ahead

    def on_loss(self, flight_bytes, now):
        w = flight_bytes / self.mss
        if w < self.w_max:
            # Fast convergence.
            self.w_max = w * (2.0 - self.BETA) / 2.0
        else:
            self.w_max = w
        self.epoch_start = None
        self.ssthresh = max(flight_bytes * self.BETA, 2.0 * self.mss)
        self.cwnd = self.ssthresh
        return self.ssthresh

    def on_timeout(self, flight_bytes, now):
        super().on_timeout(flight_bytes, now)
        self.epoch_start = None


_CC_BY_NAME = {"reno": Reno, "bic": Bic, "cubic": Cubic}


def make_cc(name, mss=1460, initial_window_segments=3):
    """Instantiate a congestion-control algorithm by name."""
    try:
        cls = _CC_BY_NAME[name]
    except KeyError:
        raise ValueError(
            "unknown congestion control %r (have %s)" % (name, sorted(_CC_BY_NAME))
        ) from None
    return cls(mss=mss, initial_window_segments=initial_window_segments)
