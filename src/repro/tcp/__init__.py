"""From-scratch TCP: connections, listeners and congestion control.

The paper's background traffic ran Linux TCP Reno on the backbone testbed
and BIC/CUBIC on the access testbed (§5.2); web-page fetches ran over a
persistent connection.  This package reimplements the pieces of TCP those
experiments exercise:

* three-way handshake and FIN teardown,
* cumulative ACKs, duplicate-ACK fast retransmit and NewReno fast
  recovery,
* Karn-safe RTT estimation via timestamp echo, Jacobson RTO with
  exponential backoff,
* delayed ACKs,
* pluggable congestion control: Reno, BIC and CUBIC,
* large (scaled) windows — receive window never binds by default.
"""

from repro.tcp.cc import Bic, CongestionControl, Cubic, Reno, make_cc
from repro.tcp.connection import TcpConnection, TcpStats
from repro.tcp.listener import TcpListener

__all__ = [
    "CongestionControl",
    "Reno",
    "Bic",
    "Cubic",
    "make_cc",
    "TcpConnection",
    "TcpStats",
    "TcpListener",
]
