"""Measurement probes attached to the running simulation."""

import numpy as np


class UtilizationSampler:
    """Samples per-bin link utilization — Figure 5's boxplot input.

    Every ``bin_seconds`` the sampler records the fraction of the
    interface's capacity used during the elapsed bin.  Call :meth:`start`
    after warm-up and :meth:`stop` at the end of the measurement window.
    """

    def __init__(self, sim, interface, bin_seconds=1.0):
        self.sim = sim
        self.interface = interface
        self.bin_seconds = bin_seconds
        self.samples = []
        self._last_bytes = 0
        self._event = None

    def start(self):
        """Begin sampling at the next bin boundary."""
        self.samples = []
        self._last_bytes = self.interface.stats.tx_bytes
        self._event = self.sim.schedule(self.bin_seconds, self._tick)

    def _tick(self):
        now_bytes = self.interface.stats.tx_bytes
        delta = now_bytes - self._last_bytes
        self._last_bytes = now_bytes
        capacity = self.interface.rate_bps * self.bin_seconds / 8.0
        self.samples.append(min(1.0, delta / capacity))
        self._event = self.sim.schedule(self.bin_seconds, self._tick)

    def stop(self):
        """Stop sampling."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def boxplot(self):
        """Five-number summary of the collected utilization samples."""
        return five_number_summary(self.samples)


class QueueDelaySampler:
    """Periodically samples the *instantaneous* queueing delay of a queue.

    The instantaneous delay is the backlog divided by the drain rate —
    what a packet arriving right now would wait.  Used for the delay time
    series behind Figure 4's mean-delay cells.
    """

    def __init__(self, sim, interface, bin_seconds=0.1):
        self.sim = sim
        self.interface = interface
        self.bin_seconds = bin_seconds
        self.samples = []
        self._event = None

    def start(self):
        self.samples = []
        self._event = self.sim.schedule(self.bin_seconds, self._tick)

    def _tick(self):
        backlog_bits = self.interface.queue.byte_length * 8.0
        self.samples.append(backlog_bits / self.interface.rate_bps)
        self._event = self.sim.schedule(self.bin_seconds, self._tick)

    def stop(self):
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def mean(self):
        if not self.samples:
            return 0.0
        return float(np.mean(self.samples))


def five_number_summary(samples):
    """Return (min, q1, median, q3, max) of ``samples`` as floats."""
    if len(samples) == 0:
        return (0.0, 0.0, 0.0, 0.0, 0.0)
    arr = np.asarray(samples, dtype=float)
    q1, med, q3 = np.percentile(arr, [25, 50, 75])
    return (float(arr.min()), float(q1), float(med), float(q3), float(arr.max()))
