"""Discrete-event simulation engine.

A minimal, fast event loop: a binary heap of timestamped callbacks.  The
whole reproduction — links, TCP timers, media sources — is driven by this
single clock, which makes experiments exactly reproducible.

Design notes
------------
* Events are ordered by ``(time, seq)``; the monotonically increasing
  sequence number makes the ordering of simultaneous events deterministic
  (FIFO in scheduling order) and keeps heap comparisons cheap.
* Cancellation is lazy: cancelled events stay in the heap and are skipped
  when popped.  This is the standard trick to keep ``cancel`` O(1).
* :class:`Timer` wraps the common restartable-timeout pattern used by TCP
  retransmission and delayed-ACK timers.
"""

import heapq


class SimTimeError(ValueError):
    """Raised when an event is scheduled in the past."""


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time, seq, fn, args):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self):
        """Prevent the callback from running (idempotent)."""
        self.cancelled = True

    def __lt__(self, other):
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self):
        state = " cancelled" if self.cancelled else ""
        return "Event(t=%.9f, fn=%r%s)" % (self.time, self.fn, state)


class Simulator:
    """The event loop.  All times are seconds on a simulated clock."""

    def __init__(self):
        self.now = 0.0
        self._heap = []
        self._seq = 0
        self._stopped = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time, fn, *args):
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimTimeError(
                "cannot schedule at %.9f; clock already at %.9f" % (time, self.now)
            )
        self._seq += 1
        event = Event(time, self._seq, fn, args)
        heapq.heappush(self._heap, event)
        return event

    def schedule(self, delay, fn, *args):
        """Schedule ``fn(*args)`` after ``delay`` seconds."""
        return self.schedule_at(self.now + delay, fn, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until=None, max_events=None):
        """Run events until the heap drains, ``until`` or ``max_events``.

        Returns the number of events executed.  When ``until`` is given the
        clock is advanced to ``until`` even if the heap drained earlier, so
        that back-to-back ``run`` calls behave like one continuous run.  A
        ``max_events`` break leaves the clock on the last executed event:
        fast-forwarding past still-pending events would make the next
        ``run`` move the clock backwards and ``schedule_at`` spuriously
        reject legal times.
        """
        heap = self._heap
        executed = 0
        self._stopped = False
        while heap and not self._stopped:
            event = heap[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.fn(*event.args)
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        if until is not None and until > self.now and not self._stopped:
            while heap and heap[0].cancelled:
                heapq.heappop(heap)
            if not heap or heap[0].time > until:
                self.now = until
        return executed

    def stop(self):
        """Stop :meth:`run` after the currently executing event."""
        self._stopped = True

    def pending(self):
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for event in self._heap if not event.cancelled)

    def __repr__(self):
        return "Simulator(now=%.6f, pending=%d)" % (self.now, len(self._heap))


class Timer:
    """A restartable one-shot timer bound to a simulator.

    Wraps the schedule/cancel/reschedule dance of protocol timers::

        timer = Timer(sim, self._on_rto)
        timer.start(1.0)     # arm
        timer.restart(2.0)   # re-arm, cancelling the pending expiry
        timer.cancel()       # disarm
    """

    def __init__(self, sim, fn):
        self._sim = sim
        self._fn = fn
        self._event = None

    @property
    def active(self):
        """True while the timer is armed and has not fired."""
        return self._event is not None and not self._event.cancelled

    @property
    def expiry(self):
        """Absolute expiry time, or None when disarmed."""
        if self.active:
            return self._event.time
        return None

    def start(self, delay):
        """Arm the timer; raises if already armed (use restart)."""
        if self.active:
            raise RuntimeError("timer already armed")
        self._event = self._sim.schedule(delay, self._fire)

    def restart(self, delay):
        """Arm the timer, cancelling any pending expiry first."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire)

    def cancel(self):
        """Disarm the timer (idempotent)."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self):
        self._event = None
        self._fn()
