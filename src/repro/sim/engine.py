"""Discrete-event simulation engine.

A minimal, fast event loop: a binary heap of timestamped callbacks.  The
whole reproduction — links, TCP timers, media sources — is driven by this
single clock, which makes experiments exactly reproducible.

Design notes
------------
* Heap entries are plain 4-item lists ``[time, seq, fn, args]``.  The
  monotonically increasing sequence number makes the ordering of
  simultaneous events deterministic (FIFO in scheduling order) and —
  because ``(time, seq)`` is unique — heap comparisons never reach the
  callback, so they run entirely in C.  This is the engine's hot path:
  no per-event wrapper object is allocated anywhere.  ``args`` is
  normally an argument tuple; as a further fast path for the sim core's
  open-coded scheduling sites, a non-tuple ``args`` value is passed as
  the callback's single positional argument (``fn(args)``), skipping
  one tuple allocation and unpack per event.
* Cancellation marks the entry in place (``entry[2] = None``) and is
  skipped when popped.  This refines the classic lazy-deletion side-set:
  cancel stays O(1), the hot pop path pays one identity test instead of
  a set lookup, and a live-event counter makes :meth:`Simulator.pending`
  O(1) as well.  The run loop also marks entries as it executes them,
  so cancelling an already-fired event is an exact no-op.
* :meth:`Simulator.schedule` returns a cancellable :class:`Event`
  handle.  Hot callers that never cancel (link serialization, packet
  delivery, media ticks) should use the allocation-free
  :meth:`Simulator.call_later` / :meth:`Simulator.call_at` instead, and
  periodic sources with a precomputed transmission plan should batch
  through :meth:`Simulator.schedule_many`.
* :class:`Timer` wraps the common restartable-timeout pattern used by TCP
  retransmission and delayed-ACK timers, working on raw heap entries so
  per-ACK restarts allocate nothing but the entry itself.
"""

from heapq import heappop, heappush

_INFINITY = float("inf")

#: Cumulative events executed by every Simulator in this process — perf
#: accounting for ``python -m repro perf`` (updated once per ``run()``
#: call, not per event).
_total_events = 0


def total_events():
    """Process-wide executed-event count (see :mod:`repro.perf.bench`)."""
    return _total_events


class SimTimeError(ValueError):
    """Raised when an event is scheduled in the past."""


class Event:
    """A cancellable handle for one scheduled callback.

    Returned by :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at`.
    ``cancel()`` is idempotent and exact: cancelling an event that
    already ran (or was already cancelled) changes nothing but the
    ``cancelled`` flag.
    """

    __slots__ = ("_sim", "_entry", "cancelled")

    def __init__(self, sim, entry):
        self._sim = sim
        self._entry = entry
        self.cancelled = False

    @property
    def time(self):
        """Absolute simulated time the callback fires at."""
        return self._entry[0]

    @property
    def seq(self):
        """Scheduling sequence number (the FIFO tie-breaker)."""
        return self._entry[1]

    def cancel(self):
        """Prevent the callback from running (idempotent)."""
        self.cancelled = True
        entry = self._entry
        if entry[2] is not None:
            entry[2] = None
            self._sim._live -= 1

    def __repr__(self):
        state = " cancelled" if self.cancelled else ""
        return "Event(t=%.9f, fn=%r%s)" % (
            self._entry[0], self._entry[2], state)


class Simulator:
    """The event loop.  All times are seconds on a simulated clock."""

    def __init__(self):
        self.now = 0.0
        self._heap = []
        self._seq = 0
        self._stopped = False
        self._live = 0  # non-cancelled entries still in the heap
        self.events_executed = 0  # cumulative, across run() calls

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(self, time, fn, *args):
        """Schedule ``fn(*args)`` at absolute ``time``; no handle.

        The allocation-free fast path: use it wherever the caller never
        cancels.  Use :meth:`schedule_at` when a cancellable
        :class:`Event` handle is needed.
        """
        if time < self.now:
            raise SimTimeError(
                "cannot schedule at %.9f; clock already at %.9f" % (time, self.now)
            )
        self._seq = seq = self._seq + 1
        heappush(self._heap, [time, seq, fn, args])
        self._live += 1

    def call_later(self, delay, fn, *args):
        """Schedule ``fn(*args)`` after ``delay`` seconds; no handle."""
        time = self.now + delay
        if time < self.now:
            raise SimTimeError(
                "cannot schedule at %.9f; clock already at %.9f" % (time, self.now)
            )
        self._seq = seq = self._seq + 1
        heappush(self._heap, [time, seq, fn, args])
        self._live += 1

    def schedule_at(self, time, fn, *args):
        """Schedule ``fn(*args)`` at absolute simulated ``time``.

        Returns a cancellable :class:`Event` handle.
        """
        if time < self.now:
            raise SimTimeError(
                "cannot schedule at %.9f; clock already at %.9f" % (time, self.now)
            )
        self._seq = seq = self._seq + 1
        entry = [time, seq, fn, args]
        heappush(self._heap, entry)
        self._live += 1
        return Event(self, entry)

    def schedule(self, delay, fn, *args):
        """Schedule ``fn(*args)`` after ``delay`` seconds (cancellable)."""
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_many(self, events):
        """Batch-schedule ``(delay, fn, args)`` triples; returns None.

        Equivalent to ``for delay, fn, args in events: call_later(...)``
        — same sequence numbers, same FIFO tie-breaking — but with the
        per-call overhead hoisted out of the loop.  Media sources with a
        precomputed transmission plan (video pacing, staggered flow
        launches, session start ticks) push hundreds of events at once
        through this.
        """
        now = self.now
        heap = self._heap
        push = heappush
        seq = self._seq
        count = 0
        try:
            for delay, fn, args in events:
                time = now + delay
                if time < now:
                    raise SimTimeError(
                        "cannot schedule at %.9f; clock already at %.9f"
                        % (time, now)
                    )
                seq += 1
                push(heap, [time, seq, fn, args])
                count += 1
        finally:
            self._seq = seq
            self._live += count

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until=None, max_events=None):
        """Run events until the heap drains, ``until`` or ``max_events``.

        Returns the number of events executed.  When ``until`` is given the
        clock is advanced to ``until`` even if the heap drained earlier, so
        that back-to-back ``run`` calls behave like one continuous run.  A
        ``max_events`` break leaves the clock on the last executed event:
        fast-forwarding past still-pending events would make the next
        ``run`` move the clock backwards and ``schedule_at`` spuriously
        reject legal times.  ``max_events <= 0`` executes nothing.
        """
        global _total_events
        heap = self._heap
        pop = heappop
        tuple_type = tuple
        limit = _INFINITY if until is None else until
        executed = 0
        self._stopped = False
        if max_events is not None and max_events <= 0:
            return 0
        while heap:
            # Pop-first: cheaper than peek-then-pop on the hot path; the
            # rare beyond-limit entry is pushed back (once per run call).
            entry = pop(heap)
            time = entry[0]
            if time > limit:
                heappush(heap, entry)
                break
            fn = entry[2]
            if fn is None:
                continue  # cancelled; lazily discarded
            self.now = time
            entry[2] = None  # mark executed: cancel() becomes a no-op
            self._live -= 1
            args = entry[3]
            if type(args) is tuple_type:
                fn(*args)
            else:
                fn(args)  # scalar-arg fast path (see module docstring)
            executed += 1
            if executed == max_events or self._stopped:
                break
        if until is not None and until > self.now and not self._stopped:
            while heap and heap[0][2] is None:
                pop(heap)
            if not heap or heap[0][0] > until:
                self.now = until
        self.events_executed += executed
        _total_events += executed
        return executed

    def stop(self):
        """Stop :meth:`run` after the currently executing event."""
        self._stopped = True

    def pending(self):
        """Number of live (non-cancelled) events still queued — O(1)."""
        return self._live

    def __repr__(self):
        return "Simulator(now=%.6f, pending=%d)" % (self.now, self._live)


class Timer:
    """A restartable one-shot timer bound to a simulator.

    Wraps the schedule/cancel/reschedule dance of protocol timers::

        timer = Timer(sim, self._on_rto)
        timer.start(1.0)     # arm
        timer.restart(2.0)   # re-arm, cancelling the pending expiry
        timer.cancel()       # disarm

    Works on raw heap entries, so the per-ACK RTO restart of every TCP
    connection costs one list, not an :class:`Event` handle on top.
    """

    __slots__ = ("_sim", "_fn", "_entry", "_cb")

    def __init__(self, sim, fn):
        self._sim = sim
        self._fn = fn
        self._entry = None
        self._cb = self._fire  # bound once; _arm runs per RTO restart

    @property
    def active(self):
        """True while the timer is armed and has not fired."""
        entry = self._entry
        return entry is not None and entry[2] is not None

    @property
    def expiry(self):
        """Absolute expiry time, or None when disarmed."""
        if self.active:
            return self._entry[0]
        return None

    def start(self, delay):
        """Arm the timer; raises if already armed (use restart)."""
        entry = self._entry
        if entry is not None and entry[2] is not None:  # inline .active
            raise RuntimeError("timer already armed")
        self._arm(delay)

    def restart(self, delay):
        """Arm the timer, cancelling any pending expiry first.

        Inlines cancel + arm: TCP restarts its RTO timer on every ACK.
        """
        sim = self._sim
        entry = self._entry
        if entry is not None and entry[2] is not None:
            entry[2] = None
            sim._live -= 1
        time = sim.now + delay
        if time < sim.now:
            raise SimTimeError(
                "cannot schedule at %.9f; clock already at %.9f"
                % (time, sim.now)
            )
        sim._seq = seq = sim._seq + 1
        entry = [time, seq, self._cb, ()]
        heappush(sim._heap, entry)
        sim._live += 1
        self._entry = entry

    def _arm(self, delay):
        sim = self._sim
        time = sim.now + delay
        if time < sim.now:
            raise SimTimeError(
                "cannot schedule at %.9f; clock already at %.9f"
                % (time, sim.now)
            )
        sim._seq = seq = sim._seq + 1
        entry = [time, seq, self._cb, ()]
        heappush(sim._heap, entry)
        sim._live += 1
        self._entry = entry

    def cancel(self):
        """Disarm the timer (idempotent)."""
        entry = self._entry
        if entry is not None:
            if entry[2] is not None:
                entry[2] = None
                self._sim._live -= 1
            self._entry = None

    def _fire(self):
        self._entry = None
        self._fn()
