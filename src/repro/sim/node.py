"""Hosts and routers.

A :class:`Node` both terminates transport protocols (host role) and
forwards packets it does not own (router role); the dumbbell topologies
use the same class for both.  Demultiplexing follows the usual socket
model:

* TCP: established connections are keyed by
  ``(peer_addr, peer_port, local_port)``; SYNs with no matching
  connection go to the listener registered on the destination port.
* UDP: sockets are keyed by local port.

Packets addressed to a port nobody listens on are dropped silently (the
simulator has no RSTs/ICMP; nothing in the study needs them).
"""


class Node:
    """A network element with interfaces, routes and transport endpoints."""

    def __init__(self, sim, name, addr):
        self.sim = sim
        self.name = name
        self.addr = addr
        self.routes = {}
        self.default_route = None
        self.tcp_connections = {}
        self.tcp_listeners = {}
        self.udp_sockets = {}
        self._next_port = 10_000
        self.forwarded = 0

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def add_route(self, dst_addr, interface):
        """Send packets for ``dst_addr`` out of ``interface``."""
        self.routes[dst_addr] = interface

    def set_default_route(self, interface):
        """Fallback interface for destinations without a specific route."""
        self.default_route = interface

    def route_for(self, dst_addr):
        """Resolve the output interface for ``dst_addr`` (or raise)."""
        interface = self.routes.get(dst_addr, self.default_route)
        if interface is None:
            raise LookupError("%s has no route to %r" % (self.name, dst_addr))
        return interface

    def send(self, packet):
        """Transmit ``packet`` toward its destination.

        Returns False if the output queue dropped it.
        """
        return self.route_for(packet.dst).send(packet)

    # ------------------------------------------------------------------
    # Reception / forwarding
    # ------------------------------------------------------------------
    def receive(self, packet):
        """Entry point for packets arriving from a link."""
        if packet.dst != self.addr:
            self.forwarded += 1
            self.send(packet)
            return
        if packet.proto == "tcp":
            self._deliver_tcp(packet)
        elif packet.proto == "udp":
            self._deliver_udp(packet)

    def _deliver_tcp(self, packet):
        key = (packet.src, packet.sport, packet.dport)
        connection = self.tcp_connections.get(key)
        if connection is not None:
            connection.handle_packet(packet)
            return
        listener = self.tcp_listeners.get(packet.dport)
        if listener is not None:
            listener.handle_packet(packet)

    def _deliver_udp(self, packet):
        socket = self.udp_sockets.get(packet.dport)
        if socket is not None:
            socket.handle_packet(packet)

    # ------------------------------------------------------------------
    # Endpoint registry (used by the transport layers)
    # ------------------------------------------------------------------
    def allocate_port(self):
        """Hand out a unique ephemeral port."""
        port = self._next_port
        self._next_port += 1
        return port

    def register_tcp(self, peer_addr, peer_port, local_port, connection):
        key = (peer_addr, peer_port, local_port)
        if key in self.tcp_connections:
            raise ValueError("TCP connection %r already registered" % (key,))
        self.tcp_connections[key] = connection

    def unregister_tcp(self, peer_addr, peer_port, local_port):
        self.tcp_connections.pop((peer_addr, peer_port, local_port), None)

    def register_tcp_listener(self, port, listener):
        if port in self.tcp_listeners:
            raise ValueError("port %d already has a listener" % port)
        self.tcp_listeners[port] = listener

    def unregister_tcp_listener(self, port):
        self.tcp_listeners.pop(port, None)

    def register_udp(self, port, socket):
        if port in self.udp_sockets:
            raise ValueError("UDP port %d already bound" % port)
        self.udp_sockets[port] = socket

    def unregister_udp(self, port):
        self.udp_sockets.pop(port, None)

    def __repr__(self):
        return "Node(%s, addr=%d)" % (self.name, self.addr)
