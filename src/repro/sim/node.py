"""Hosts and routers.

A :class:`Node` both terminates transport protocols (host role) and
forwards packets it does not own (router role); the dumbbell topologies
use the same class for both.  Demultiplexing follows the usual socket
model:

* TCP: established connections are keyed by
  ``(peer_addr, peer_port, local_port)``, packed into a single integer
  on the hot path (ports are 16-bit; addresses are small simulation
  integers) so demultiplexing hashes one int instead of a tuple; SYNs
  with no matching connection go to the listener registered on the
  destination port.
* UDP: sockets are keyed by local port.

Packets addressed to a port nobody listens on are dropped silently (the
simulator has no RSTs/ICMP; nothing in the study needs them).
"""

from heapq import heappush

from repro.sim import packet as _packet_module
from repro.sim.packet import _POOL_CAP as _PACKET_POOL_CAP
from repro.sim.packet import _pool as _packet_pool


class Node:
    """A network element with interfaces, routes and transport endpoints.

    :meth:`receive` is the per-packet hot path: it inlines the TCP/UDP
    demultiplexing (rather than dispatching through the ``_deliver_*``
    helpers) and returns locally delivered packets to the
    :mod:`repro.sim.packet` pool once the transport callback has run —
    transports must not retain delivered packets (see
    docs/ARCHITECTURE.md).
    """

    __slots__ = ("sim", "name", "addr", "routes", "default_route",
                 "tcp_connections", "tcp_listeners", "udp_sockets",
                 "_next_port", "forwarded")

    def __init__(self, sim, name, addr):
        self.sim = sim
        self.name = name
        self.addr = addr
        self.routes = {}
        self.default_route = None
        self.tcp_connections = {}
        self.tcp_listeners = {}
        self.udp_sockets = {}
        self._next_port = 10_000
        self.forwarded = 0

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def add_route(self, dst_addr, interface):
        """Send packets for ``dst_addr`` out of ``interface``."""
        self.routes[dst_addr] = interface

    def set_default_route(self, interface):
        """Fallback interface for destinations without a specific route."""
        self.default_route = interface

    def route_for(self, dst_addr):
        """Resolve the output interface for ``dst_addr`` (or raise)."""
        interface = self.routes.get(dst_addr, self.default_route)
        if interface is None:
            raise LookupError("%s has no route to %r" % (self.name, dst_addr))
        return interface

    def send(self, packet):
        """Transmit ``packet`` toward its destination.

        Returns False if the output queue dropped it.  Open-codes
        Interface.send like the forwarding branch of :meth:`receive`:
        every transport segment enters the network here.
        """
        interface = self.routes.get(packet.dst, self.default_route)
        if interface is None:
            raise LookupError(
                "%s has no route to %r" % (self.name, packet.dst))
        sim = interface.sim
        now = sim.now
        accepted = interface._q_push(packet, now)
        if accepted and not interface._busy:
            packet = interface._q_pop(now)
            if packet is not None:
                interface._busy = True
                interface._tx_started = now
                sim._seq = seq = sim._seq + 1
                heappush(sim._heap,
                         [now + (packet.size * 8.0) / interface.rate_bps,
                          seq, interface._tx_done_cb, packet])
                sim._live += 1
        return accepted

    # ------------------------------------------------------------------
    # Reception / forwarding
    # ------------------------------------------------------------------
    def receive(self, packet):
        """Entry point for packets arriving from a link."""
        if packet.dst != self.addr:
            # Forwarding: two of the three hops of every packet cross
            # this branch, so it open-codes Interface.send (push, and
            # start the serializer when idle) — keep in lock-step with
            # repro.sim.link.
            self.forwarded += 1
            interface = self.routes.get(packet.dst, self.default_route)
            if interface is None:
                raise LookupError(
                    "%s has no route to %r" % (self.name, packet.dst))
            sim = interface.sim
            now = sim.now
            if interface._q_push(packet, now) and not interface._busy:
                packet = interface._q_pop(now)
                if packet is not None:
                    interface._busy = True
                    interface._tx_started = now
                    sim._seq = seq = sim._seq + 1
                    heappush(sim._heap,
                             [now + (packet.size * 8.0) / interface.rate_bps,
                              seq, interface._tx_done_cb, packet])
                    sim._live += 1
            return
        proto = packet.proto
        if proto == "tcp":
            connection = self.tcp_connections.get(
                (packet.src << 32) | (packet.sport << 16) | packet.dport)
            if connection is not None:
                connection.handle_packet(packet)
            else:
                listener = self.tcp_listeners.get(packet.dport)
                if listener is not None:
                    listener.handle_packet(packet)
        elif proto == "udp":
            socket = self.udp_sockets.get(packet.dport)
            if socket is not None:
                socket.handle_packet(packet)
        # The packet has left the simulation: recycle it (inline
        # Packet.release — one call per delivered packet).  Transport
        # callbacks must not have kept a reference (pooling contract).
        if (_packet_module.POOL_ENABLED and not packet._pooled
                and len(_packet_pool) < _PACKET_POOL_CAP):
            packet._pooled = True
            _packet_pool.append(packet)

    # ------------------------------------------------------------------
    # Endpoint registry (used by the transport layers)
    # ------------------------------------------------------------------
    def allocate_port(self):
        """Hand out a unique ephemeral port."""
        port = self._next_port
        self._next_port += 1
        return port

    @staticmethod
    def _tcp_key(peer_addr, peer_port, local_port):
        """Pack the demux triple into the int key used on the hot path."""
        if not (0 <= peer_port < 65536 and 0 <= local_port < 65536
                and peer_addr >= 0):
            raise ValueError("cannot key TCP connection (%r, %r, %r)"
                             % (peer_addr, peer_port, local_port))
        return (peer_addr << 32) | (peer_port << 16) | local_port

    def register_tcp(self, peer_addr, peer_port, local_port, connection):
        key = self._tcp_key(peer_addr, peer_port, local_port)
        if key in self.tcp_connections:
            raise ValueError("TCP connection %r already registered"
                             % ((peer_addr, peer_port, local_port),))
        self.tcp_connections[key] = connection

    def unregister_tcp(self, peer_addr, peer_port, local_port):
        self.tcp_connections.pop(
            self._tcp_key(peer_addr, peer_port, local_port), None)

    def register_tcp_listener(self, port, listener):
        if port in self.tcp_listeners:
            raise ValueError("port %d already has a listener" % port)
        self.tcp_listeners[port] = listener

    def unregister_tcp_listener(self, port):
        self.tcp_listeners.pop(port, None)

    def register_udp(self, port, socket):
        if port in self.udp_sockets:
            raise ValueError("UDP port %d already bound" % port)
        self.udp_sockets[port] = socket

    def unregister_udp(self, port):
        self.udp_sockets.pop(port, None)

    def __repr__(self):
        return "Node(%s, addr=%d)" % (self.name, self.addr)
