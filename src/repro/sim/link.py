"""Store-and-forward output interfaces.

An :class:`Interface` models one *direction* of a link: an output queue,
a serializer running at ``rate_bps`` and a propagation delay to the
receiving node.  Buffers under study live in the queue attached to the
bottleneck interfaces; all QoS measurements (utilization, loss, queueing
delay) are taken here.

An interface may additionally model a lossy channel (``loss_rate``):
each successfully serialized packet is then dropped *on the wire* with
that probability, independently of the queue.  This approximates a
wireless-like access link where corruption loss is unrelated to
congestion.  The loss process is driven by a private generator seeded
from the interface name, so results stay bit-identical across runs and
worker processes.
"""

import hashlib
import random
from heapq import heappush


def _stable_seed(name):
    """Process-independent integer seed derived from an interface name."""
    digest = hashlib.sha256(name.encode("utf-8")).hexdigest()
    return int(digest[:16], 16)


class InterfaceStats:
    """Resettable transmit counters for one interface."""

    __slots__ = ("tx_packets", "tx_bytes", "busy_time", "window_start")

    def __init__(self, now=0.0):
        self.reset(now)

    def reset(self, now=0.0):
        self.tx_packets = 0
        self.tx_bytes = 0
        self.busy_time = 0.0
        self.window_start = now

    def utilization(self, rate_bps, now):
        """Mean utilization over the current measurement window."""
        elapsed = now - self.window_start
        if elapsed <= 0:
            return 0.0
        return min(1.0, (self.tx_bytes * 8.0) / (rate_bps * elapsed))


class Interface:
    """One direction of a point-to-point link.

    Hot-path notes: the serializer chain (``send`` → ``_tx_done`` /
    ``_tx_done_unmetered``) runs once per packet per hop and open-codes
    both the engine's scheduling and the start-of-next-transmission
    logic (the same inline block also lives in ``Node.send`` and
    ``Node.receive``'s forward branch); packets lost on the wire are
    returned to the :mod:`repro.sim.packet` pool here, delivered
    packets by the receiving node.

    Parameters
    ----------
    sim:
        The driving :class:`repro.sim.engine.Simulator`.
    name:
        Diagnostic label, e.g. ``"homerouter->dslam"``.
    rate_bps:
        Serialization rate in bit/s.
    prop_delay:
        One-way propagation delay in seconds.
    queue:
        A :class:`repro.sim.queues.Queue` holding packets awaiting
        serialization.  The buffer size under study is this queue's
        capacity.
    dst_node:
        Receiving :class:`repro.sim.node.Node` (set later via
        :meth:`connect` if not known at construction).
    loss_rate:
        Probability in ``[0, 1]`` that a serialized packet is lost on
        the wire (wireless-like corruption loss); 0.0 models a clean
        wire.  Lost packets still consume serialization time and count
        as transmitted in the interface statistics — they vanish between
        the sender and the receiver, as on a real radio link — and are
        tallied in :attr:`wire_drops`.
    metered:
        When False the interface skips its per-packet transmit
        statistics entirely (``stats`` stays zeroed and
        :meth:`utilization` reports 0).  Topologies use this for edge
        links, whose counters nothing ever reads; the links under
        *study* stay metered.  The choice is made once, by binding the
        serializer-completion callback, so metered interfaces pay no
        extra branch.
    """

    __slots__ = ("sim", "name", "rate_bps", "prop_delay", "queue",
                 "dst_node", "loss_rate", "wire_drops", "_loss_rng",
                 "stats", "_busy", "_tx_started", "_tx_done_cb",
                 "_deliver_cb", "_q_push", "_q_pop", "metered")

    def __init__(self, sim, name, rate_bps, prop_delay, queue, dst_node=None,
                 loss_rate=0.0, metered=True):
        self.sim = sim
        self.name = name
        self.rate_bps = float(rate_bps)
        self.prop_delay = float(prop_delay)
        self.queue = queue
        self.dst_node = dst_node
        self.loss_rate = float(loss_rate)
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1), got %r"
                             % (loss_rate,))
        #: Packets lost on the wire (corruption, not queue overflow).
        self.wire_drops = 0
        self._loss_rng = (random.Random(_stable_seed(name))
                         if self.loss_rate > 0.0 else None)
        self.stats = InterfaceStats()
        self._busy = False
        self._tx_started = 0.0
        # Bound-method caches: creating a bound method per scheduled
        # event (or per queue operation) is measurable at packet rates.
        self.metered = bool(metered)
        self._tx_done_cb = (self._tx_done if self.metered
                            else self._tx_done_unmetered)
        self._deliver_cb = dst_node.receive if dst_node is not None else None
        self._q_push = queue.push
        self._q_pop = queue.pop

    def connect(self, dst_node):
        """Attach the receiving node."""
        self.dst_node = dst_node
        self._deliver_cb = dst_node.receive if dst_node is not None else None

    # ------------------------------------------------------------------
    # The send/_tx_done pair below runs once per packet per hop — the
    # single hottest path in the simulator.  It open-codes the engine's
    # ``call_later`` (same ``[time, seq, fn, args]`` entries, same
    # sequence-number order, no negative delays possible here), so keep
    # it in lock-step with :class:`repro.sim.engine.Simulator`.
    def send(self, packet):
        """Queue ``packet`` for transmission; start the serializer if idle.

        Returns False when the queue dropped the packet.
        """
        sim = self.sim
        now = sim.now
        accepted = self._q_push(packet, now)
        if accepted and not self._busy:
            packet = self._q_pop(now)
            if packet is not None:
                self._busy = True
                self._tx_started = now
                sim._seq = seq = sim._seq + 1
                heappush(sim._heap,
                         [now + (packet.size * 8.0) / self.rate_bps, seq,
                          self._tx_done_cb, packet])
                sim._live += 1
        return accepted

    def _tx_done(self, packet):
        sim = self.sim
        now = sim.now
        stats = self.stats
        stats.tx_packets += 1
        # A packet in flight across a reset_stats() only counts for the part
        # of its serialization inside the new window; crediting the whole
        # size would overstate post-warm-up utilization on slow links.
        started = self._tx_started
        tx_time = now - started
        if started < stats.window_start:
            started = stats.window_start
        if tx_time > 0.0:
            stats.tx_bytes += packet.size * (now - started) / tx_time
        else:
            stats.tx_bytes += packet.size
        stats.busy_time += now - started
        if self._loss_rng is not None and self._loss_rng.random() < self.loss_rate:
            self.wire_drops += 1
            packet.release()
        elif self._deliver_cb is not None:
            sim._seq = seq = sim._seq + 1
            heappush(sim._heap,
                     [now + self.prop_delay, seq, self._deliver_cb,
                      packet])
            sim._live += 1
        # Start serializing the next queued packet (inline _start_next:
        # this tail runs once per transmitted packet).
        packet = self._q_pop(now)
        if packet is None:
            self._busy = False
            return
        self._tx_started = now
        sim._seq = seq = sim._seq + 1
        heappush(sim._heap,
                 [now + (packet.size * 8.0) / self.rate_bps, seq,
                  self._tx_done_cb, packet])
        sim._live += 1

    def _tx_done_unmetered(self, packet):
        """Serializer completion for unmetered (edge) interfaces.

        Identical to :meth:`_tx_done` minus the statistics block; bound
        as ``_tx_done_cb`` at construction so the choice costs nothing
        per packet.
        """
        sim = self.sim
        now = sim.now
        if self._loss_rng is not None and self._loss_rng.random() < self.loss_rate:
            self.wire_drops += 1
            packet.release()
        elif self._deliver_cb is not None:
            sim._seq = seq = sim._seq + 1
            heappush(sim._heap,
                     [now + self.prop_delay, seq, self._deliver_cb,
                      packet])
            sim._live += 1
        packet = self._q_pop(now)
        if packet is None:
            self._busy = False
            return
        self._tx_started = now
        sim._seq = seq = sim._seq + 1
        heappush(sim._heap,
                 [now + (packet.size * 8.0) / self.rate_bps, seq,
                  self._tx_done_cb, packet])
        sim._live += 1

    # ------------------------------------------------------------------
    @property
    def busy(self):
        """True while a packet is being serialized."""
        return self._busy

    def reset_stats(self):
        """Zero both interface and queue measurement counters (post warm-up)."""
        self.stats.reset(self.sim.now)
        self.queue.stats.reset()

    def utilization(self):
        """Utilization since the last :meth:`reset_stats`."""
        return self.stats.utilization(self.rate_bps, self.sim.now)

    def serialization_delay(self, nbytes):
        """Time to serialize ``nbytes`` at this interface's rate."""
        return (nbytes * 8.0) / self.rate_bps

    def __repr__(self):
        return "Interface(%s, %.0f bit/s, q=%d)" % (
            self.name,
            self.rate_bps,
            len(self.queue),
        )
