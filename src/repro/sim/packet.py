"""Packet model.

A single slotted class carries every protocol the reproduction needs.
Keeping one concrete type (instead of a subclass per protocol) keeps the
hot path — queue/link handling, which only reads ``size`` — free of
dynamic dispatch, while transport demultiplexing switches on ``proto``.

Sizes are *wire* sizes in bytes, i.e. payload plus IP/transport header
overhead, because the buffers under study are counted in (full-sized)
packets and the links serialize wire bytes.

Pooling
-------
The enqueue→serialize→deliver hot path creates one :class:`Packet` per
segment; at backbone rates that is tens of thousands of allocations per
simulated second.  :meth:`Packet.alloc` hands out packets from a
process-wide free list refilled by :meth:`Packet.release`, which the sim
core calls at the two points where a packet provably leaves the
simulation: final delivery to a local transport endpoint
(:meth:`repro.sim.node.Node.receive`) and corruption loss on the wire
(:meth:`repro.sim.link.Interface._tx_done`).  Packet ids keep their
global allocation order whether or not a packet came from the pool, so
pooled runs are bit-identical to unpooled runs
(``REPRO_PACKET_POOL=0`` disables the pool entirely).

The contract for transport/application callbacks: **do not retain a
reference to a delivered Packet past the callback** — keep the
``payload`` object instead (it is never recycled).  See
docs/ARCHITECTURE.md.
"""

import os
from itertools import count

# TCP flag bits.
FLAG_SYN = 0x1
FLAG_ACK = 0x2
FLAG_FIN = 0x4

# Wire overheads (bytes).
IPV4_HEADER = 20
TCP_HEADER = 20  # without options; timestamps are modelled, not serialized
UDP_HEADER = 8
RTP_HEADER = 12

_packet_ids = count(1)

#: Free list shared by every simulation in the process.  Bounded so a
#: pathological run cannot pin unbounded memory in dead packets.
_pool = []
_POOL_CAP = 8192

POOL_ENABLED = os.environ.get("REPRO_PACKET_POOL", "1") != "0"


class Packet:
    """One packet on the wire.

    Attributes
    ----------
    src, dst:
        Integer node addresses.
    sport, dport:
        Transport ports.
    proto:
        ``"tcp"`` or ``"udp"``.
    size:
        Wire size in bytes (headers included).
    seq, ack_no, flags, payload_len, ts, ts_echo:
        TCP fields (byte sequence numbers; ``ts``/``ts_echo`` model the
        timestamp option used for Karn-safe RTT sampling; ``ts_echo < 0``
        means "nothing to echo" — simulated time 0.0 is a valid stamp).
    payload:
        Opaque application object (RTP frame descriptors, HTTP message
        markers...).  Never inspected below the transport layer.
    created, enqueued_at:
        Timestamps for delay accounting.
    """

    __slots__ = (
        "pid",
        "src",
        "dst",
        "sport",
        "dport",
        "proto",
        "size",
        "seq",
        "ack_no",
        "flags",
        "payload_len",
        "ts",
        "ts_echo",
        "payload",
        "created",
        "enqueued_at",
        "_pooled",
    )

    def __init__(
        self,
        src,
        dst,
        sport,
        dport,
        proto,
        size,
        seq=0,
        ack_no=0,
        flags=0,
        payload_len=0,
        ts=0.0,
        ts_echo=-1.0,
        payload=None,
        created=0.0,
    ):
        self.pid = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.sport = sport
        self.dport = dport
        self.proto = proto
        self.size = size
        self.seq = seq
        self.ack_no = ack_no
        self.flags = flags
        self.payload_len = payload_len
        self.ts = ts
        self.ts_echo = ts_echo
        self.payload = payload
        self.created = created
        self.enqueued_at = 0.0
        self._pooled = False

    @classmethod
    def alloc(
        cls,
        src,
        dst,
        sport,
        dport,
        proto,
        size,
        seq=0,
        ack_no=0,
        flags=0,
        payload_len=0,
        ts=0.0,
        ts_echo=-1.0,
        payload=None,
        created=0.0,
    ):
        """Construct a packet, reusing a pooled instance when possible.

        Field-for-field equivalent to the constructor — including the
        freshly drawn ``pid`` — so pooling never changes results.
        """
        if not _pool:
            return cls(src, dst, sport, dport, proto, size, seq, ack_no,
                       flags, payload_len, ts, ts_echo, payload, created)
        self = _pool.pop()
        self.pid = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.sport = sport
        self.dport = dport
        self.proto = proto
        self.size = size
        self.seq = seq
        self.ack_no = ack_no
        self.flags = flags
        self.payload_len = payload_len
        self.ts = ts
        self.ts_echo = ts_echo
        self.payload = payload
        self.created = created
        self.enqueued_at = 0.0
        self._pooled = False
        return self

    def release(self):
        """Return this packet to the free list (sim-core use only).

        Safe to call on any packet at an ownership boundary: double
        releases and releases with pooling disabled are no-ops.  The
        ``payload`` reference is kept intact until the instance is
        actually reused, so late readers of an already-released packet
        (tests, logs) still see its final state.
        """
        if POOL_ENABLED and not self._pooled and len(_pool) < _POOL_CAP:
            self._pooled = True
            _pool.append(self)

    def flag_names(self):
        """Human-readable flag list (for logs and tests)."""
        names = []
        if self.flags & FLAG_SYN:
            names.append("SYN")
        if self.flags & FLAG_ACK:
            names.append("ACK")
        if self.flags & FLAG_FIN:
            names.append("FIN")
        return names

    def __repr__(self):
        core = "%s %d:%d>%d:%d size=%d" % (
            self.proto,
            self.src,
            self.sport,
            self.dst,
            self.dport,
            self.size,
        )
        if self.proto == "tcp":
            core += " seq=%d ack=%d len=%d %s" % (
                self.seq,
                self.ack_no,
                self.payload_len,
                "|".join(self.flag_names()),
            )
        return "Packet(%s)" % core


def tcp_wire_size(payload_len):
    """Wire size of a TCP segment carrying ``payload_len`` bytes."""
    return IPV4_HEADER + TCP_HEADER + payload_len


def udp_wire_size(payload_len):
    """Wire size of a UDP datagram carrying ``payload_len`` bytes."""
    return IPV4_HEADER + UDP_HEADER + payload_len
