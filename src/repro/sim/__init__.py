"""Packet-level discrete-event network simulator.

This package is the "testbed hardware" substrate of the reproduction:
an event engine (:mod:`repro.sim.engine`), packets
(:mod:`repro.sim.packet`), queue disciplines including drop-tail, RED and
CoDel (:mod:`repro.sim.queues`), store-and-forward links
(:mod:`repro.sim.link`), hosts/routers (:mod:`repro.sim.node`) and the two
dumbbell topologies used by the paper (:mod:`repro.sim.topology`).
"""

from repro.sim.engine import Event, SimTimeError, Simulator, Timer
from repro.sim.link import Interface
from repro.sim.node import Node
from repro.sim.packet import FLAG_ACK, FLAG_FIN, FLAG_SYN, Packet
from repro.sim.queues import CoDelQueue, DropTailQueue, Queue, QueueStats, REDQueue
from repro.sim.topology import (
    AccessNetwork,
    BackboneNetwork,
    DumbbellNetwork,
)

__all__ = [
    "Event",
    "SimTimeError",
    "Simulator",
    "Timer",
    "Interface",
    "Node",
    "Packet",
    "FLAG_SYN",
    "FLAG_ACK",
    "FLAG_FIN",
    "Queue",
    "QueueStats",
    "DropTailQueue",
    "REDQueue",
    "CoDelQueue",
    "AccessNetwork",
    "BackboneNetwork",
    "DumbbellNetwork",
]
