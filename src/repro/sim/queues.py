"""Queue disciplines for bottleneck interfaces.

The paper studies plain drop-tail FIFOs sized in packets (the NetFPGA
Stanford reference router and Cisco line cards both drop at the tail), so
:class:`DropTailQueue` is the workhorse.  :class:`REDQueue` and
:class:`CoDelQueue` implement the AQM schemes the bufferbloat debate
motivates (paper §1/§3 cite CoDel) and power the ablation benchmarks.

All queues share the :class:`Queue` interface used by
:class:`repro.sim.link.Interface`:

* ``push(packet, now)`` → bool — False means the packet was dropped.
* ``pop(now)`` → packet or None — AQM heads may drop here too.

Statistics (:class:`QueueStats`) are collected uniformly: enqueue/drop
counters, byte counters and sojourn-time aggregates.
"""

import math
from collections import deque


class QueueStats:
    """Counters and sojourn-time aggregates for one queue.

    ``reset()`` zeroes the *measurement* counters but not the queue
    contents; testbeds call it after warm-up so that reported utilization
    and loss cover only the measurement window.
    """

    __slots__ = (
        "enqueued",
        "dropped",
        "dequeued",
        "bytes_enqueued",
        "bytes_dropped",
        "bytes_dequeued",
        "delay_sum",
        "delay_max",
        "delay_samples",
        "occupancy_samples",
    )

    def __init__(self):
        self.reset()

    def reset(self):
        self.enqueued = 0
        self.dropped = 0
        self.dequeued = 0
        self.bytes_enqueued = 0
        self.bytes_dropped = 0
        self.bytes_dequeued = 0
        self.delay_sum = 0.0
        self.delay_max = 0.0
        self.delay_samples = 0
        self.occupancy_samples = []

    @property
    def mean_delay(self):
        """Mean queueing delay (s) over dequeued packets."""
        if self.delay_samples == 0:
            return 0.0
        return self.delay_sum / self.delay_samples

    @property
    def mean_occupancy(self):
        """Mean queue depth (packets) observed at enqueue instants."""
        if not self.occupancy_samples:
            return 0.0
        return sum(self.occupancy_samples) / len(self.occupancy_samples)

    @property
    def loss_rate(self):
        """Fraction of arriving packets dropped."""
        arrived = self.enqueued + self.dropped
        if arrived == 0:
            return 0.0
        return self.dropped / arrived

    def record_enqueue(self, packet, occupancy=None):
        self.enqueued += 1
        self.bytes_enqueued += packet.size
        if occupancy is not None:
            self.occupancy_samples.append(occupancy)

    def record_drop(self, packet):
        self.dropped += 1
        self.bytes_dropped += packet.size

    def record_dequeue(self, packet, sojourn):
        self.dequeued += 1
        self.bytes_dequeued += packet.size
        self.delay_sum += sojourn
        self.delay_samples += 1
        if sojourn > self.delay_max:
            self.delay_max = sojourn


class Queue:
    """Abstract FIFO with drop policy.  Subclasses implement push/pop.

    The shared plumbing (``_accept``/``_reject``/``_take``) updates
    :class:`QueueStats` counters inline rather than through the
    ``record_*`` helpers: these run once per packet per hop and are part
    of the sim core's hot path.  The helpers remain the public API for
    out-of-band bookkeeping.
    """

    __slots__ = ("capacity_packets", "capacity_bytes", "stats", "_queue",
                 "_bytes")

    def __init__(self, capacity_packets=None, capacity_bytes=None):
        if capacity_packets is None and capacity_bytes is None:
            raise ValueError("queue needs a packet or byte capacity")
        self.capacity_packets = capacity_packets
        self.capacity_bytes = capacity_bytes
        self.stats = QueueStats()
        self._queue = deque()
        self._bytes = 0

    # -- state ----------------------------------------------------------
    def __len__(self):
        return len(self._queue)

    @property
    def byte_length(self):
        """Bytes currently queued."""
        return self._bytes

    def _would_overflow(self, packet):
        if self.capacity_packets is not None and len(self._queue) >= self.capacity_packets:
            return True
        if (
            self.capacity_bytes is not None
            and self._bytes + packet.size > self.capacity_bytes
        ):
            return True
        return False

    # -- interface ------------------------------------------------------
    def push(self, packet, now):
        raise NotImplementedError

    def pop(self, now):
        raise NotImplementedError

    # -- shared plumbing --------------------------------------------------
    def _accept(self, packet, now):
        queue = self._queue
        size = packet.size
        packet.enqueued_at = now
        queue.append(packet)
        self._bytes += size
        stats = self.stats
        stats.enqueued += 1
        stats.bytes_enqueued += size
        stats.occupancy_samples.append(len(queue))

    def _reject(self, packet):
        stats = self.stats
        stats.dropped += 1
        stats.bytes_dropped += packet.size

    def _take(self, now):
        packet = self._queue.popleft()
        size = packet.size
        self._bytes -= size
        sojourn = now - packet.enqueued_at
        stats = self.stats
        stats.dequeued += 1
        stats.bytes_dequeued += size
        stats.delay_sum += sojourn
        stats.delay_samples += 1
        if sojourn > stats.delay_max:
            stats.delay_max = sojourn
        return packet


class DropTailQueue(Queue):
    """Plain FIFO that drops arrivals once full — the paper's discipline.

    ``push``/``pop`` inline the shared plumbing: drop-tail queues sit on
    every hop of every topology, so this is the hottest queue code in
    the tree.
    """

    __slots__ = ()

    def push(self, packet, now):
        queue = self._queue
        size = packet.size
        occupancy = len(queue)
        capacity = self.capacity_packets
        if capacity is not None and occupancy >= capacity:
            self._reject(packet)
            return False
        capacity = self.capacity_bytes
        if capacity is not None and self._bytes + size > capacity:
            self._reject(packet)
            return False
        packet.enqueued_at = now
        queue.append(packet)
        self._bytes += size
        stats = self.stats
        stats.enqueued += 1
        stats.bytes_enqueued += size
        stats.occupancy_samples.append(occupancy + 1)
        return True

    def pop(self, now):
        queue = self._queue
        if not queue:
            return None
        packet = queue.popleft()
        size = packet.size
        self._bytes -= size
        sojourn = now - packet.enqueued_at
        stats = self.stats
        stats.dequeued += 1
        stats.bytes_dequeued += size
        stats.delay_sum += sojourn
        stats.delay_samples += 1
        if sojourn > stats.delay_max:
            stats.delay_max = sojourn
        return packet

    def __repr__(self):
        return "DropTailQueue(len=%d/%s)" % (len(self._queue), self.capacity_packets)


class UnmeteredDropTailQueue(DropTailQueue):
    """Drop-tail FIFO that skips per-packet statistics on the fast path.

    Edge (non-bottleneck) links never drop — their queues are sized far
    beyond any offered load — and nothing ever reads their counters, so
    the per-packet stats bookkeeping of :class:`DropTailQueue` is pure
    overhead there (two of the three hops of every packet).  Drops, if a
    misconfigured topology ever produces one, still fall back to the
    metered reject path so they remain visible in ``stats.dropped``.
    """

    __slots__ = ()

    def push(self, packet, now):
        queue = self._queue
        capacity = self.capacity_packets
        if capacity is not None and len(queue) >= capacity:
            self._reject(packet)
            return False
        capacity = self.capacity_bytes
        if capacity is not None and self._bytes + packet.size > capacity:
            self._reject(packet)
            return False
        # No enqueued_at stamp: nothing reads sojourn times on an
        # unmetered queue (the metered bottleneck re-stamps on its push).
        queue.append(packet)
        self._bytes += packet.size
        return True

    def pop(self, now):
        queue = self._queue
        if not queue:
            return None
        packet = queue.popleft()
        self._bytes -= packet.size
        return packet

    def __repr__(self):
        return "UnmeteredDropTailQueue(len=%d/%s)" % (
            len(self._queue), self.capacity_packets)


class REDQueue(Queue):
    """Random Early Detection (Floyd & Jacobson 1993), gentle variant.

    Drops probabilistically once the EWMA of the queue length exceeds
    ``min_th``, ramping to ``max_p`` at ``max_th`` and to 1.0 at
    ``2*max_th`` (gentle RED).  Counts are in packets, matching the
    packet-counted buffers of the paper.
    """

    __slots__ = ("min_th", "max_th", "max_p", "weight", "avg",
                 "_count_since_drop", "_idle_since", "_rng", "_weyl")

    def __init__(
        self,
        capacity_packets,
        min_th=None,
        max_th=None,
        max_p=0.1,
        weight=0.002,
        rng=None,
    ):
        super().__init__(capacity_packets=capacity_packets)
        self.min_th = min_th if min_th is not None else max(1.0, capacity_packets / 4.0)
        self.max_th = max_th if max_th is not None else max(2.0, capacity_packets / 2.0)
        self.max_p = max_p
        self.weight = weight
        self.avg = 0.0
        self._count_since_drop = -1
        self._idle_since = None
        self._rng = rng
        self._weyl = 0.0

    def _random(self):
        if self._rng is None:
            # Deterministic fallback: quasi-random Weyl sequence.  Keeps the
            # queue usable without an RNG while remaining well distributed.
            self._weyl = (self._weyl + 0.6180339887498949) % 1.0
            return self._weyl
        return float(self._rng.random())

    def _update_avg(self, now):
        if not self._queue and self._idle_since is not None:
            # Decay the average during idle periods (RFC 2309 style): assume
            # the queue drained m small packets while idle.
            idle = max(0.0, now - self._idle_since)
            m = idle / 0.002  # nominal small-packet transmission time
            self.avg *= (1.0 - self.weight) ** m
            self._idle_since = None
        self.avg += self.weight * (len(self._queue) - self.avg)

    def _drop_probability(self):
        if self.avg < self.min_th:
            return 0.0
        if self.avg < self.max_th:
            frac = (self.avg - self.min_th) / (self.max_th - self.min_th)
            return frac * self.max_p
        if self.avg < 2.0 * self.max_th:  # gentle region
            frac = (self.avg - self.max_th) / self.max_th
            return self.max_p + frac * (1.0 - self.max_p)
        return 1.0

    def push(self, packet, now):
        self._update_avg(now)
        if self._would_overflow(packet):
            self._reject(packet)
            self._count_since_drop = 0
            return False
        prob = self._drop_probability()
        if prob >= 1.0:
            self._reject(packet)
            self._count_since_drop = 0
            return False
        if prob > 0.0:
            self._count_since_drop += 1
            # Uniformize inter-drop gaps as in the original RED paper.
            denom = 1.0 - self._count_since_drop * prob
            effective = prob / denom if denom > 0 else 1.0
            if self._random() < effective:
                self._reject(packet)
                self._count_since_drop = 0
                return False
        else:
            self._count_since_drop = -1
        self._accept(packet, now)
        return True

    def pop(self, now):
        if not self._queue:
            return None
        packet = self._take(now)
        if not self._queue:
            self._idle_since = now
        return packet

    def __repr__(self):
        return "REDQueue(len=%d/%s, avg=%.1f)" % (
            len(self._queue),
            self.capacity_packets,
            self.avg,
        )


class CoDelQueue(Queue):
    """Controlled Delay AQM (Nichols & Jacobson 2012).

    Drops at *dequeue* when the packet sojourn time has exceeded
    ``target`` for at least ``interval``; while in the dropping state the
    drop spacing shrinks with the square root of the drop count.  This is
    the algorithm the paper cites as the bufferbloat community's answer.
    """

    __slots__ = ("target", "interval", "first_above_time", "drop_next",
                 "drop_count", "dropping")

    def __init__(self, capacity_packets, target=0.005, interval=0.100):
        super().__init__(capacity_packets=capacity_packets)
        self.target = target
        self.interval = interval
        self.first_above_time = 0.0
        self.drop_next = 0.0
        self.drop_count = 0
        self.dropping = False

    def push(self, packet, now):
        if self._would_overflow(packet):
            self._reject(packet)
            return False
        self._accept(packet, now)
        return True

    def _sojourn_ok(self, packet, now):
        """CoDel 'ok to leave the dropping state' test for one packet."""
        sojourn = now - packet.enqueued_at
        if sojourn < self.target or self._bytes <= 5 * 1500:
            self.first_above_time = 0.0
            return True
        if self.first_above_time == 0.0:
            self.first_above_time = now + self.interval
        elif now >= self.first_above_time:
            return False
        return True

    def _control_law(self, t):
        return t + self.interval / math.sqrt(self.drop_count)

    def pop(self, now):
        if not self._queue:
            self.dropping = False
            return None
        packet = self._take(now)
        ok = self._sojourn_ok(packet, now)
        if self.dropping:
            if ok:
                self.dropping = False
            else:
                while now >= self.drop_next and self.dropping:
                    self._reject(packet)
                    self.drop_count += 1
                    if not self._queue:
                        self.dropping = False
                        return None
                    packet = self._take(now)
                    if self._sojourn_ok(packet, now):
                        self.dropping = False
                        break
                    self.drop_next = self._control_law(self.drop_next)
        elif not ok:
            # Enter the dropping state: drop this packet, arm the control law.
            self._reject(packet)
            self.dropping = True
            prev_count = self.drop_count
            # Restart from a higher rate if we were dropping recently.
            if now - self.drop_next < 8.0 * self.interval and prev_count > 2:
                self.drop_count = prev_count - 2
            else:
                self.drop_count = 1
            self.drop_next = self._control_law(now)
            if not self._queue:
                return None
            packet = self._take(now)
        return packet

    def __repr__(self):
        return "CoDelQueue(len=%d/%s, dropping=%s)" % (
            len(self._queue),
            self.capacity_packets,
            self.dropping,
        )
