"""Dumbbell topologies mirroring the paper's two testbeds (Figure 3).

Both testbeds are dumbbells with a single bottleneck link:

* :class:`AccessNetwork` — the DSL access testbed: asymmetric bottleneck
  (16 Mbit/s downstream, 1 Mbit/s upstream) between a "DSLAM" and a
  "home router" (the NetFPGA pair in the paper), 20 ms delay on the
  server side, 5 ms on the client side.  Buffers under study sit on the
  DSLAM's downstream interface and the home router's upstream interface.
* :class:`BackboneNetwork` — the OC-3 backbone testbed: symmetric
  149.76 Mbit/s bottleneck (OC-3 payload rate; the paper quotes the
  155 Mbit/s nominal line rate) with 30 ms one-way delay, giving the
  60 ms base RTT behind the paper's 749-packet BDP.

Servers live on the *left*, clients on the *right*, exactly as in
Figure 3.  ``clients[0]``/``servers[0]`` are reserved for the application
under test (the "multimedia hosts"); background traffic uses the rest.
"""

from repro.sim.link import Interface
from repro.sim.node import Node
from repro.sim.queues import DropTailQueue, UnmeteredDropTailQueue
from repro.util.units import GBPS, MBPS, ms

#: Wire size of a full-sized data packet (MSS 1460 + 40 bytes of headers).
FULL_PACKET_BYTES = 1500

#: Capacity of non-bottleneck (edge) queues: large enough to never drop.
EDGE_QUEUE_PACKETS = 100_000


def _droptail_factory(capacity_packets):
    return DropTailQueue(capacity_packets=capacity_packets)


class DumbbellNetwork:
    """Generic dumbbell: servers — left router — bottleneck — right router — clients.

    Parameters
    ----------
    sim:
        Driving simulator.
    n_servers, n_clients:
        Host counts on each side.
    edge_rate, server_edge_delay, client_edge_delay:
        Rate/one-way delays of the access links between hosts and their
        router (the paper's hardware delay boxes live here).
    down_rate, up_rate:
        Bottleneck rates toward the clients ("down") and toward the
        servers ("up").
    bottleneck_delay:
        One-way propagation delay of the bottleneck link.
    down_buffer_packets, up_buffer_packets:
        Capacities of the buffers under study, in packets.
    queue_factory:
        Callable ``capacity_packets -> Queue`` used for the two
        bottleneck queues; defaults to drop-tail like the paper.
    down_loss, up_loss:
        Wire loss probability of each bottleneck direction (see
        :class:`repro.sim.link.Interface`); 0.0 models the paper's clean
        wired testbeds, >0 a wireless-like lossy channel.
    """

    def __init__(
        self,
        sim,
        n_servers=3,
        n_clients=3,
        edge_rate=GBPS,
        server_edge_delay=ms(20),
        client_edge_delay=ms(5),
        down_rate=16 * MBPS,
        up_rate=1 * MBPS,
        bottleneck_delay=0.0,
        down_buffer_packets=64,
        up_buffer_packets=8,
        queue_factory=None,
        down_loss=0.0,
        up_loss=0.0,
    ):
        self.sim = sim
        if queue_factory is None:
            queue_factory = _droptail_factory
        self._next_addr = 1

        self.left_router = self._make_node("left-router")
        self.right_router = self._make_node("right-router")
        self.servers = [
            self._make_node("server%d" % index) for index in range(n_servers)
        ]
        self.clients = [
            self._make_node("client%d" % index) for index in range(n_clients)
        ]

        # Bottleneck link: left router <-> right router.
        self.down_bottleneck = Interface(
            sim,
            "bottleneck-down",
            down_rate,
            bottleneck_delay,
            queue_factory(down_buffer_packets),
            self.right_router,
            loss_rate=down_loss,
        )
        self.up_bottleneck = Interface(
            sim,
            "bottleneck-up",
            up_rate,
            bottleneck_delay,
            queue_factory(up_buffer_packets),
            self.left_router,
            loss_rate=up_loss,
        )
        self.left_router.set_default_route(self.down_bottleneck)
        self.right_router.set_default_route(self.up_bottleneck)

        for server in self.servers:
            self._connect_edge(server, self.left_router, edge_rate, server_edge_delay)
        for client in self.clients:
            self._connect_edge(client, self.right_router, edge_rate, client_edge_delay)

        self._edge_delays = (server_edge_delay, client_edge_delay)
        self._bottleneck_delay = bottleneck_delay

    # ------------------------------------------------------------------
    def _make_node(self, name):
        node = Node(self.sim, name, self._next_addr)
        self._next_addr += 1
        return node

    def _connect_edge(self, host, router, rate, delay):
        """Full-duplex host<->router link with effectively infinite queues.

        Edge queues are unmetered: they never drop and nothing reads
        their counters, so they skip per-packet stats (the buffers under
        *study* are the metered bottleneck queues).
        """
        to_router = Interface(
            self.sim,
            "%s->%s" % (host.name, router.name),
            rate,
            delay,
            UnmeteredDropTailQueue(capacity_packets=EDGE_QUEUE_PACKETS),
            router,
            metered=False,
        )
        to_host = Interface(
            self.sim,
            "%s->%s" % (router.name, host.name),
            rate,
            delay,
            UnmeteredDropTailQueue(capacity_packets=EDGE_QUEUE_PACKETS),
            host,
            metered=False,
        )
        host.set_default_route(to_router)
        router.add_route(host.addr, to_host)

    # ------------------------------------------------------------------
    @property
    def base_rtt(self):
        """Round-trip time with empty queues, server <-> client."""
        server_delay, client_delay = self._edge_delays
        one_way = server_delay + client_delay + self._bottleneck_delay
        return 2.0 * one_way

    @property
    def media_server(self):
        """Host running the server side of the application under test."""
        return self.servers[0]

    @property
    def media_client(self):
        """Host running the client side of the application under test."""
        return self.clients[0]

    def traffic_servers(self):
        """Hosts available for background traffic (server side)."""
        return self.servers[1:] if len(self.servers) > 1 else self.servers

    def traffic_clients(self):
        """Hosts available for background traffic (client side)."""
        return self.clients[1:] if len(self.clients) > 1 else self.clients

    def bottlenecks(self):
        """The two bottleneck interfaces as ``(down, up)``."""
        return (self.down_bottleneck, self.up_bottleneck)

    def reset_measurements(self):
        """Zero the measurement counters of both bottleneck interfaces."""
        self.down_bottleneck.reset_stats()
        self.up_bottleneck.reset_stats()


class AccessNetwork(DumbbellNetwork):
    """The DSL access testbed of Figure 3a.

    Asymmetric 16/1 Mbit/s bottleneck; 5 ms client-side and 20 ms
    server-side one-way delays (DSL interleaving + access/backbone path),
    base RTT 50 ms.  The buffers under study: the DSLAM's downstream
    queue (``down_buffer_packets``) and the home router's upstream queue
    (``up_buffer_packets``), both in packets, 8–256 in the paper.
    """

    DOWN_RATE = 16 * MBPS
    UP_RATE = 1 * MBPS

    def __init__(
        self,
        sim,
        down_buffer_packets=64,
        up_buffer_packets=8,
        n_servers=3,
        n_clients=3,
        queue_factory=None,
        down_loss=0.0,
        up_loss=0.0,
    ):
        super().__init__(
            sim,
            n_servers=n_servers,
            n_clients=n_clients,
            edge_rate=GBPS,
            server_edge_delay=ms(20),
            client_edge_delay=ms(5),
            down_rate=self.DOWN_RATE,
            up_rate=self.UP_RATE,
            bottleneck_delay=0.0,
            down_buffer_packets=down_buffer_packets,
            up_buffer_packets=up_buffer_packets,
            queue_factory=queue_factory,
            down_loss=down_loss,
            up_loss=up_loss,
        )

    @property
    def dslam(self):
        """The left (ISP-side) router."""
        return self.left_router

    @property
    def home_router(self):
        """The right (subscriber-side) router — the bufferbloat suspect."""
        return self.right_router


class BackboneNetwork(DumbbellNetwork):
    """The OC-3 backbone testbed of Figure 3b.

    Symmetric bottleneck at the OC-3 payload rate with 30 ms one-way
    delay (US east-to-west coast), base RTT ~60 ms; both directions carry
    the same configured buffer.  Edge links are per-pair gigabit with a
    negligible 0.1 ms delay.
    """

    #: OC-3 payload rate; yields the paper's 749-packet BDP at 60 ms RTT.
    RATE = 149.76 * MBPS

    def __init__(
        self,
        sim,
        buffer_packets=749,
        n_servers=4,
        n_clients=4,
        queue_factory=None,
        down_loss=0.0,
        up_loss=0.0,
    ):
        super().__init__(
            sim,
            n_servers=n_servers,
            n_clients=n_clients,
            edge_rate=GBPS,
            server_edge_delay=ms(0.1),
            client_edge_delay=ms(0.1),
            down_rate=self.RATE,
            up_rate=self.RATE,
            bottleneck_delay=ms(30),
            down_buffer_packets=buffer_packets,
            up_buffer_packets=buffer_packets,
            queue_factory=queue_factory,
            down_loss=down_loss,
            up_loss=up_loss,
        )
