"""cProfile harness over registry cells.

Every hot-path PR starts here: pick the cell whose workload you are
optimizing, profile it, sort by ``tottime`` and attack the top rows.
The harness is what produced the measurements behind the engine/link
fast-path rewrite (see docs/ARCHITECTURE.md).

Usage::

    python -m repro perf --profile fig5 --cell 2 --top 25
    python -m repro perf --profile fig7b --sort cumulative

or programmatically::

    from repro.perf.profile import profile_cell
    text, task = profile_cell("fig5", cell=2)
"""

import cProfile
import io
import pstats

SORT_KEYS = ("tottime", "cumulative", "ncalls")


def profile_cell(sweep, cell=0, scale=1.0, top=25, sort="tottime",
                 warm=True):
    """Profile one registry cell; returns ``(report_text, task)``.

    ``warm=True`` runs the cell once unprofiled first so process-lifetime
    caches (speech synthesis, clip generation) don't pollute the profile.
    """
    from repro.core.registry import get
    from repro.runner.execute import execute_task

    if sort not in SORT_KEYS:
        raise ValueError("sort must be one of %s, got %r" % (SORT_KEYS, sort))
    tasks = get(sweep).tasks(scale)
    if not -len(tasks) <= cell < len(tasks):
        raise IndexError("sweep %r has %d cells at scale %g; cell %d "
                         "out of range" % (sweep, len(tasks), scale, cell))
    task = tasks[cell]
    if warm:
        execute_task(task)
    profiler = cProfile.Profile()
    profiler.enable()
    execute_task(task)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(top)
    header = "profile: %s cell %d (scale %g) — %s\n" % (
        sweep, cell, scale, task.label)
    return header + buffer.getvalue(), task


def timeit_cell(sweep, cell=0, scale=1.0, repetitions=3):
    """Best-of-N CPU seconds for one registry cell (no profiler)."""
    import time

    from repro.core.registry import get
    from repro.runner.execute import execute_task

    task = get(sweep).tasks(scale)[cell]
    execute_task(task)  # warm process-lifetime caches
    best = None
    for __ in range(repetitions):
        start = time.process_time()
        execute_task(task)
        elapsed = time.process_time() - start
        best = elapsed if best is None else min(best, elapsed)
    return best
