"""The sim-core benchmark behind ``BENCH_simcore.json``.

Measures the packet-level hot path end-to-end on fixed registry cell
workloads (the Figure 5 QoS grid and the Figure 7 VoIP grids) and
reports:

* ``events_per_sec`` — executed simulator events divided by CPU time
  spent inside :meth:`repro.sim.engine.Simulator.run`.  This is *the*
  hot-path metric: it excludes per-cell QoE post-processing (numpy DSP)
  whose cost is unrelated to the event loop.
* ``cells_per_sec`` — whole cells (simulation + QoE scoring) per
  wall-clock second: the number that bounds registry sweep throughput.
* ``peak_rss_kb`` — ``ru_maxrss`` after the run.

Timings are best-of-``repetitions`` to shave scheduler noise; event
counts are exact and must not vary between repetitions (the simulator is
deterministic — a varying count means nondeterminism crept in, and the
bench raises).

``check_regression`` compares a fresh measurement against the committed
``BENCH_simcore.json`` and fails on a >30% events/sec drop, which is the
CI perf-smoke gate.  Cross-machine numbers differ by design; the
committed baseline is refreshed whenever a PR deliberately moves it.
"""

import json
import platform
import resource
import sys
import time

from repro.sim import engine

#: Default benchmark artifact, relative to the current directory.
DEFAULT_OUTPUT = "BENCH_simcore.json"

SCHEMA = 1

#: Workload definitions: name -> ((sweep, scale), ...).  "fig7" is both
#: halves of Figure 7 (download- and upload-congested VoIP).
FULL_WORKLOADS = (
    ("fig5", (("fig5", 1.0),)),
    ("fig7", (("fig7a", 1.0), ("fig7b", 1.0))),
)

#: Quick mode: same metric, smaller cells (scale 0.25 resolves every
#: sweep to its duration floors), so events/sec stays comparable.
QUICK_WORKLOADS = (
    ("fig5", (("fig5", 0.25),)),
    ("fig7", (("fig7a", 0.25), ("fig7b", 0.25))),
)


def _workload_tasks(parts):
    from repro.core.registry import get

    tasks = []
    for sweep_name, scale in parts:
        tasks.extend(get(sweep_name).tasks(scale))
    return tasks


class _SimRunTimer:
    """Accumulates CPU seconds spent inside ``Simulator.run``."""

    def __init__(self):
        self.seconds = 0.0
        self._original = None

    def __enter__(self):
        original = engine.Simulator.run
        timer = self

        def timed_run(sim, until=None, max_events=None):
            t0 = time.process_time()
            try:
                return original(sim, until=until, max_events=max_events)
            finally:
                timer.seconds += time.process_time() - t0

        self._original = original
        engine.Simulator.run = timed_run
        return self

    def __exit__(self, *exc_info):
        engine.Simulator.run = self._original
        return False


def _measure_workload(name, parts, repetitions):
    from repro.runner.execute import execute_task

    tasks = _workload_tasks(parts)
    best_wall = best_sim = None
    events = None
    for __ in range(repetitions):
        with _SimRunTimer() as timer:
            events_before = engine.total_events()
            wall_start = time.perf_counter()
            for task in tasks:
                execute_task(task)
            wall = time.perf_counter() - wall_start
            executed = engine.total_events() - events_before
        if events is None:
            events = executed
        elif events != executed:
            raise RuntimeError(
                "nondeterministic event count on workload %r: %d != %d"
                % (name, events, executed))
        best_wall = wall if best_wall is None else min(best_wall, wall)
        best_sim = (timer.seconds if best_sim is None
                    else min(best_sim, timer.seconds))
    return {
        "sweeps": ["%s@%g" % part for part in parts],
        "cells": len(tasks),
        "events": events,
        "sim_seconds": round(best_sim, 6),
        "wall_seconds": round(best_wall, 6),
        "events_per_sec": round(events / best_sim) if best_sim else 0,
        "cells_per_sec": round(len(tasks) / best_wall, 3) if best_wall else 0.0,
    }


def run_bench(quick=False, repetitions=None, reference=None):
    """Run the benchmark; returns the ``BENCH_simcore.json`` document.

    ``reference`` (a dict) is carried into the output verbatim — used to
    keep the pre-overhaul measurements alongside fresh numbers.
    """
    workloads = QUICK_WORKLOADS if quick else FULL_WORKLOADS
    if repetitions is None:
        repetitions = 2 if quick else 3
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1, got %r" % (repetitions,))
    results = {}
    for name, parts in workloads:
        results[name] = _measure_workload(name, parts, repetitions)
    totals = {
        "cells": sum(w["cells"] for w in results.values()),
        "events": sum(w["events"] for w in results.values()),
        "sim_seconds": round(sum(w["sim_seconds"] for w in results.values()), 6),
        "wall_seconds": round(sum(w["wall_seconds"] for w in results.values()), 6),
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }
    totals["events_per_sec"] = (
        round(totals["events"] / totals["sim_seconds"])
        if totals["sim_seconds"] else 0)
    totals["cells_per_sec"] = (
        round(totals["cells"] / totals["wall_seconds"], 3)
        if totals["wall_seconds"] else 0.0)
    document = {
        "schema": SCHEMA,
        "kind": "simcore-bench",
        "mode": "quick" if quick else "full",
        "repetitions": repetitions,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": results,
        "totals": totals,
    }
    if reference is not None:
        document["reference"] = reference
    return document


def write_bench(document, path=DEFAULT_OUTPUT):
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=False)
        handle.write("\n")
    return path


def load_baseline(path=DEFAULT_OUTPUT):
    with open(path) as handle:
        return json.load(handle)


def check_regression(current, baseline, tolerance=0.30, out=sys.stderr):
    """Fail (return False) if events/sec regressed beyond ``tolerance``.

    Compares per-workload ``events_per_sec`` for workloads present in
    both documents.  Machine-to-machine variance is real — the committed
    baseline and the tolerance are calibrated for CI-class hardware.
    """
    ok = True
    for name, workload in current["workloads"].items():
        base = baseline.get("workloads", {}).get(name)
        if base is None or not base.get("events_per_sec"):
            continue
        floor = base["events_per_sec"] * (1.0 - tolerance)
        status = "ok" if workload["events_per_sec"] >= floor else "REGRESSED"
        print("perf-check %-6s %s: %d ev/s vs baseline %d (floor %d)"
              % (name, status, workload["events_per_sec"],
                 base["events_per_sec"], int(floor)), file=out)
        if status != "ok":
            ok = False
    return ok


def render_summary(document):
    """Human-readable one-block summary of a bench document."""
    lines = ["sim-core bench (%s mode, best of %d):"
             % (document["mode"], document["repetitions"])]
    for name, workload in document["workloads"].items():
        lines.append(
            "  %-6s %3d cells  %9d events  %8d ev/s (sim)  %6.2f cells/s"
            % (name, workload["cells"], workload["events"],
               workload["events_per_sec"], workload["cells_per_sec"]))
    totals = document["totals"]
    lines.append(
        "  total  %3d cells  %9d events  %8d ev/s (sim)  peak RSS %.1f MB"
        % (totals["cells"], totals["events"], totals["events_per_sec"],
           totals["peak_rss_kb"] / 1024.0))
    reference = document.get("reference")
    if reference and reference.get("events_per_sec"):
        lines.append("  pre-overhaul reference: %s"
                     % json.dumps(reference["events_per_sec"]))
    return "\n".join(lines)
