"""Performance measurement for the sim core.

* :mod:`repro.perf.bench` — the ``BENCH_simcore.json`` benchmark
  (events/sec, cells/sec, peak RSS over registry cell workloads) with a
  regression check against the committed baseline.
* :mod:`repro.perf.profile` — a cProfile harness over registry cells for
  finding the next hot spot.

Both are exposed through ``python -m repro perf``.
"""

from repro.perf.bench import run_bench  # noqa: F401
from repro.perf.profile import profile_cell  # noqa: F401
