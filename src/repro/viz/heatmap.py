"""ASCII rendering of heatmaps (the paper's figure style) and tables.

Cells carry a one-character quality marker mirroring the paper's
green/orange/red colouring: ``+`` good, ``o`` degraded, ``!`` bad (see
:mod:`repro.qoe.scales`).  :data:`MARKER_COLORS` is the single source
of the marker -> colour mapping, shared between these ASCII renderers
and the SVG report figures (:mod:`repro.report.svg`), so both views of
a grid stay semantically identical.
"""

#: The paper's traffic-light semantics, keyed by ASCII marker:
#: ``(label, fill colour, text colour)``.  Fill colours are the muted
#: pastels used for SVG heatmap cells; text colours are the saturated
#: variants used for overlays and legends.
MARKER_COLORS = {
    "+": ("good", "#c8e6c9", "#1b5e20"),
    "o": ("degraded", "#ffe0b2", "#e65100"),
    "!": ("bad", "#ffcdd2", "#b71c1c"),
}


def render_grid(title, row_labels, col_labels, cell_fn, col_header="",
                cell_width=None):
    """Render a labelled grid.

    ``cell_fn(row_label, col_label)`` returns the cell text (may include
    a marker suffix) or None for an empty cell.
    """
    cells = {}
    for row in row_labels:
        for col in col_labels:
            text = cell_fn(row, col)
            cells[(row, col)] = "" if text is None else str(text)
    if cell_width is None:
        texts = list(cells.values()) + [str(c) for c in col_labels]
        cell_width = max(len(t) for t in texts) + 2
    label_width = max(len(str(r)) for r in row_labels + [col_header]) + 2

    lines = [title]
    header = str(col_header).ljust(label_width)
    header += "".join(str(c).rjust(cell_width) for c in col_labels)
    lines.append(header)
    lines.append("-" * len(header))
    for row in row_labels:
        line = str(row).ljust(label_width)
        line += "".join(cells[(row, col)].rjust(cell_width)
                        for col in col_labels)
        lines.append(line)
    return "\n".join(lines)


def render_table(title, headers, rows):
    """Render a simple aligned table from header names and row tuples."""
    str_rows = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-" * len(lines[-1]))
    for row in str_rows:
        lines.append("  ".join(value.ljust(widths[i])
                               for i, value in enumerate(row)))
    return "\n".join(lines)
