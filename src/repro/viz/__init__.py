"""Plain-text rendering of the paper's heatmaps and tables."""

from repro.viz.heatmap import render_grid, render_table

__all__ = ["render_grid", "render_table"]
