"""Unit constants and conversion helpers.

Internally the simulator uses SI base units everywhere: seconds for time,
bits per second for rates, and bytes for sizes.  These helpers exist so
that configuration code reads like the paper ("16 Mbit/s", "5 ms") instead
of raw exponents.
"""

# Rate units (bits per second).
KBPS = 1_000.0
MBPS = 1_000_000.0
GBPS = 1_000_000_000.0

# Time units (seconds).
MS = 1e-3
US = 1e-6


def mbps(value):
    """Return ``value`` megabits per second expressed in bit/s."""
    return value * MBPS


def ms(value):
    """Return ``value`` milliseconds expressed in seconds."""
    return value * MS


def bytes_to_bits(nbytes):
    """Convert a byte count to bits."""
    return nbytes * 8


def bits_to_bytes(nbits):
    """Convert a bit count to (possibly fractional) bytes."""
    return nbits / 8


def pretty_rate(rate_bps):
    """Format a bit/s rate using the most natural unit."""
    if rate_bps >= GBPS:
        return "%.2f Gbit/s" % (rate_bps / GBPS)
    if rate_bps >= MBPS:
        return "%.2f Mbit/s" % (rate_bps / MBPS)
    if rate_bps >= KBPS:
        return "%.2f kbit/s" % (rate_bps / KBPS)
    return "%.0f bit/s" % rate_bps


def pretty_time(seconds):
    """Format a duration with an adaptive unit (s / ms / us)."""
    if seconds >= 1.0:
        return "%.3f s" % seconds
    if seconds >= MS:
        return "%.1f ms" % (seconds / MS)
    return "%.1f us" % (seconds / US)


def pretty_bytes(nbytes):
    """Format a byte count using KiB/MiB when large."""
    if nbytes >= 1 << 20:
        return "%.2f MiB" % (nbytes / float(1 << 20))
    if nbytes >= 1 << 10:
        return "%.2f KiB" % (nbytes / float(1 << 10))
    return "%d B" % nbytes
