"""Shared utilities: seeded RNG streams, interval sets, unit helpers."""

from repro.util.intervals import IntervalSet
from repro.util.rng import RngRegistry
from repro.util.units import (
    GBPS,
    KBPS,
    MBPS,
    MS,
    US,
    bits_to_bytes,
    bytes_to_bits,
    mbps,
    ms,
    pretty_bytes,
    pretty_rate,
    pretty_time,
)

__all__ = [
    "IntervalSet",
    "RngRegistry",
    "GBPS",
    "KBPS",
    "MBPS",
    "MS",
    "US",
    "bits_to_bytes",
    "bytes_to_bits",
    "mbps",
    "ms",
    "pretty_bytes",
    "pretty_rate",
    "pretty_time",
]
