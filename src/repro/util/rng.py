"""Deterministic, named random-number streams.

Every stochastic component of an experiment (each Harpoon session, each
media source, the synthetic CDN dataset, ...) draws from its own named
stream so that

* experiments are reproducible given a single root seed, and
* adding a new consumer does not perturb the draws seen by existing ones.

Streams are derived from the root seed with :class:`numpy.random.SeedSequence`
spawned per name, which provides statistically independent substreams.
"""

import zlib

import numpy as np


class RngRegistry:
    """Factory of named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Root seed of the experiment.  Two registries created with the same
        seed hand out identical streams for identical names.
    """

    def __init__(self, seed=0):
        self.seed = int(seed)
        self._streams = {}

    def stream(self, name):
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            # Mix the name into the seed material deterministically.  CRC32
            # is stable across runs and platforms (unlike hash()).
            tag = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(tag,))
            gen = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = gen
        return gen

    def fork(self, name, index):
        """Return a stream for the ``index``-th member of a family.

        Useful when a dynamic number of consumers is created (e.g. one
        stream per Harpoon session).
        """
        return self.stream("%s[%d]" % (name, index))

    def __repr__(self):
        return "RngRegistry(seed=%d, streams=%d)" % (self.seed, len(self._streams))
