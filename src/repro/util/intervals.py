"""Half-open integer interval sets.

Used by the TCP receive path to track out-of-order byte ranges: the
receiver records every arriving ``[seq, seq + len)`` segment and asks for
the length of the contiguous prefix above ``rcv_nxt``.

The implementation keeps a sorted list of disjoint, non-adjacent
``(start, end)`` pairs and merges on insert.  Typical reassembly queues
hold only a handful of holes, so a list with :mod:`bisect` is both simple
and fast.
"""

import bisect


class IntervalSet:
    """A set of integers represented as disjoint half-open intervals."""

    def __init__(self, intervals=None):
        # Sorted, disjoint, non-adjacent list of [start, end) pairs.
        self._ivals = []
        if intervals:
            for start, end in intervals:
                self.add(start, end)

    def add(self, start, end):
        """Insert the half-open interval ``[start, end)``.

        Overlapping and adjacent intervals are merged.  Empty intervals
        are ignored.
        """
        if end <= start:
            return
        ivals = self._ivals
        # Find insertion window: all intervals with end >= start can merge.
        lo = bisect.bisect_left(ivals, (start,)) if ivals else 0
        # Step back if the previous interval touches/overlaps [start, end).
        if lo > 0 and ivals[lo - 1][1] >= start:
            lo -= 1
        hi = lo
        new_start, new_end = start, end
        while hi < len(ivals) and ivals[hi][0] <= end:
            new_start = min(new_start, ivals[hi][0])
            new_end = max(new_end, ivals[hi][1])
            hi += 1
        ivals[lo:hi] = [(new_start, new_end)]

    def contiguous_end(self, start):
        """Return the end of the contiguous run beginning at ``start``.

        If ``start`` is not covered, return ``start`` itself.  This is the
        core TCP reassembly query: ``rcv_nxt = set.contiguous_end(rcv_nxt)``.
        """
        ivals = self._ivals
        idx = bisect.bisect_right(ivals, (start, float("inf"))) - 1
        if idx >= 0 and ivals[idx][0] <= start <= ivals[idx][1]:
            return ivals[idx][1]
        return start

    def prune_below(self, cutoff):
        """Discard all content below ``cutoff`` (delivered bytes).

        O(dropped prefix), not O(n): intervals are sorted and disjoint,
        so only a leading run can fall below ``cutoff`` and only the
        first survivor can straddle it.  The TCP receive path calls this
        once per data segment during loss recovery — with a rebuilt-list
        implementation this was quadratic in the number of holes.
        """
        ivals = self._ivals
        drop = 0
        n = len(ivals)
        while drop < n and ivals[drop][1] <= cutoff:
            drop += 1
        if drop:
            del ivals[:drop]
        if ivals and ivals[0][0] < cutoff:
            ivals[0] = (cutoff, ivals[0][1])

    def covers(self, start, end):
        """Return True if ``[start, end)`` is fully contained."""
        if end <= start:
            return True
        ivals = self._ivals
        idx = bisect.bisect_right(ivals, (start, float("inf"))) - 1
        if idx < 0:
            return False
        istart, iend = ivals[idx]
        return istart <= start and end <= iend

    def total(self):
        """Total number of integers covered."""
        return sum(end - start for start, end in self._ivals)

    def gaps(self, start, end):
        """Yield the uncovered sub-intervals of ``[start, end)``."""
        cursor = start
        for istart, iend in self._ivals:
            if iend <= cursor:
                continue
            if istart >= end:
                break
            if istart > cursor:
                yield (cursor, min(istart, end))
            cursor = max(cursor, iend)
            if cursor >= end:
                break
        if cursor < end:
            yield (cursor, end)

    def __len__(self):
        return len(self._ivals)

    def __iter__(self):
        return iter(self._ivals)

    def __contains__(self, value):
        ivals = self._ivals
        idx = bisect.bisect_right(ivals, (value, float("inf"))) - 1
        return idx >= 0 and ivals[idx][0] <= value < ivals[idx][1]

    def __repr__(self):
        return "IntervalSet(%r)" % (self._ivals,)
