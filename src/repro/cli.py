"""``python -m repro`` — command-line front end for the sweep registry.

Subcommands
-----------
``list``
    Catalog of registered sweeps (name, kind, provenance, cell count).
``describe NAME``
    Full scale-resolved description of one sweep; ``--hashes`` also
    prints each cell's content hash (the result-cache key input).
``run NAME``
    Execute a sweep through :func:`repro.api.run_sweep` and print one
    summary line per cell (``--format table``, the default), or the
    full results as ``--format csv|json``.
    ``--workers/--no-cache/--progress`` map to the runner knobs;
    ``--workloads/--buffers/--discipline/--duration/--warmup/--seed``
    override the spec's axes for ad-hoc runs (overridden runs use
    different cache keys than the registered grid, by design).
``export NAME``
    Run (or, with ``--cached-only``, load) a sweep and write its
    :class:`repro.results.set.ResultSet` as CSV or JSON — to stdout or
    ``--output FILE``.  Accepts the same runner knobs and axis
    overrides as ``run``.
``figures``
    Regenerate the paper's ASCII figures/tables from their registered
    sweeps (all of them, or the names given), through
    :func:`repro.api.run_sweep` — the sweeps land in the shared result
    cache, so a later ``report`` re-simulates nothing.
``report``
    Build the SVG reproduction report (``index.md`` + one SVG per
    figure + ``fidelity.json`` with PASS/WARN/FAIL verdicts against the
    paper's digitized values) into ``--output DIR``.  ``--cached-only``
    renders from the result cache without ever simulating;
    ``--sample`` regenerates the pinned tiny sample committed under
    ``docs/sample_report/``.  See ``docs/REPORTING.md``.
``perf``
    Sim-core performance tooling: run the events/sec benchmark and
    write ``BENCH_simcore.json`` (``--quick`` for the CI smoke mode,
    ``--check`` to fail on a >30% events/sec regression versus the
    committed baseline), or profile one registry cell with
    ``--profile SWEEP [--cell N]``.

Exit status is 0 on success, 2 on bad arguments (argparse), 1 on
runtime failure.
"""

import argparse
import json
import sys

from repro import api
from repro.core import registry
from repro.core.registry import REGISTRY, resolve_scale
from repro.results import key_str
from repro.runner import GridRunner


# ---------------------------------------------------------------------------
# Helpers.
# ---------------------------------------------------------------------------
def _parse_buffer(text):
    """Parse one buffer-size token: ``"64"`` or per-direction ``"64:8"``."""
    try:
        if ":" in text:
            down, up = text.split(":", 1)
            return (int(down), int(up))
        return int(text)
    except ValueError:
        raise SystemExit("invalid buffer size %r (want a packet count "
                         "like 64, or DOWN:UP like 64:8)" % (text,))


def _parse_csv(text, parse=lambda token: token):
    return tuple(parse(token.strip()) for token in text.split(",")
                 if token.strip())


def _overrides_from(args):
    """The ``repro.api.apply_overrides`` kwargs encoded in CLI flags."""
    overrides = {}
    if getattr(args, "workloads", None):
        overrides["workloads"] = _parse_csv(args.workloads)
    if getattr(args, "buffers", None):
        overrides["buffers"] = _parse_csv(args.buffers, _parse_buffer)
    if getattr(args, "duration", None) is not None:
        overrides["duration"] = args.duration
    if getattr(args, "warmup", None) is not None:
        overrides["warmup"] = args.warmup
    if getattr(args, "seed", None) is not None:
        overrides["seed"] = args.seed
    if getattr(args, "discipline", None):
        overrides["disciplines"] = _parse_csv(args.discipline)
    return overrides


def _runner_from(args):
    return GridRunner(workers=getattr(args, "workers", None),
                      use_cache=not getattr(args, "no_cache", False),
                      progress=True if getattr(args, "progress", False)
                      else None)


def _run_through_api(args, runner=None):
    """Resolve/override/run one sweep for ``run``/``export``.

    Returns ``(resolved spec, scale, ResultSet)`` — the spec already has
    the CLI's axis overrides applied, so its cell count is the expected
    result size.
    """
    spec = _get_spec(args.name)
    scale = resolve_scale() if args.scale is None else args.scale
    try:
        spec = api.apply_overrides(spec, scale=scale,
                                   **_overrides_from(args))
        if getattr(args, "cached_only", False):
            results = api.load_sweep(spec, scale=scale)
        else:
            results = api.run_sweep(spec, scale=scale, runner=runner)
    except ValueError as exc:
        raise SystemExit(str(exc))
    return spec, scale, results


def _print_runner_stats(runner):
    stats = runner.last_stats
    print("[%d cells: %d cached, %d computed, %.1f s on %d worker%s]"
          % (stats["cells"], stats["cached"], stats["computed"],
             stats["elapsed"], stats["workers"],
             "" if stats["workers"] == 1 else "s"),
          file=sys.stderr)


def _get_spec(name):
    try:
        return registry.get(name)
    except KeyError as exc:
        raise SystemExit(exc.args[0])


# ---------------------------------------------------------------------------
# Subcommands.
# ---------------------------------------------------------------------------
def cmd_list(args):
    scale = resolve_scale() if args.scale is None else args.scale
    specs = list(REGISTRY.values())
    if args.json:
        print(json.dumps([spec.describe(scale) for spec in specs], indent=2))
        return 0
    rows = [("name", "kind", "provenance", "cells", "title")]
    for spec in specs:
        rows.append((spec.name, spec.kind, spec.provenance,
                     str(spec.cell_count(scale)), spec.title))
    widths = [max(len(row[i]) for row in rows) for i in range(4)]
    for index, row in enumerate(rows):
        print("  ".join(col.ljust(widths[i]) for i, col in enumerate(row[:4]))
              + "  " + row[4])
        if index == 0:
            print("-" * (sum(widths) + 8 + len(rows[0][4])))
    print()
    print("%d sweeps (%d paper, %d extension) at REPRO_SCALE=%g" % (
        len(specs), len(registry.paper_sweeps()),
        len(registry.extension_sweeps()), scale))
    return 0


def cmd_describe(args):
    spec = _get_spec(args.name)
    scale = resolve_scale() if args.scale is None else args.scale
    description = spec.describe(scale)
    if args.hashes:
        description["cell_hashes"] = {
            key_str(key): task.content_hash()
            for key, task in zip(spec.cells(scale), spec.tasks(scale))}
    if args.json:
        print(json.dumps(description, indent=2))
        return 0
    for field_name in ("name", "kind", "title", "provenance", "description"):
        print("%-12s %s" % (field_name + ":", description[field_name]))
    print("%-12s %s" % ("spec:", json.dumps(spec.to_json())))
    print("%-12s scale=%g -> %d cells, duration %.1f s, warmup %.1f s, "
          "seed %d" % ("resolved:", scale, description["cells"],
                       description["duration_s"], description["warmup_s"],
                       description["seed"]))
    print("%-12s %s" % ("workloads:", ", ".join(description["workloads"])))
    print("%-12s %s" % ("buffers:", ", ".join(
        str(b) for b in description["buffers"])))
    if len(description["disciplines"]) > 1:
        print("%-12s %s" % ("disciplines:",
                            ", ".join(description["disciplines"])))
    for param, values in description["axes"]:
        print("%-12s %s = %s" % ("axis:", param, ", ".join(map(str, values))))
    if description["counts"]:
        print("%-12s %s" % ("counts:", description["counts"]))
    if args.hashes:
        print("cell hashes:")
        for key, digest in description["cell_hashes"].items():
            print("  %-40s %s" % (key, digest))
    return 0


def cmd_run(args):
    runner = _runner_from(args)
    spec, __, results = _run_through_api(args, runner=runner)
    fmt = args.format or ("json" if args.json else "table")
    if fmt == "json":
        print(json.dumps({key_str(record.key): record.payload
                          for record in results}, indent=2))
    elif fmt == "csv":
        print(results.to_csv(), end="")
    else:
        print("%s — %s (%d cells)" % (spec.name, spec.title, len(results)))
        for record in results:
            print("  %-40s %s" % (key_str(record.key), record.summary()))
    _print_runner_stats(runner)
    return 0


def cmd_export(args):
    runner = _runner_from(args)
    spec, scale, results = _run_through_api(args, runner=runner)
    if args.cached_only:
        expected = spec.cell_count(scale)
        if not results:
            print("export %s: no cached cells (run the sweep first, or "
                  "drop --cached-only)" % spec.name, file=sys.stderr)
            return 1
        if len(results) < expected:
            # A partial grid must never pass silently for analysis.
            print("export %s: partial grid — only %d of %d cells cached"
                  % (spec.name, len(results), expected), file=sys.stderr)
    if args.format == "json":
        text = results.to_json(indent=2) + "\n"
    else:
        text = results.to_csv()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print("wrote %d records to %s" % (len(results), args.output),
              file=sys.stderr)
    else:
        print(text, end="")
    if not args.cached_only:
        _print_runner_stats(runner)
    return 0


# Figure renderers: name -> function(results, spec, scale) -> text.
def _render_fig4(direction):
    def render(results, spec, scale):
        from repro.core.study import render_fig4

        return render_fig4(results, direction,
                           buffers=spec.buffer_axis(scale),
                           workloads=spec.workloads(scale))
    return render


def _render_fig5(results, spec, scale):
    from repro.core.study import render_fig5

    by_packets = {key[1]: report for key, report in results.items()}
    return render_fig5(by_packets)


def _render_table1(testbed):
    def render(results, spec, scale):
        from repro.core.study import render_table1, table1_rows_for

        rows = table1_rows_for(spec.scenario_axis(scale),
                               list(results.values()))
        return render_table1(rows, testbed)
    return render


def _render_fig7(activity):
    def render(results, spec, scale):
        from repro.core.voip_study import render_fig7

        return render_fig7(results, activity, spec.buffer_axis(scale),
                           workloads=spec.workloads(scale))
    return render


def _render_fig8(results, spec, scale):
    from repro.core.voip_study import render_fig8

    return render_fig8(results, spec.buffer_axis(scale),
                       workloads=spec.workloads(scale))


def _render_fig9(testbed):
    def render(results, spec, scale):
        from repro.core.video_study import render_fig9

        return render_fig9(results, testbed, spec.buffer_axis(scale),
                           workloads=spec.workloads(scale))
    return render


def _render_fig10(activity, title="Figure 10"):
    def render(results, spec, scale):
        from repro.core.web_study import render_fig10

        return render_fig10(results, activity, spec.buffer_axis(scale),
                            workloads=spec.workloads(scale), title=title)
    return render


FIGURES = {
    "fig4-up": _render_fig4("up"),
    "fig4-down": _render_fig4("down"),
    "fig5": _render_fig5,
    "table1-access": _render_table1("access"),
    "table1-backbone": _render_table1("backbone"),
    "fig7a": _render_fig7("down"),
    "fig7b": _render_fig7("up"),
    "fig8": _render_fig8,
    "fig9a": _render_fig9("access"),
    "fig9b": _render_fig9("backbone"),
    "fig10a": _render_fig10("down"),
    "fig10b": _render_fig10("up"),
    "fig11": _render_fig10("backbone", title="Figure 11"),
}


def cmd_figures(args):
    names = args.names or list(FIGURES) + ["table2"]
    scale = resolve_scale() if args.scale is None else args.scale
    runner = _runner_from(args)
    for name in names:
        if name == "table2":
            from repro.core.study import render_table2

            print(render_table2())
            print()
            continue
        if name not in FIGURES:
            raise SystemExit("no renderer for %r (have: %s)" % (
                name, ", ".join(sorted(FIGURES) + ["table2"])))
        spec = _get_spec(name)
        results = api.run_sweep(spec, scale=scale, runner=runner)
        print(FIGURES[name](results.to_mapping(), spec, scale))
        print()
    return 0


def cmd_report(args):
    from repro.report.build import generate_report, validate_selection

    # Usage errors exit cleanly here; anything generate_report raises
    # beyond this point is a real bug and must keep its traceback.
    try:
        validate_selection(args.names, sample=args.sample,
                           scale=args.scale)
    except ValueError as exc:
        raise SystemExit(str(exc))
    runner = None if args.cached_only else _runner_from(args)
    summary = generate_report(
        args.names or None, args.output,
        cached_only=args.cached_only,
        scale=args.scale, runner=runner, sample=args.sample)
    tally = summary["verdicts"]
    # No trailing runner-stats line: GridRunner.last_stats only covers
    # the final sweep; the per-figure report lines above already carry
    # cached/computed counts.
    print("wrote %s (%d figures: %s)" % (
        summary["out_dir"], len(summary["figures"]),
        ", ".join("%d %s" % (count, verdict)
                  for verdict, count in sorted(tally.items()))),
        file=sys.stderr)
    if args.strict and tally.get("FAIL"):
        return 1
    return 0


def cmd_perf(args):
    from repro.perf import bench as bench_module
    from repro.perf.profile import SORT_KEYS, profile_cell

    if args.profile:
        text, __ = profile_cell(args.profile, cell=args.cell,
                                scale=args.scale or 1.0, top=args.top,
                                sort=args.sort)
        print(text)
        return 0

    reference = None
    baseline = None
    try:
        baseline = bench_module.load_baseline(args.baseline)
        reference = baseline.get("reference")
    except (OSError, ValueError):
        if args.check:
            raise SystemExit("perf --check: no readable baseline at %r"
                             % args.baseline)
    document = bench_module.run_bench(quick=args.quick,
                                      repetitions=args.repetitions,
                                      reference=reference)
    print(bench_module.render_summary(document))
    # --check compares before anything is written, and a bare --check
    # never rewrites the committed baseline it compares against; pass
    # --output explicitly to keep the fresh measurement.
    passed = True
    if args.check:
        passed = bench_module.check_regression(document, baseline,
                                               tolerance=args.tolerance)
    output = args.output
    if output is None:
        output = "" if args.check else bench_module.DEFAULT_OUTPUT
    if output:
        path = bench_module.write_bench(document, output)
        print("wrote %s" % path, file=sys.stderr)
    return 0 if passed else 1


# ---------------------------------------------------------------------------
# Argument parsing.
# ---------------------------------------------------------------------------
def _add_runner_arguments(parser):
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: REPRO_WORKERS or "
                             "all cores; 1 = serial in-process)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")
    parser.add_argument("--progress", action="store_true",
                        help="per-cell progress/ETA lines on stderr")
    parser.add_argument("--scale", type=float, default=None,
                        help="fidelity multiplier (default: REPRO_SCALE)")


def _add_override_arguments(parser):
    parser.add_argument("--workloads", help="comma-separated workload labels "
                                            "(subset of the sweep's axis)")
    parser.add_argument("--buffers", help="comma-separated buffer sizes in "
                                          "packets; DOWN:UP pairs allowed")
    parser.add_argument("--discipline", help="comma-separated queue "
                                             "disciplines "
                                             "(droptail/red/codel)")
    parser.add_argument("--duration", type=float, default=None,
                        help="measurement window override, simulated seconds")
    parser.add_argument("--warmup", type=float, default=None,
                        help="warm-up override, simulated seconds")
    parser.add_argument("--seed", type=int, default=None)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the paper's experiment grids (and extensions) "
                    "from the declarative sweep registry.")
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser(
        "list", help="catalog of registered sweeps")
    list_parser.add_argument("--json", action="store_true",
                             help="machine-readable output")
    list_parser.add_argument("--scale", type=float, default=None)
    list_parser.set_defaults(fn=cmd_list)

    describe = sub.add_parser(
        "describe", help="show one sweep's full scale-resolved spec")
    describe.add_argument("name")
    describe.add_argument("--json", action="store_true")
    describe.add_argument("--hashes", action="store_true",
                          help="also print each cell's content hash")
    describe.add_argument("--scale", type=float, default=None)
    describe.set_defaults(fn=cmd_describe)

    run = sub.add_parser("run", help="execute a sweep through the grid "
                                     "runner and print per-cell summaries")
    run.add_argument("name")
    _add_runner_arguments(run)
    _add_override_arguments(run)
    run.add_argument("--format", choices=("table", "csv", "json"),
                     default=None,
                     help="output format (default: table)")
    run.add_argument("--json", action="store_true",
                     help="alias for --format json")
    run.set_defaults(fn=cmd_run)

    export = sub.add_parser(
        "export", help="run (repro.api.run_sweep) or load from cache "
                       "(repro.api.load_sweep) a sweep and write its "
                       "typed ResultSet as CSV or JSON")
    export.add_argument("name")
    _add_runner_arguments(export)
    _add_override_arguments(export)
    export.add_argument("--format", choices=("csv", "json"), default="csv",
                        help="export format (default: csv)")
    export.add_argument("--output", "-o", default=None,
                        help="write to FILE instead of stdout")
    export.add_argument("--cached-only", action="store_true",
                        help="export cached cells only; never simulate "
                             "(repro.api.load_sweep)")
    export.set_defaults(fn=cmd_export)

    figures = sub.add_parser(
        "figures", help="regenerate the paper's ASCII figures/tables "
                        "from their registered sweeps (repro.api."
                        "run_sweep under the hood; see `report` for the "
                        "SVG + fidelity version)")
    figures.add_argument("names", nargs="*",
                         help="figure sweeps to render (default: all)")
    _add_runner_arguments(figures)
    figures.set_defaults(fn=cmd_figures)

    report = sub.add_parser(
        "report", help="build the SVG reproduction report: index.md + "
                       "per-figure SVGs + fidelity.json verdicts vs the "
                       "paper's digitized values")
    report.add_argument("names", nargs="*",
                        help="figures to include (default: all "
                             "reportable figures)")
    report.add_argument("--output", "-o", default="report",
                        help="report directory (default: report/)")
    report.add_argument("--cached-only", action="store_true",
                        help="render from cached cells only; never "
                             "simulate (partial grids are reported, "
                             "not fatal)")
    report.add_argument("--sample", action="store_true",
                        help="regenerate the pinned tiny sample "
                             "(docs/sample_report/): fixed figures, "
                             "axes and durations, scale 1.0")
    report.add_argument("--strict", action="store_true",
                        help="exit 1 if any figure verdict is FAIL")
    _add_runner_arguments(report)
    report.set_defaults(fn=cmd_report)

    perf = sub.add_parser(
        "perf", help="sim-core benchmark (BENCH_simcore.json) and "
                     "cell profiler")
    perf.add_argument("--quick", action="store_true",
                      help="CI smoke mode: scale-0.25 cells, 2 reps")
    perf.add_argument("--repetitions", type=int, default=None,
                      help="best-of-N timing (default: 3, quick: 2)")
    perf.add_argument("--output", default=None,
                      help="where to write the bench JSON (default: "
                           "BENCH_simcore.json, or nothing under "
                           "--check; '' always skips)")
    perf.add_argument("--baseline", default="BENCH_simcore.json",
                      help="committed baseline for --check and the "
                           "pre-overhaul reference block")
    perf.add_argument("--check", action="store_true",
                      help="exit 1 if events/sec regressed more than "
                           "--tolerance vs the baseline")
    perf.add_argument("--tolerance", type=float, default=0.30,
                      help="allowed fractional events/sec drop "
                           "(default 0.30)")
    perf.add_argument("--profile", metavar="SWEEP", default=None,
                      help="cProfile one registry cell instead of "
                           "benchmarking")
    perf.add_argument("--cell", type=int, default=0,
                      help="cell index for --profile (default 0)")
    perf.add_argument("--top", type=int, default=25,
                      help="rows to print for --profile")
    perf.add_argument("--sort", default="tottime",
                      help="profile sort key: tottime/cumulative/ncalls")
    perf.add_argument("--scale", type=float, default=None,
                      help="scale for --profile cells (default 1.0)")
    perf.set_defaults(fn=cmd_perf)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
