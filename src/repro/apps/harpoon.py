"""Harpoon-style session-based traffic generation (§5.2, Table 1).

Harpoon (Sommers/Kim/Barford 2004) models users as *sessions* that issue
file transfers with exponential inter-arrival times and heavy-tailed file
sizes.  The paper parameterizes it with Weibull(shape=0.35, scale=10039)
file sizes — mean ~50 KB, finite variance — and exponential inter-arrival
times with mean 2 s on the access testbed ("exp-a") and 1 s on the
backbone ("exp-b").

Crucially, a session issues its transfers *on schedule*, not after the
previous transfer finished: under overload, transfers pile up, which is
how the paper's ``short-overload`` scenario reaches ~2170 concurrent
flows from 768 sessions.
"""

import math

import numpy as np

from repro.tcp import TcpConnection, TcpListener
from repro.tcp.cc import make_cc

#: Paper's file size distribution parameters.
WEIBULL_SHAPE = 0.35
WEIBULL_SCALE = 10039.0

#: Size of the client's request message in the download direction.
REQUEST_BYTES = 300


def weibull_mean(shape=WEIBULL_SHAPE, scale=WEIBULL_SCALE):
    """Analytic mean of the file-size distribution (~50 KB in the paper)."""
    return scale * math.gamma(1.0 + 1.0 / shape)


def weibull_file_sizer(rng, shape=WEIBULL_SHAPE, scale=WEIBULL_SCALE, minimum=1):
    """Return a zero-argument sampler of file sizes in bytes."""

    def sample():
        return max(minimum, int(rng.weibull(shape) * scale))

    return sample


class HarpoonStats:
    """Aggregate statistics across all transfers of one generator."""

    def __init__(self):
        self.started = 0
        self.completed = 0
        self.failed = 0
        self.skipped = 0
        self.bytes_completed = 0
        self.flow_completion_times = []
        self.active = 0
        self.active_samples = []

    @property
    def mean_concurrent_flows(self):
        """Mean number of simultaneously active transfers (Table 1 column)."""
        if not self.active_samples:
            return 0.0
        return float(np.mean(self.active_samples))

    def reset_measurements(self):
        """Clear windowed measurements (keep live transfer accounting)."""
        self.active_samples = []
        self.flow_completion_times = []
        self.completed = 0
        self.failed = 0
        self.bytes_completed = 0


class HarpoonGenerator:
    """Session-based traffic between server and client pools.

    Parameters
    ----------
    sim:
        Driving simulator.
    servers, clients:
        Host pools; session ``i`` runs between ``servers[i % len]`` and
        ``clients[i % len]``.
    sessions:
        Number of concurrent user sessions.
    direction:
        ``"down"`` — servers send the files (typical web browsing);
        ``"up"`` — clients upload the files.
    interarrival_mean:
        Mean of the exponential gap between transfer starts per session.
    rng:
        numpy Generator for all randomness of this generator.
    cc:
        Congestion control used by the transfer senders.
    session_cap:
        Maximum transfers a single session may have outstanding.  Under
        overload new arrivals are skipped once the cap is reached, which
        is what keeps Harpoon's 2-hour overload runs at a stable
        concurrency (the paper's short-overload levels off at ~2170
        concurrent flows for 768 sessions).
    max_active:
        Safety valve bounding simultaneously active transfers; reaching
        it counts transfers as ``skipped`` (never triggered in the
        paper-scale scenarios).
    """

    def __init__(self, sim, servers, clients, sessions, direction="down",
                 interarrival_mean=2.0, rng=None, file_sizer=None,
                 cc="cubic", port=8080, session_cap=8, max_active=20_000,
                 sample_interval=0.25):
        if direction not in ("down", "up"):
            raise ValueError("direction must be 'down' or 'up', not %r" % direction)
        self.sim = sim
        self.servers = list(servers)
        self.clients = list(clients)
        self.sessions = sessions
        self.direction = direction
        self.interarrival_mean = interarrival_mean
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.file_sizer = (file_sizer if file_sizer is not None
                           else weibull_file_sizer(self.rng))
        self.cc_name = cc
        self.port = port
        self.session_cap = session_cap
        self.max_active = max_active
        self.sample_interval = sample_interval
        self.stats = HarpoonStats()
        self._session_active = [0] * sessions
        self._listeners = []
        self._connections = set()
        self._stopped = False
        self._started = False

    # ------------------------------------------------------------------
    def start(self):
        """Install listeners, launch sessions and the concurrency sampler."""
        if self._started:
            raise RuntimeError("HarpoonGenerator already started")
        self._started = True
        for server in self.servers:
            listener = TcpListener(
                self.sim, server, self.port,
                on_connection=self._on_server_connection,
                cc_factory=lambda: make_cc(self.cc_name),
            )
            self._listeners.append(listener)
        # Stagger session phase uniformly over one inter-arrival mean.
        self.sim.schedule_many(
            (float(self.rng.uniform(0.0, self.interarrival_mean)),
             self._session_tick, (index,))
            for index in range(self.sessions))
        self.sim.call_later(self.sample_interval, self._sample_active)

    def stop(self):
        """Stop issuing transfers and abort all live ones."""
        self._stopped = True
        for connection in list(self._connections):
            connection.abort()
        self._connections.clear()
        for listener in self._listeners:
            listener.close()

    # ------------------------------------------------------------------
    def _sample_active(self):
        if self._stopped:
            return
        self.stats.active_samples.append(self.stats.active)
        self.sim.call_later(self.sample_interval, self._sample_active)

    def _session_tick(self, index):
        if self._stopped:
            return
        self._start_transfer(index)
        gap = float(self.rng.exponential(self.interarrival_mean))
        self.sim.call_later(gap, self._session_tick, index)

    # ------------------------------------------------------------------
    def _on_server_connection(self, connection):
        self._connections.add(connection)
        connection.on_message = self._on_server_message
        connection.on_peer_fin = self._on_server_peer_fin
        connection.on_close = lambda c: self._connections.discard(c)

    def _on_server_message(self, connection, meta):
        kind, nbytes = meta
        if kind == "get":
            connection.send(nbytes, meta=("file", nbytes))
            connection.close()

    def _on_server_peer_fin(self, connection):
        # Upload direction: the client half-closed after its file; finish.
        if not connection.close_requested:
            connection.close()

    # ------------------------------------------------------------------
    def _start_transfer(self, index):
        if (self.stats.active >= self.max_active
                or self._session_active[index] >= self.session_cap):
            self.stats.skipped += 1
            return
        server = self.servers[index % len(self.servers)]
        client = self.clients[index % len(self.clients)]
        nbytes = self.file_sizer()
        connection = TcpConnection(
            self.sim, client, peer_addr=server.addr, peer_port=self.port,
            cc=make_cc(self.cc_name),
        )
        self._connections.add(connection)
        self.stats.started += 1
        self.stats.active += 1
        self._session_active[index] += 1
        state = {"t0": self.sim.now, "bytes": nbytes, "done": False}

        def finish(success):
            if state["done"]:
                return
            state["done"] = True
            self.stats.active -= 1
            self._session_active[index] -= 1
            if success:
                self.stats.completed += 1
                self.stats.bytes_completed += state["bytes"]
                self.stats.flow_completion_times.append(
                    self.sim.now - state["t0"])
            else:
                self.stats.failed += 1

        if self.direction == "down":
            connection.on_established = (
                lambda c: c.send(REQUEST_BYTES, meta=("get", nbytes)))
            connection.on_peer_fin = lambda c: (finish(True), c.close())
        else:
            connection.on_established = (
                lambda c: (c.send(nbytes, meta=("put", nbytes)), c.close()))
            connection.on_peer_fin = lambda c: finish(True)
        connection.on_close = (
            lambda c: (finish(False), self._connections.discard(c)))
        connection.connect()

    def __repr__(self):
        return "HarpoonGenerator(%d sessions, %s, active=%d)" % (
            self.sessions, self.direction, self.stats.active)
