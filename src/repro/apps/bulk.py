"""Long-lived TCP flows — the paper's ``long`` workloads (§5.2).

Flows of infinite duration whose link utilization is "almost independent
of the number of concurrent flows".  Data always flows between a server
host (left side of the dumbbell) and a client host (right side); the
``direction`` selects who transmits:

* ``"down"`` — server transmits to client (the download scenarios),
* ``"up"`` — client transmits to server (the upload scenarios that
  triggered the bufferbloat debate).
"""

from repro.tcp import TcpConnection, TcpListener
from repro.tcp.cc import make_cc


class BulkTraffic:
    """A group of long-lived flows between server and client host pools.

    Parameters
    ----------
    sim:
        Driving simulator.
    servers, clients:
        Host pools; flow ``i`` runs between ``servers[i % len]`` and
        ``clients[i % len]``.
    count:
        Number of flows.
    direction:
        ``"down"`` (server sends) or ``"up"`` (client sends).
    cc:
        Congestion-control name (``"reno"``, ``"bic"``, ``"cubic"``).
    port:
        Listener port on the servers (one listener per server).
    stagger:
        Gap between consecutive flow starts, to avoid pathological
        synchronization of the handshakes.
    """

    def __init__(self, sim, servers, clients, count, direction="down",
                 cc="cubic", port=5001, stagger=0.1):
        if direction not in ("down", "up"):
            raise ValueError("direction must be 'down' or 'up', not %r" % direction)
        self.sim = sim
        self.servers = list(servers)
        self.clients = list(clients)
        self.count = count
        self.direction = direction
        self.cc_name = cc
        self.port = port
        self.stagger = stagger
        self.connections = []
        self._listeners = []
        self._started = False

    def start(self):
        """Install listeners and launch all flows."""
        if self._started:
            raise RuntimeError("BulkTraffic already started")
        self._started = True
        on_accept = None
        if self.direction == "down":
            # Server pushes for the lifetime of the experiment.
            on_accept = self._serve_download
        for server in self.servers:
            listener = TcpListener(
                self.sim, server, self.port,
                on_connection=on_accept,
                cc_factory=lambda: make_cc(self.cc_name),
            )
            self._listeners.append(listener)
        self.sim.schedule_many(
            (index * self.stagger, self._launch_flow, (index,))
            for index in range(self.count))

    def _serve_download(self, connection):
        connection.send_forever()

    def _launch_flow(self, index):
        server = self.servers[index % len(self.servers)]
        client = self.clients[index % len(self.clients)]
        connection = TcpConnection(
            self.sim, client,
            peer_addr=server.addr, peer_port=self.port,
            cc=make_cc(self.cc_name),
        )
        if self.direction == "up":
            connection.on_established = lambda c: c.send_forever()
        connection.connect()
        self.connections.append(connection)

    def stop(self):
        """Abort all flows (used at the end of an experiment)."""
        for connection in self.connections:
            connection.abort()
        for listener in self._listeners:
            listener.close()

    def sender_connections(self):
        """The endpoints that transmit the bulk data."""
        if self.direction == "up":
            return list(self.connections)
        senders = []
        for server in self.servers:
            senders.extend(server.tcp_connections.values())
        return senders

    def __repr__(self):
        return "BulkTraffic(%d %s flows, cc=%s)" % (
            self.count, self.direction, self.cc_name)
