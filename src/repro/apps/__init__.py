"""Application layer: traffic generators and the three studied applications.

* :mod:`repro.apps.bulk` — long-lived ("infinite") TCP flows, the paper's
  *long* workloads.
* :mod:`repro.apps.harpoon` — Harpoon-style session-based generator with
  heavy-tailed file sizes, the paper's *short* workloads.
* :mod:`repro.apps.voip` — PjSIP-like VoIP call streaming G.711 speech
  over RTP (Section 7).
* :mod:`repro.apps.video` — VLC-like RTP/MPEG-TS video streamer with
  pacing (Section 8).
* :mod:`repro.apps.web` — HTTP server and wget-like sequential page
  fetcher (Section 9).
"""

from repro.apps.bulk import BulkTraffic
from repro.apps.harpoon import HarpoonGenerator, HarpoonStats

__all__ = ["BulkTraffic", "HarpoonGenerator", "HarpoonStats"]
