"""Web browsing: HTTP server and wget-like page fetcher (§9.1).

The paper measures the page-load time (PLT) of a small static page —
one HTML file (15 KB), one CSS (5.8 KB) and two JPEGs (30 KB each) —
fetched sequentially over a single persistent HTTP/1.0 connection
without pipelining, 14 RTTs end to end including TCP setup and
teardown.

:class:`PageFetch` performs exactly that: connect, then for each object
send a request and wait for the full response before requesting the
next; PLT runs from SYN to the last response byte.
"""

from repro.tcp import TcpConnection, TcpListener
from repro.tcp.cc import make_cc

#: The paper's page: object sizes in bytes (html, css, jpg, jpg).
PAGE_OBJECTS = (15_000, 5_800, 30_000, 30_000)

#: HTTP request size (request line + headers).
REQUEST_BYTES = 300

WEB_PORT = 80


class WebServer:
    """Static HTTP server: replies to ``("GET", size)`` with ``size`` bytes."""

    def __init__(self, sim, node, port=WEB_PORT, cc="reno"):
        self.sim = sim
        self.node = node
        self.port = port
        self.requests_served = 0
        self.listener = TcpListener(
            sim, node, port,
            on_connection=self._on_connection,
            cc_factory=lambda: make_cc(cc),
        )

    def _on_connection(self, connection):
        connection.on_message = self._on_message
        connection.on_peer_fin = self._on_peer_fin

    def _on_message(self, connection, meta):
        kind, size = meta
        if kind == "GET":
            self.requests_served += 1
            connection.send(size, meta=("RESP", size))

    def _on_peer_fin(self, connection):
        if not connection.close_requested:
            connection.close()

    def close(self):
        self.listener.close()


class PageFetch:
    """One sequential page retrieval; measures the PLT.

    ``on_complete(fetch)`` fires after the connection closes cleanly.
    The PLT (:attr:`plt`) is available once :attr:`done`; it spans SYN
    to the arrival of the last object byte (rendering of a static page
    is constant and excluded, as with wget).
    """

    def __init__(self, sim, node, server_addr, port=WEB_PORT,
                 objects=PAGE_OBJECTS, cc="reno", on_complete=None):
        self.sim = sim
        self.node = node
        self.objects = list(objects)
        self.on_complete = on_complete
        self.started_at = None
        self.last_byte_at = None
        self.done = False
        self.failed = False
        self._next_object = 0
        self.connection = TcpConnection(
            sim, node, peer_addr=server_addr, peer_port=port,
            cc=make_cc(cc))
        self.connection.on_established = self._on_established
        self.connection.on_message = self._on_message
        self.connection.on_peer_fin = lambda c: c.close()
        self.connection.on_close = self._on_close

    def start(self):
        """Begin the fetch (SYN goes out now)."""
        self.started_at = self.sim.now
        self.connection.connect()
        return self

    @property
    def plt(self):
        """Page-load time in seconds (None until the last byte arrived)."""
        if self.last_byte_at is None:
            return None
        return self.last_byte_at - self.started_at

    # ------------------------------------------------------------------
    def _request_next(self):
        size = self.objects[self._next_object]
        self.connection.send(REQUEST_BYTES, meta=("GET", size))

    def _on_established(self, connection):
        self._request_next()

    def _on_message(self, connection, meta):
        kind, __ = meta
        if kind != "RESP":
            return
        self._next_object += 1
        if self._next_object < len(self.objects):
            self._request_next()
        else:
            self.last_byte_at = self.sim.now
            self.done = True
            connection.close()

    def _on_close(self, connection):
        if not self.done:
            self.failed = True
        if self.on_complete is not None:
            self.on_complete(self)

    def abort(self):
        """Abandon the fetch (experiment teardown)."""
        self.connection.abort()

    def analysis(self, base_rtt=None, rtt_rounds=14):
        """Classify what dominated this fetch's PLT (§9.1's tcpcsm step).

        The paper calls a PLT *RTT-dominated* when most of it is the
        ``14 x RTT`` component (queueing inflated the round trips) and
        *loss-dominated* when retransmission/timeout stalls account for
        the growth instead.  We use the connection's smoothed-RTT
        statistics — what a tcpcsm-style trace analysis estimates.

        Returns a dict with the RTT component, its share of the PLT and
        the dominance label.
        """
        plt = self.plt
        if plt is None:
            return {"class": "incomplete", "rtt_component": None,
                    "rtt_share": None}
        stats = self.connection.stats
        if stats.srtt_samples:
            srtt_avg = stats.srtt_avg
            srtt_min = stats.srtt_min
        else:
            srtt_avg = srtt_min = base_rtt or 0.0
        rtt_component = min(plt, rtt_rounds * srtt_avg)
        share = rtt_component / plt if plt > 0 else 0.0
        # Growth beyond the base-RTT budget, and how much of it queueing
        # delay (inflated sRTT) explains vs retransmission stalls.
        growth = max(0.0, plt - rtt_rounds * srtt_min)
        rtt_growth = max(0.0, rtt_rounds * (srtt_avg - srtt_min))
        if growth <= max(0.1, 0.25 * plt):
            label = "rtt-dominated"  # PLT is essentially the RTT budget
        elif rtt_growth >= 0.5 * growth:
            label = "rtt-dominated"
        elif stats.timeouts > 0 or rtt_growth < 0.3 * growth:
            label = "loss-dominated"
        else:
            label = "mixed"
        return {"class": label, "rtt_component": rtt_component,
                "rtt_share": share}
