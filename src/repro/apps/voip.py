"""VoIP calls over RTP (Section 7's application under test).

A :class:`VoipCall` streams one 8-second G.711-encoded speech sample in
20 ms RTP packets (160-byte payloads, 50 pps) from one host to another
through whatever background traffic the testbed carries — the PjSIP
setup of the paper.  After the call, the receiver side reconstructs the
played signal through the playout buffer and concealment, producing
everything the QoE models need (degraded signal, effective loss, mouth-
to-ear delay).
"""

from functools import lru_cache

import numpy as np

from repro.media.g711 import codec_round_trip
from repro.media.playout import PlayoutBuffer, reconstruct_signal
from repro.media.speech import synthesize_speech
from repro.udp.rtp import RtpReceiver, RtpSender

FRAME_SECONDS = 0.020
FRAME_SAMPLES = 160  # 20 ms at 8 kHz
PAYLOAD_BYTES = 160  # one byte per sample with G.711


@lru_cache(maxsize=64)
def call_media(sample_seed, duration):
    """Reference media for one sample: (frames tuple, clean signal).

    ``frames`` are codec round-tripped 20 ms chunks — what an error-free
    call would play; ``clean`` is their concatenation, the PESQ
    reference.
    """
    raw = synthesize_speech(sample_seed, duration=duration)
    n_frames = len(raw) // FRAME_SAMPLES
    frames = tuple(
        codec_round_trip(raw[i * FRAME_SAMPLES:(i + 1) * FRAME_SAMPLES])
        for i in range(n_frames)
    )
    clean = np.concatenate(frames)
    return frames, clean


class VoipCall:
    """One unidirectional call leg.

    Parameters
    ----------
    sim:
        Driving simulator.
    src_node, dst_node:
        Speaker and listener hosts.
    port:
        Receiver UDP port (unique per concurrent call leg).
    sample_seed, duration:
        Which reference sample to stream and its length in seconds.
    playout_delay:
        Jitter-buffer depth at the receiver.
    """

    def __init__(self, sim, src_node, dst_node, port, sample_seed=1000,
                 duration=8.0, playout_delay=0.100):
        self.sim = sim
        self.src_node = src_node
        self.dst_node = dst_node
        self.port = port
        self.sample_seed = sample_seed
        self.duration = duration
        self.playout = PlayoutBuffer(FRAME_SECONDS, playout_delay)
        self.frames, self.clean_signal = call_media(sample_seed, duration)
        self.n_frames = len(self.frames)
        self.send_times = {}
        self.receiver = None
        self.sender = None
        self._sent = 0
        self._send_frame_cb = self._send_frame  # bound once: runs per frame

    def start(self):
        """Begin streaming now; frames go out every 20 ms."""
        self.receiver = RtpReceiver(self.sim, self.dst_node, self.port)
        self.sender = RtpSender(self.sim, self.src_node, self.dst_node.addr,
                                self.port)
        self._send_frame(0)
        return self

    @property
    def end_time(self):
        """Simulated time when the last frame has been sent."""
        return self.sim.now + (self.n_frames - self._sent) * FRAME_SECONDS

    def _send_frame(self, index):
        if index >= self.n_frames:
            return
        self.send_times[index] = self.sim.now
        self.sender.send(PAYLOAD_BYTES, index * FRAME_SECONDS, index)
        self._sent += 1
        self.sim.call_later(FRAME_SECONDS, self._send_frame_cb, index + 1)

    def finish(self):
        """Close sockets and return the playout outcome + degraded signal.

        Returns ``(playout_result, degraded_signal)``.
        """
        arrivals = {}
        for rtp, arrival_time in self.receiver.arrivals:
            arrivals.setdefault(rtp.media, arrival_time)
        result = self.playout.schedule(arrivals, self.n_frames,
                                       self.send_times)
        degraded = reconstruct_signal(list(self.frames), result.statuses)
        self.receiver.close()
        self.sender.close()
        return result, degraded
