"""RTP/UDP video streaming, VLC-style with smoothing (§8.1).

The sender chops each encoded frame into 32 slices, packs them into
MPEG-TS cells (7 per RTP packet) and — crucially — *smooths* the
transmission schedule: the paper configures VLC with a 1-second
smoothing window because bursting a whole frame at line rate instantly
overflows access-link buffers.  We pace packets at the constant stream
bitrate, the limit of that smoothing.

The receiver records which RTP packets arrived within the playout
deadline; a slice is decodable iff every packet carrying part of it
made it.  An optional ARQ mode retransmits each lost packet once after
an RTT (the proprietary IPTV set-top-box recovery of §8.1, used by the
ablation benchmark; the paper's baseline has it off).
"""

from functools import lru_cache

import numpy as np

from repro.media.codec import SLICES_PER_FRAME, frame_bytes
from repro.media.mpegts import packetize, slice_packet_map
from repro.media.video_source import FPS, generate_clip
from repro.udp.rtp import RtpReceiver, RtpSender


@lru_cache(maxsize=16)
def clip_frames(clip, resolution, n_frames):
    """Cached reference frames for (clip, resolution, length)."""
    return generate_clip(clip, resolution, n_frames=n_frames)


def build_packet_plan(resolution, n_frames, fps=FPS):
    """Slice sizes and packet layout for one stream."""
    per_frame = frame_bytes(resolution, n_frames, fps)
    slice_sizes = []
    for frame_index, total in enumerate(per_frame):
        base = total // SLICES_PER_FRAME
        for slice_index in range(SLICES_PER_FRAME):
            extra = 1 if slice_index < total % SLICES_PER_FRAME else 0
            slice_sizes.append(((frame_index, slice_index), base + extra))
    plans = packetize(slice_sizes)
    return plans, slice_packet_map(plans)


class VideoStream:
    """One paced video stream between two hosts.

    Parameters
    ----------
    sim, src_node, dst_node, port:
        Endpoints (IPTV flows travel server -> client).
    clip, resolution:
        Content class ("A"/"B"/"C") and profile ("SD" 4 Mbit/s /
        "HD" 8 Mbit/s).
    duration:
        Stream length in seconds (the paper's clips run 16 s).
    deadline:
        Playout deadline relative to each packet's send time; later
        arrivals count as lost (IPTV set-top-boxes buffer well under two
        seconds).
    arq:
        When True, retransmit each missing packet once (ablation A3).
    """

    def __init__(self, sim, src_node, dst_node, port, clip="C",
                 resolution="SD", duration=8.0, fps=FPS, deadline=1.0,
                 arq=False, arq_rtt=0.1):
        self.sim = sim
        self.src_node = src_node
        self.dst_node = dst_node
        self.port = port
        self.clip = clip
        self.resolution = resolution
        self.fps = fps
        self.n_frames = max(1, int(duration * fps))
        self.deadline = deadline
        self.arq = arq
        self.arq_rtt = arq_rtt
        self.plans, self.slice_map = build_packet_plan(
            resolution, self.n_frames, fps)
        self.duration = self.n_frames / fps
        self.send_times = {}
        self.receiver = None
        self.sender = None
        self._retransmitted = set()

    def start(self):
        """Begin pacing packets at the stream bitrate."""
        self.receiver = RtpReceiver(self.sim, self.dst_node, self.port)
        self.sender = RtpSender(self.sim, self.src_node, self.dst_node.addr,
                                self.port)
        interval = self.duration / len(self.plans)
        self.sim.schedule_many(
            (index * interval, self._send_plan, (plan,))
            for index, plan in enumerate(self.plans))
        return self

    @property
    def end_time(self):
        return self.duration + self.deadline + 4 * self.arq_rtt

    def _send_plan(self, plan, retransmission=False):
        self.send_times.setdefault(plan.index, self.sim.now)
        self.sender.send(plan.payload_bytes, timestamp=self.sim.now,
                         media=plan.index)
        if self.arq and not retransmission:
            self.sim.call_later(self.arq_rtt * 2.0, self._maybe_retransmit,
                                plan)

    def _maybe_retransmit(self, plan):
        if plan.index in self._retransmitted:
            return
        arrived = any(rtp.media == plan.index
                      for rtp, __ in self.receiver.arrivals)
        if not arrived:
            self._retransmitted.add(plan.index)
            self._send_plan(plan, retransmission=True)

    def finish(self):
        """Close sockets; return the [frames, slices] reception matrix."""
        on_time = set()
        for rtp, arrival in self.receiver.arrivals:
            packet_index = rtp.media
            sent = self.send_times.get(packet_index)
            if sent is not None and arrival - sent <= self.deadline:
                on_time.add(packet_index)
        received = np.zeros((self.n_frames, SLICES_PER_FRAME), dtype=bool)
        for (frame_index, slice_index), packets in self.slice_map.items():
            received[frame_index][slice_index] = all(
                p in on_time for p in packets)
        self.receiver.close()
        self.sender.close()
        return received

    @property
    def packet_loss_rate(self):
        """Wire-level loss of the stream (for Figure 9's discussion)."""
        if self.receiver is None or not self.plans:
            return 0.0
        got = len({rtp.media for rtp, __ in self.receiver.arrivals})
        return max(0.0, 1.0 - got / len(self.plans))
