"""Fidelity scoring: reproduced grids vs the paper's digitized values.

The digitized numbers in :mod:`repro.core.paper_data` have sat next to
the benchmarks for human eyeballing; this module turns them into a
machine-checked verdict per figure.  For every reportable sweep a
:class:`FigureCheck` declares which paper grid each reproduced column is
compared against and which thresholds gate the verdict; calling
:func:`evaluate` with the sweep's :class:`repro.results.set.ResultSet`
produces a :class:`FigureFidelity` carrying the metrics and a
``PASS``/``WARN``/``FAIL`` verdict (``SKIP`` when there is no digitized
data or no overlapping cells).

Metrics
-------
``max_abs_deviation`` / ``mean_abs_deviation``
    Cell-wise ``|reproduced - paper|`` in the figure's own units (MOS,
    SSIM, seconds of page-load time, percentage points of utilization,
    ms of queueing delay).
``rank_correlation``
    Spearman's rho between the paper's values and ours over **all**
    compared cells — does the reproduction order the cells the way the
    paper does?  This is the primary scientific gate: the paper's
    conclusions are about *which* configurations are better, not about
    third decimals.
``buffer_rank_correlation``
    Mean Spearman's rho along the buffer axis, per workload row, over
    rows whose paper series is not flat (range >= ``flat_epsilon``) and
    has at least three overlapping sizes.  ``None`` when no row
    qualifies — flat paper rows carry no ordering signal.
``trend_agreement``
    Fraction of qualifying rows whose end-to-end direction (value at
    the largest highlighted buffer minus the smallest — the paper's
    discussion anchors, see
    :data:`repro.core.paper_data.HIGHLIGHT_BUFFERS`) matches the
    paper's sign.
``monotonicity``
    For checks with :class:`MonotoneSpec` expectations (Figure 5):
    the minimum per-row Spearman's rho of the reproduced series against
    its expected direction across the buffer axis.

Verdict rule: every *gated* metric is graded PASS/WARN/FAIL against its
thresholds and the figure verdict is the worst grade.  Metrics whose
value is undefined (``None``) never gate.  Threshold values are
calibrated against full-scale (``REPRO_SCALE=4``) reproduction runs —
see ``docs/REPORTING.md`` for each figure's measured margins.
"""

import math
from dataclasses import dataclass, field

from repro.core import paper_data

PASS, WARN, FAIL, SKIP = "PASS", "WARN", "FAIL", "SKIP"

#: Severity order for combining per-gate grades into one verdict.
_SEVERITY = {PASS: 0, WARN: 1, FAIL: 2}


# ---------------------------------------------------------------------------
# Rank statistics (dependency-free).
# ---------------------------------------------------------------------------
def _ranks(values):
    """Average ranks (1-based) with ties sharing their mean rank."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    start = 0
    while start < len(order):
        stop = start
        while (stop + 1 < len(order)
               and values[order[stop + 1]] == values[order[start]]):
            stop += 1
        mean_rank = (start + stop) / 2.0 + 1.0
        for position in range(start, stop + 1):
            ranks[order[position]] = mean_rank
        start = stop + 1
    return ranks


def spearman(xs, ys):
    """Spearman's rank correlation; None for n < 2 or a constant side."""
    if len(xs) != len(ys):
        raise ValueError("length mismatch: %d vs %d" % (len(xs), len(ys)))
    if len(xs) < 2:
        return None
    rank_x, rank_y = _ranks(list(xs)), _ranks(list(ys))
    mean_x = sum(rank_x) / len(rank_x)
    mean_y = sum(rank_y) / len(rank_y)
    sxy = sum((a - mean_x) * (b - mean_y) for a, b in zip(rank_x, rank_y))
    sxx = sum((a - mean_x) ** 2 for a in rank_x)
    syy = sum((b - mean_y) ** 2 for b in rank_y)
    if sxx == 0.0 or syy == 0.0:
        return None  # a constant series carries no ordering signal
    return sxy / math.sqrt(sxx * syy)


# ---------------------------------------------------------------------------
# Check declarations.
# ---------------------------------------------------------------------------
def _default_map_key(key):
    """Sweep cell key -> paper grid key: ``(workload, buffer)``."""
    return (key[0], key[1])


def _split_label_key(key):
    """table1-access keys: ``("short-few/up", (64, 8))`` -> paper key."""
    return tuple(key[0].split("/", 1))


def _workload_key(key):
    """table1-backbone keys: ``("long", 749)`` -> ``"long"``."""
    return key[0]


@dataclass(frozen=True)
class Thresholds:
    """Verdict gates for one figure (all in the figure's units).

    A ``None`` pass bound disables that gate entirely; a metric whose
    measured value is ``None`` (undefined) never gates either way.
    """

    max_deviation_pass: float = None
    max_deviation_warn: float = None
    rank_pass: float = None
    rank_warn: float = None
    trend_pass: float = None
    trend_warn: float = None
    #: Paper rows with a value range below this are "flat" and excluded
    #: from buffer-axis rank / trend statistics.
    flat_epsilon: float = 0.0


@dataclass(frozen=True)
class SeriesSpec:
    """One reproduced column compared against one digitized paper grid."""

    label: str  # series name, e.g. "talks" / "uplink" / "SD"
    paper: dict  # {paper key: digitized value}
    column: str  # record column (repro.results record.value name)
    factor: float = 1.0  # repro value -> figure units (e.g. 100 for %)
    filters: tuple = ()  # ((column, value), ...) pre-filters on the set
    map_key: callable = _default_map_key


@dataclass(frozen=True)
class MonotoneSpec:
    """A qualitative expectation: ``column`` is monotone in the buffer
    size (``direction`` +1 rising / -1 falling) for every workload row.
    Used where the paper shows a trend but no digitizable per-cell
    numbers (Figure 5's utilization boxplots).  On sweeps with extra
    cell axes (resolution, discipline), ``filters`` must pin them to a
    single variant — mixed variants in one row raise rather than
    silently corrupting the per-row statistic."""

    label: str
    column: str
    direction: int = 1
    factor: float = 1.0
    filters: tuple = ()  # ((column, value), ...) pre-filters on the set


@dataclass(frozen=True)
class FigureCheck:
    """Everything needed to score one figure's reproduction."""

    figure: str
    units: str  # unit of the deviation metrics ("MOS", "pp", "s", ...)
    series: tuple = ()  # SeriesSpec entries
    monotone: tuple = ()  # MonotoneSpec entries
    thresholds: Thresholds = field(default_factory=Thresholds)
    #: Envelope mode (Figure 4a): every cell of ``envelope_column``
    #: (scaled by ``envelope_factor``) must stay below ``envelope_bound``.
    envelope_column: str = None
    envelope_bound: float = None
    envelope_factor: float = 1.0
    notes: str = ""


@dataclass
class FigureFidelity:
    """The scored comparison of one figure (see module docstring)."""

    figure: str
    verdict: str
    units: str = ""
    compared: int = 0
    metrics: dict = field(default_factory=dict)
    gates: dict = field(default_factory=dict)
    series: list = field(default_factory=list)
    worst: list = field(default_factory=list)
    notes: str = ""

    def to_json(self):
        """Plain-JSON dict (the ``fidelity.json`` per-figure shape)."""
        return {
            "figure": self.figure,
            "verdict": self.verdict,
            "units": self.units,
            "compared": self.compared,
            "metrics": dict(self.metrics),
            "gates": {name: dict(gate) for name, gate in self.gates.items()},
            "series": [dict(entry) for entry in self.series],
            "worst": [list(entry) for entry in self.worst],
            "notes": self.notes,
        }


# ---------------------------------------------------------------------------
# Evaluation.
# ---------------------------------------------------------------------------
def _series_pairs(spec, results):
    """Aligned ``{paper key: (paper value, repro value)}`` for one series."""
    filters = dict(spec.filters)
    grid = results.value_map(spec.column, **filters)
    pairs = {}
    for cell_key, repro_value in grid.items():
        key = spec.map_key(cell_key)
        if key in spec.paper and repro_value is not None:
            pairs[key] = (float(spec.paper[key]),
                          float(repro_value) * spec.factor)
    return pairs


#: The paper's discussion anchors, flattened across both testbeds;
#: trend agreement compares the endpoints at the smallest/largest
#: highlighted size present in a row (falling back to the row's own
#: extremes when a partial grid holds no highlighted cell).
_HIGHLIGHTS = frozenset(size for sizes in
                        paper_data.HIGHLIGHT_BUFFERS.values()
                        for size in sizes)


def _buffer_rows(pairs):
    """Group series pairs by workload row: ``{row: [(buffer, p, r)]}``.

    Only keys of the ``(workload, numeric buffer)`` shape contribute —
    table-style paper keys carry no buffer axis.
    """
    rows = {}
    for key, (paper_value, repro_value) in pairs.items():
        if not (isinstance(key, tuple) and len(key) == 2
                and isinstance(key[1], (int, float))):
            continue
        rows.setdefault(key[0], []).append((key[1], paper_value,
                                            repro_value))
    return {row: sorted(points) for row, points in rows.items()}


def _trend_endpoints(points):
    """The two (buffer, paper, repro) anchor points of one sorted row:
    the smallest and largest *highlighted* buffer size present
    (:data:`repro.core.paper_data.HIGHLIGHT_BUFFERS`), or the row's own
    extremes when no highlighted size overlaps."""
    highlighted = [point for point in points if point[0] in _HIGHLIGHTS]
    anchors = highlighted if len(highlighted) >= 2 else points
    return anchors[0], anchors[-1]


def _grade(value, pass_bound, warn_bound, higher_is_better):
    if higher_is_better:
        if value >= pass_bound:
            return PASS
        if warn_bound is not None and value >= warn_bound:
            return WARN
        return FAIL
    if value <= pass_bound:
        return PASS
    if warn_bound is not None and value <= warn_bound:
        return WARN
    return FAIL


def evaluate(check, results):
    """Score one figure's :class:`ResultSet` against its check."""
    thresholds = check.thresholds
    fidelity = FigureFidelity(figure=check.figure, verdict=SKIP,
                              units=check.units, notes=check.notes)
    deviations = []  # (abs deviation, paper key, paper, repro)
    pooled_paper, pooled_repro = [], []
    row_rhos, trend_hits, trend_rows = [], 0, 0

    for spec in check.series:
        pairs = _series_pairs(spec, results)
        series_devs = [abs(r - p) for p, r in pairs.values()]
        fidelity.series.append({
            "label": spec.label,
            "column": spec.column,
            "compared": len(pairs),
            "paper_cells": len(spec.paper),
            "max_abs_deviation": max(series_devs) if series_devs else None,
        })
        for key, (paper_value, repro_value) in sorted(
                pairs.items(), key=lambda item: str(item[0])):
            deviations.append((abs(repro_value - paper_value),
                               "%s %s" % (spec.label, "/".join(
                                   str(part) for part in (
                                       key if isinstance(key, tuple)
                                       else (key,)))),
                               paper_value, repro_value))
            pooled_paper.append(paper_value)
            pooled_repro.append(repro_value)
        for row, points in sorted(_buffer_rows(pairs).items()):
            paper_series = [p for __, p, __ in points]
            repro_series = [r for __, __, r in points]
            if (len(points) < 3 or max(paper_series) - min(paper_series)
                    < thresholds.flat_epsilon):
                continue
            rho = spearman(paper_series, repro_series)
            if rho is not None:
                row_rhos.append(rho)
            trend_rows += 1
            low, high = _trend_endpoints(points)
            paper_delta = high[1] - low[1]
            repro_delta = high[2] - low[2]
            if paper_delta * repro_delta > 0 or (
                    paper_delta == 0 and repro_delta == 0):
                trend_hits += 1

    # Qualitative expectations evaluated on the reproduction alone.
    mono_rhos = []
    for spec in check.monotone:
        grid = results.value_map(spec.column, **dict(spec.filters))
        rows = {}
        for key, value in grid.items():
            if value is None or not isinstance(key[1], (int, float)):
                continue
            row = rows.setdefault(key[0], {})
            if key[1] in row:
                raise ValueError(
                    "monotone check %r on figure %r sees several cells "
                    "at (%r, %r) — pin the sweep's extra axes with "
                    "MonotoneSpec.filters" % (spec.label, check.figure,
                                              key[0], key[1]))
            row[key[1]] = float(value) * spec.factor
        for row, by_buffer in sorted(rows.items()):
            points = sorted(by_buffer.items())
            if len(points) < 3:
                continue
            rho = spearman([b for b, __ in points], [v for __, v in points])
            if rho is not None:
                mono_rhos.append(rho * spec.direction)

    # Envelope mode (Figure 4a).
    envelope_max = None
    if check.envelope_column is not None:
        values = [float(value) * check.envelope_factor for value in
                  results.value_map(check.envelope_column).values()
                  if value is not None]
        envelope_max = max(values) if values else None

    compared = len(deviations)
    fidelity.compared = compared
    if compared == 0 and envelope_max is None and not mono_rhos:
        fidelity.notes = (fidelity.notes
                          or "no overlap between reproduced cells and "
                             "digitized paper data")
        return fidelity

    # Fewer than three pooled pairs make Spearman degenerate (always
    # exactly +/-1 — a sign test masquerading as a correlation), so the
    # metric is undefined and never gates (fig5 has only two anchors;
    # its ordering is gated by monotonicity instead).
    pooled_rho = (spearman(pooled_paper, pooled_repro)
                  if compared >= 3 else None)
    metrics = {
        "max_abs_deviation": (max(d for d, *__ in deviations)
                              if deviations else None),
        "mean_abs_deviation": (sum(d for d, *__ in deviations) / compared
                               if deviations else None),
        "rank_correlation": pooled_rho,
        "buffer_rank_correlation": (sum(row_rhos) / len(row_rhos)
                                    if row_rhos else None),
        "trend_agreement": (trend_hits / trend_rows if trend_rows
                            else None),
        "monotonicity": min(mono_rhos) if mono_rhos else None,
        "envelope_max": envelope_max,
    }
    fidelity.metrics = metrics
    fidelity.worst = [
        [label, paper_value, round(repro_value, 4)]
        for __, label, paper_value, repro_value in sorted(
            deviations, key=lambda item: (-item[0], item[1]))[:3]]

    # -- gates ----------------------------------------------------------
    gates = {}

    def gate(name, value, pass_bound, warn_bound, higher_is_better):
        if value is None or pass_bound is None:
            return
        gates[name] = {
            "value": value,
            "pass": pass_bound,
            "warn": warn_bound,
            "level": _grade(value, pass_bound, warn_bound,
                            higher_is_better),
        }

    gate("max_abs_deviation", metrics["max_abs_deviation"],
         thresholds.max_deviation_pass, thresholds.max_deviation_warn,
         higher_is_better=False)
    rank_value = metrics["buffer_rank_correlation"]
    if rank_value is None:
        rank_value = metrics["rank_correlation"]
    gate("rank_correlation", rank_value, thresholds.rank_pass,
         thresholds.rank_warn, higher_is_better=True)
    gate("trend_agreement", metrics["trend_agreement"],
         thresholds.trend_pass, thresholds.trend_warn,
         higher_is_better=True)
    gate("monotonicity", metrics["monotonicity"], thresholds.rank_pass,
         thresholds.rank_warn, higher_is_better=True)
    if check.envelope_bound is not None:
        gate("envelope_max", envelope_max, check.envelope_bound,
             check.envelope_bound * 1.5, higher_is_better=False)
    fidelity.gates = gates
    if gates:
        fidelity.verdict = max((g["level"] for g in gates.values()),
                               key=_SEVERITY.get)
    else:
        fidelity.verdict = SKIP
        fidelity.notes = fidelity.notes or ("not enough overlapping data "
                                            "to gate any metric")
    return fidelity


# ---------------------------------------------------------------------------
# The per-figure check catalog.
#
# Threshold calibration: the PASS/WARN bounds below were set against a
# full-scale (REPRO_SCALE=4) reproduction run with comfortable headroom
# over the measured deviation (see docs/REPORTING.md for the measured
# values per figure).  Tightening a bound is a deliberate act: do it
# only with a fresh full-scale run in hand.
# ---------------------------------------------------------------------------
_MOS_THRESHOLDS = Thresholds(
    max_deviation_pass=1.5, max_deviation_warn=2.5,
    rank_pass=0.6, rank_warn=0.3,
    trend_pass=0.5, trend_warn=0.25,
    flat_epsilon=0.5)


def _table1_access_series():
    """Utilization/loss series from Table 1's access half."""
    columns = (("up utilization", 0, "up_utilization", 100.0),
               ("down utilization", 1, "down_utilization", 100.0),
               ("up loss", 2, "up_loss", 100.0),
               ("down loss", 3, "down_loss", 100.0))
    return tuple(
        SeriesSpec(label, {key: row[index] for key, row
                           in paper_data.TABLE1_ACCESS.items()},
                   column, factor=factor, map_key=_split_label_key)
        for label, index, column, factor in columns)


def _table1_backbone_series():
    columns = (("down utilization", 0, "down_utilization", 100.0),
               ("loss", 2, "down_loss", 100.0))
    return tuple(
        SeriesSpec(label, {key: row[index] for key, row
                           in paper_data.TABLE1_BACKBONE.items()},
                   column, factor=factor, map_key=_workload_key)
        for label, index, column, factor in columns)


def _fig5_anchor(index):
    """Table 1's long-many/bidir utilization, anchored at the 64-packet
    downlink-BDP buffer of the fig5 sweep."""
    return {("long-many", 64):
            paper_data.TABLE1_ACCESS[("long-many", "bidir")][index]}


CHECKS = {
    "fig4-up": FigureCheck(
        figure="fig4-up", units="ms",
        series=(SeriesSpec("uplink", paper_data.FIG4_UP_ONLY_UPLINK,
                           "up_mean_delay", factor=1000.0),),
        thresholds=Thresholds(
            max_deviation_pass=1500.0, max_deviation_warn=2500.0,
            rank_pass=0.9, rank_warn=0.6,
            trend_pass=0.99, trend_warn=0.5,
            flat_epsilon=50.0),
        notes="the bufferbloat staircase: ordering and growth trend are "
              "the signal, absolute ms deviations are secondary"),
    "fig4-down": FigureCheck(
        figure="fig4-down", units="ms",
        envelope_column="down_mean_delay",
        envelope_bound=paper_data.FIG4_DOWN_ONLY_DOWNLINK_MAX_MS,
        envelope_factor=1000.0,
        notes="Figure 4a digitizes ambiguously; the paper's qualitative "
              "envelope (mean downlink delay < 200 ms everywhere) is "
              "checked instead"),
    "fig5": FigureCheck(
        figure="fig5", units="pp",
        series=(SeriesSpec("up utilization", _fig5_anchor(0),
                           "up_utilization", factor=100.0),
                SeriesSpec("down utilization", _fig5_anchor(1),
                           "down_utilization", factor=100.0)),
        monotone=(MonotoneSpec("down utilization grows with the buffer",
                               "down_utilization", direction=1),),
        thresholds=Thresholds(
            max_deviation_pass=25.0, max_deviation_warn=40.0,
            rank_pass=0.8, rank_warn=0.5),
        notes="Figure 5's boxplots are not digitized; the check anchors "
              "on Table 1's long-many/bidir utilizations at the 64-packet "
              "BDP buffer plus the figure's monotone downlink trend"),
    "table1-access": FigureCheck(
        figure="table1-access", units="pp",
        series=_table1_access_series(),
        thresholds=Thresholds(
            max_deviation_pass=35.0, max_deviation_warn=50.0,
            rank_pass=0.6, rank_warn=0.3),
        notes="Harpoon session behaviour is calibrated, not specified "
              "(see docs/SCENARIOS.md), so utilization/loss columns "
              "carry wide tolerances"),
    "table1-backbone": FigureCheck(
        figure="table1-backbone", units="pp",
        series=_table1_backbone_series(),
        thresholds=Thresholds(
            max_deviation_pass=25.0, max_deviation_warn=40.0,
            rank_pass=0.6, rank_warn=0.3)),
    "fig7a": FigureCheck(
        figure="fig7a", units="MOS",
        series=(SeriesSpec("listens", paper_data.FIG7A_LISTENS, "listens"),
                SeriesSpec("talks", paper_data.FIG7A_TALKS, "talks")),
        thresholds=Thresholds(
            max_deviation_pass=1.5, max_deviation_warn=2.5,
            rank_pass=0.6, rank_warn=0.3,
            trend_pass=0.5, trend_warn=0.25,
            # Figure 7a is the paper's near-flat figure (download
            # activity barely moves MOS): every row's range is < 0.8
            # MOS, so per-row buffer ordering is noise and the pooled
            # rank correlation carries the gate instead.
            flat_epsilon=0.8),),
    "fig7b": FigureCheck(
        figure="fig7b", units="MOS",
        series=(SeriesSpec("listens", paper_data.FIG7B_LISTENS, "listens"),
                SeriesSpec("talks", paper_data.FIG7B_TALKS, "talks")),
        thresholds=_MOS_THRESHOLDS,
        notes="the headline bufferbloat collapse: MOS must fall with the "
              "uplink buffer in both call directions"),
    "fig8": FigureCheck(
        figure="fig8", units="MOS",
        series=(SeriesSpec("listens", paper_data.FIG8, "listens"),),
        thresholds=_MOS_THRESHOLDS),
    "fig9a": FigureCheck(
        figure="fig9a", units="SSIM",
        series=(SeriesSpec("SD", paper_data.FIG9A_SD, "ssim",
                           filters=(("resolution", "SD"),)),
                SeriesSpec("HD", paper_data.FIG9A_HD, "ssim",
                           filters=(("resolution", "HD"),))),
        thresholds=Thresholds(
            max_deviation_pass=0.35, max_deviation_warn=0.6,
            rank_pass=0.5, rank_warn=0.2, flat_epsilon=0.1),
        notes="our stream recovers at large buffers under short-few "
              "where the paper's stays degraded — expect WARN"),
    "fig9b": FigureCheck(
        figure="fig9b", units="SSIM",
        series=(SeriesSpec("SD", paper_data.FIG9B_SD, "ssim",
                           filters=(("resolution", "SD"),)),
                SeriesSpec("HD", paper_data.FIG9B_HD, "ssim",
                           filters=(("resolution", "HD"),))),
        thresholds=Thresholds(
            max_deviation_pass=0.45, max_deviation_warn=0.6,
            rank_pass=0.5, rank_warn=0.2, flat_epsilon=0.1)),
    "fig10a": FigureCheck(
        figure="fig10a", units="s",
        series=(SeriesSpec("median PLT", paper_data.FIG10A, "median_plt"),),
        thresholds=Thresholds(
            max_deviation_pass=4.0, max_deviation_warn=8.0,
            rank_pass=0.4, rank_warn=0.0, flat_epsilon=1.0)),
    "fig10b": FigureCheck(
        figure="fig10b", units="s",
        series=(SeriesSpec("median PLT", paper_data.FIG10B, "median_plt"),),
        thresholds=Thresholds(
            max_deviation_pass=12.0, max_deviation_warn=20.0,
            rank_pass=0.5, rank_warn=0.2, flat_epsilon=1.0)),
    "fig11": FigureCheck(
        figure="fig11", units="s",
        series=(SeriesSpec("median PLT", paper_data.FIG11, "median_plt"),),
        thresholds=Thresholds(
            max_deviation_pass=5.0, max_deviation_warn=10.0,
            rank_pass=0.4, rank_warn=0.0, flat_epsilon=1.0)),
}


def check_for(figure):
    """The :class:`FigureCheck` for a figure name, or None (=> SKIP)."""
    return CHECKS.get(figure)


def table2_fidelity():
    """Score the closed-form Table 2 (no sweep results involved).

    Compares :mod:`repro.core.buffers`'s analytic maximum queueing
    delays against the paper's printed values; the paper rounds to
    whole (access) / tenth (backbone) milliseconds, so a 10% relative
    deviation gate is generous while still catching any topology-rate
    regression.
    """
    from repro.core.buffers import (access_buffer_delays,
                                    backbone_buffer_delays)

    deviations = []
    for packets, up_delay, down_delay in access_buffer_delays():
        paper = paper_data.TABLE2_ACCESS.get(packets)
        if paper is None:
            continue
        for computed, printed, side in ((up_delay * 1000.0, paper[0], "up"),
                                        (down_delay * 1000.0, paper[1],
                                         "down")):
            deviations.append((abs(computed - printed) / max(printed, 1.0),
                               "access %d %s" % (packets, side),
                               printed, computed))
    for packets, delay in backbone_buffer_delays():
        printed = paper_data.TABLE2_BACKBONE.get(packets)
        if printed is None:
            continue
        computed = delay * 1000.0
        deviations.append((abs(computed - printed) / max(printed, 0.1),
                           "backbone %d" % packets, printed, computed))
    fidelity = FigureFidelity(figure="table2", verdict=SKIP,
                              units="relative",
                              notes="closed-form check: analytic max "
                                    "queueing delays vs the printed "
                                    "Table 2")
    if not deviations:
        return fidelity
    worst = max(d for d, *__ in deviations)
    fidelity.compared = len(deviations)
    fidelity.metrics = {
        "max_abs_deviation": worst,
        "mean_abs_deviation": sum(d for d, *__ in deviations)
        / len(deviations),
    }
    fidelity.gates = {"max_abs_deviation": {
        "value": worst, "pass": 0.1, "warn": 0.25,
        "level": _grade(worst, 0.1, 0.25, higher_is_better=False)}}
    fidelity.verdict = fidelity.gates["max_abs_deviation"]["level"]
    fidelity.worst = [
        [label, printed, round(computed, 4)]
        for __, label, printed, computed in sorted(
            deviations, key=lambda item: (-item[0], item[1]))[:3]]
    return fidelity


def skip(figure, notes="no digitized paper data for this sweep"):
    """A SKIP :class:`FigureFidelity` for sweeps without paper data."""
    return FigureFidelity(figure=figure, verdict=SKIP, notes=notes)
