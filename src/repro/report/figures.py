"""SVG builders for every reportable paper artifact.

Each entry of :data:`REPORT_FIGURES` describes one report figure: which
registered sweep feeds it (``sweep`` — None for the closed-form
Table 2) and how its :class:`repro.results.set.ResultSet` is drawn
(``build(results, spec, scale) -> SVG markup``).  The drawings follow
the paper's figure styles — per-(workload, buffer) heatmaps with the
traffic-light colouring of :data:`repro.viz.heatmap.MARKER_COLORS`,
Figure 5's utilization-vs-buffer chart, and side-by-side
measured-vs-paper tables — and overlay the digitized paper value
(small, grey) in every cell where :data:`repro.core.paper_data`
transcribes one.

Builders tolerate partial results (``--cached-only`` on a cold cache):
cells absent from the set render as neutral empty boxes, so a report is
always producible and visibly honest about its coverage.
"""

from dataclasses import dataclass

from repro.core import paper_data
from repro.core.paper_data import DIGITIZED
from repro.qoe.scales import heat_marker_from_delay, heat_marker_from_mos
from repro.report import svg


@dataclass(frozen=True)
class ReportFigure:
    """One renderable report figure."""

    name: str
    sweep: str  # registered sweep feeding it; None for closed-form
    title: str
    build: callable  # build(results, spec, scale) -> SVG string


def _strip_key(key):
    """Reduce a sweep cell key to the ``(workload, buffer)`` grid cell."""
    return (key[0], key[1])


def _grid(results, column, **filters):
    """``{(workload, buffer): value}`` for one column, axes pinned by
    ``filters`` (missing column values are simply absent)."""
    grid = {}
    for key, value in results.value_map(column, **filters).items():
        grid[_strip_key(key)] = value
    return grid


def _paper_overlay(figure, label):
    """The digitized grid for one series of ``figure`` (or ``{}``)."""
    return DIGITIZED.get(figure, {}).get(label, {})


def _heat_cell(values, markers, paper, fmt):
    """A heatmap ``cell_fn`` over value/marker grids + paper overlay."""
    def cell(row, col):
        value = values.get((row, col))
        if value is None:
            return None
        marker_value = markers.get((row, col), value)
        text = fmt % value
        subtext = None
        if (row, col) in paper:
            subtext = fmt % paper[(row, col)]
        return (text, marker_value, subtext)
    return cell


def _axes(results, spec, scale):
    """Row/column labels: the spec's axes (so missing cells show as
    gaps), falling back to the result keys for ad-hoc specs."""
    rows = list(spec.workloads(scale))
    cols = list(spec.buffer_axis(scale))
    if not rows or not cols:
        keys = sorted({_strip_key(key) for key in results.keys()})
        rows = sorted({row for row, __ in keys})
        cols = sorted({col for __, col in keys})
    return rows, cols


# ---------------------------------------------------------------------------
# Heatmap figures.
# ---------------------------------------------------------------------------
def _build_fig4(direction):
    def build(results, spec, scale):
        rows, cols = _axes(results, spec, scale)
        panels = []
        for side, overlay_label in (("up", "uplink"), ("down", "downlink")):
            delays = _grid(results, "%s_mean_delay" % side)
            values = {key: value * 1000.0 for key, value in delays.items()}
            markers = {key: heat_marker_from_delay(value)
                       for key, value in delays.items()}
            figure_name = "fig4-%s" % direction
            panels.append((
                "mean %sLINK queueing delay [ms]" % side.upper(),
                rows, cols,
                _heat_cell(values, markers,
                           _paper_overlay(figure_name, overlay_label),
                           "%.0f")))
        return svg.heatmap_panels(
            "Figure 4 (%sstream congestion): mean queueing delay"
            % ("up" if direction == "up" else "down"), panels)
    return build


def _build_voip(figure_name, title):
    def build(results, spec, scale):
        rows, cols = _axes(results, spec, scale)
        directions = dict(spec.params).get("directions",
                                           ("talks", "listens"))
        panels = []
        for direction in directions:
            values = _grid(results, direction)
            markers = {key: heat_marker_from_mos(value)
                       for key, value in values.items()}
            panels.append(("user %s — median MOS" % direction, rows, cols,
                           _heat_cell(values, markers,
                                      _paper_overlay(figure_name,
                                                     direction),
                                      "%.1f")))
        return svg.heatmap_panels(title, panels)
    return build


def _build_video(figure_name, title):
    def build(results, spec, scale):
        rows, cols = _axes(results, spec, scale)
        resolutions = dict(spec.axes).get("resolution", ("SD", "HD"))
        panels = []
        for resolution in resolutions:
            values = _grid(results, "ssim", resolution=resolution)
            mos = _grid(results, "mos", resolution=resolution)
            markers = {key: heat_marker_from_mos(value)
                       for key, value in mos.items()}
            panels.append(("%s — median SSIM" % resolution, rows, cols,
                           _heat_cell(values, markers,
                                      _paper_overlay(figure_name,
                                                     resolution),
                                      "%.2f")))
        return svg.heatmap_panels(title, panels)
    return build


def _build_web(figure_name, title):
    def build(results, spec, scale):
        rows, cols = _axes(results, spec, scale)
        values = _grid(results, "median_plt")
        mos = _grid(results, "mos")
        markers = {key: heat_marker_from_mos(value)
                   for key, value in mos.items()}
        panel = ("median page-load time [s] (colour: G.1030 MOS)",
                 rows, cols,
                 _heat_cell(values, markers,
                            _paper_overlay(figure_name, "median PLT"),
                            "%.1f"))
        return svg.heatmap_panels(title, [panel])
    return build


# ---------------------------------------------------------------------------
# Figure 5: utilization vs buffer size (median line + quartile band).
# ---------------------------------------------------------------------------
def _build_fig5(results, spec, scale):
    __, cols = _axes(results, spec, scale)
    workload = spec.workloads(scale)[0] if spec.workloads(scale) else None
    series = []
    for label, method in (("downlink", "down_utilization_boxplot"),
                          ("uplink", "up_utilization_boxplot")):
        values, band = [], []
        for buffer_packets in cols:
            key = (workload, buffer_packets)
            try:
                record = results[key]
            except KeyError:
                values.append(None)
                band.append(None)
                continue
            __, q1, median, q3, __ = getattr(record, method)()
            values.append(median * 100.0)
            band.append((q1 * 100.0, q3 * 100.0))
        series.append((label, values, band))
    return svg.line_chart(
        "Figure 5: per-second link utilization, bidirectional long "
        "workload",
        cols, series, y_label="utilization [%] (median, quartile band)",
        y_range=(0.0, 102.0), y_ticks=(0, 25, 50, 75, 100))


# ---------------------------------------------------------------------------
# Tables 1 and 2 (measured next to the paper's numbers).
# ---------------------------------------------------------------------------
def _pct(value):
    return "%.1f" % (value * 100.0)


def _paper_pct(value):
    return "%.1f" % value


def _build_table1_access(results, spec, scale):
    rows = []
    for label in spec.workloads(scale):
        paper_row = paper_data.TABLE1_ACCESS.get(
            tuple(label.split("/", 1)))
        for key in results.keys():
            if key[0] != label:
                continue
            record = results[key]
            rows.append((
                label,
                "%s / %s" % (_pct(record.value("up_utilization")),
                             _paper_pct(paper_row[0]) if paper_row
                             else "—"),
                "%s / %s" % (_pct(record.value("down_utilization")),
                             _paper_pct(paper_row[1]) if paper_row
                             else "—"),
                "%s / %s" % (_pct(record.value("up_loss")),
                             _paper_pct(paper_row[2]) if paper_row
                             else "—"),
                "%s / %s" % (_pct(record.value("down_loss")),
                             _paper_pct(paper_row[3]) if paper_row
                             else "—"),
            ))
    return svg.table(
        "Table 1 (access): measured / paper at the BDP buffers (64/8)",
        ("workload", "up util %", "down util %", "up loss %",
         "down loss %"), rows,
        note="each cell: reproduced value / paper value")


def _build_table1_backbone(results, spec, scale):
    rows = []
    for label in spec.workloads(scale):
        paper_row = paper_data.TABLE1_BACKBONE.get(label)
        for key in results.keys():
            if key[0] != label:
                continue
            record = results[key]
            rows.append((
                label,
                "%s / %s" % (_pct(record.value("down_utilization")),
                             _paper_pct(paper_row[0]) if paper_row
                             else "—"),
                "%s / %s" % (_pct(record.value("down_loss")),
                             _paper_pct(paper_row[2]) if paper_row
                             else "—"),
            ))
    return svg.table(
        "Table 1 (backbone): measured / paper at the 749-packet BDP "
        "buffer",
        ("workload", "down util %", "loss %"), rows,
        note="each cell: reproduced value / paper value")


def _build_table2(results, spec, scale):
    from repro.core.buffers import (access_buffer_delays,
                                    backbone_buffer_delays)

    rows = []
    for packets, up_delay, down_delay in access_buffer_delays():
        paper = paper_data.TABLE2_ACCESS.get(packets)
        rows.append(("access %d" % packets,
                     "%.0f / %s" % (up_delay * 1000.0,
                                    paper[0] if paper else "—"),
                     "%.0f / %s" % (down_delay * 1000.0,
                                    paper[1] if paper else "—")))
    for packets, delay in backbone_buffer_delays():
        paper = paper_data.TABLE2_BACKBONE.get(packets)
        rows.append(("backbone %d" % packets,
                     "%.1f / %s" % (delay * 1000.0,
                                    paper if paper is not None else "—"),
                     ""))
    return svg.table(
        "Table 2: maximum queueing delay per buffer size [ms]",
        ("buffer", "uplink / paper", "downlink / paper"), rows,
        note="closed-form (repro.core.buffers), no simulation involved; "
             "backbone rows have a single direction")


# ---------------------------------------------------------------------------
# The figure catalog (report order).
# ---------------------------------------------------------------------------
REPORT_FIGURES = {}


def _register(figure):
    REPORT_FIGURES[figure.name] = figure
    return figure


_register(ReportFigure(
    "fig4-up", "fig4-up",
    "Figure 4c: mean queueing delay, upstream congestion",
    _build_fig4("up")))
_register(ReportFigure(
    "fig4-down", "fig4-down",
    "Figure 4a: mean queueing delay, downstream congestion",
    _build_fig4("down")))
_register(ReportFigure(
    "fig5", "fig5",
    "Figure 5: link utilization, bidirectional long workload",
    _build_fig5))
_register(ReportFigure(
    "table1-access", "table1-access",
    "Table 1 (access): workload characteristics",
    _build_table1_access))
_register(ReportFigure(
    "table1-backbone", "table1-backbone",
    "Table 1 (backbone): workload characteristics",
    _build_table1_backbone))
_register(ReportFigure(
    "fig7a", "fig7a", "Figure 7a: access VoIP MOS, download activity",
    _build_voip("fig7a", "Figure 7a: access VoIP MOS, download "
                         "activity")))
_register(ReportFigure(
    "fig7b", "fig7b",
    "Figure 7b: access VoIP MOS, upload activity (bufferbloat)",
    _build_voip("fig7b", "Figure 7b: access VoIP MOS, upload activity "
                         "(bufferbloat)")))
_register(ReportFigure(
    "fig8", "fig8", "Figure 8: backbone VoIP MOS",
    _build_voip("fig8", "Figure 8: backbone VoIP MOS")))
_register(ReportFigure(
    "fig9a", "fig9a", "Figure 9a: access IPTV SSIM",
    _build_video("fig9a", "Figure 9a: access IPTV SSIM, download "
                          "activity")))
_register(ReportFigure(
    "fig9b", "fig9b", "Figure 9b: backbone IPTV SSIM",
    _build_video("fig9b", "Figure 9b: backbone IPTV SSIM")))
_register(ReportFigure(
    "fig10a", "fig10a", "Figure 10a: access WebQoE, download activity",
    _build_web("fig10a", "Figure 10a: access WebQoE, download "
                         "activity")))
_register(ReportFigure(
    "fig10b", "fig10b", "Figure 10b: access WebQoE, upload activity",
    _build_web("fig10b", "Figure 10b: access WebQoE, upload activity")))
_register(ReportFigure(
    "fig11", "fig11", "Figure 11: backbone WebQoE",
    _build_web("fig11", "Figure 11: backbone WebQoE")))
_register(ReportFigure(
    "table2", None, "Table 2: buffer sizes and maximum queueing delay",
    _build_table2))


def figure_names():
    """Reportable figure names in report order."""
    return list(REPORT_FIGURES)
