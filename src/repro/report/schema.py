"""Validate ``fidelity.json`` against the checked-in JSON Schema.

CI regenerates a tiny report and validates its ``fidelity.json``
against ``docs/fidelity.schema.json``; the container deliberately has
no third-party ``jsonschema`` package, so this module implements the
small schema subset that file uses (``type`` — including a list of
types — ``enum``, ``required``, ``properties``,
``additionalProperties``, ``items``, ``minimum``).  Anything else in a
schema is rejected loudly rather than silently ignored.

Usage::

    python -m repro.report.schema report/fidelity.json \\
        docs/fidelity.schema.json

Exit status 0 when the document validates, 1 with one line per
violation otherwise.
"""

import json
import sys

#: JSON Schema type name -> accepted Python types.
_TYPES = {
    "object": (dict,),
    "array": (list,),
    "string": (str,),
    "number": (int, float),
    "integer": (int,),
    "boolean": (bool,),
    "null": (type(None),),
}

#: Schema keywords this validator implements.
_SUPPORTED = {"$schema", "$id", "title", "description", "type", "enum",
              "required", "properties", "additionalProperties", "items",
              "minimum"}


def _type_ok(value, type_name):
    if type_name == "number" and isinstance(value, bool):
        return False
    if type_name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, _TYPES[type_name])


def validate(instance, schema, path="$"):
    """Validate ``instance`` against ``schema``; returns error strings."""
    errors = []
    unsupported = set(schema) - _SUPPORTED
    if unsupported:
        raise ValueError("schema at %s uses unsupported keywords: %s"
                         % (path, ", ".join(sorted(unsupported))))

    type_spec = schema.get("type")
    if type_spec is not None:
        type_names = ([type_spec] if isinstance(type_spec, str)
                      else list(type_spec))
        if not any(_type_ok(instance, name) for name in type_names):
            errors.append("%s: expected %s, got %s"
                          % (path, "/".join(type_names),
                             type(instance).__name__))
            return errors  # structural checks below would just cascade

    if "enum" in schema and instance not in schema["enum"]:
        errors.append("%s: %r not in %s" % (path, instance,
                                            schema["enum"]))
    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool):
        if instance < schema["minimum"]:
            errors.append("%s: %r < minimum %r"
                          % (path, instance, schema["minimum"]))

    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                errors.append("%s: missing required property %r"
                              % (path, name))
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for name, value in instance.items():
            child_path = "%s.%s" % (path, name)
            if name in properties:
                errors.extend(validate(value, properties[name],
                                       child_path))
            elif additional is False:
                errors.append("%s: unexpected property %r" % (path, name))
            elif isinstance(additional, dict):
                errors.extend(validate(value, additional, child_path))

    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            errors.extend(validate(item, schema["items"],
                                   "%s[%d]" % (path, index)))
    return errors


def validate_files(document_path, schema_path):
    """Validate one JSON document file; returns the error list."""
    with open(document_path, encoding="utf-8") as handle:
        document = json.load(handle)
    with open(schema_path, encoding="utf-8") as handle:
        schema = json.load(handle)
    return validate(document, schema)


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2:
        print("usage: python -m repro.report.schema DOCUMENT SCHEMA",
              file=sys.stderr)
        return 2
    errors = validate_files(argv[0], argv[1])
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        print("%s validates against %s" % (argv[0], argv[1]))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
