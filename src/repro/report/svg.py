"""Dependency-free SVG primitives for the reproduction report.

A tiny element builder (:class:`Svg`) plus the three chart shapes the
paper's figures need: labelled heatmaps (:func:`heatmap_panels`), line
charts with optional quartile bands (:func:`line_chart`) and aligned
tables (:func:`table`).  No third-party plotting library is involved —
output is hand-assembled SVG 1.1 markup.

Determinism contract
--------------------
Rendering the same inputs must produce byte-identical markup on every
platform (the committed ``docs/sample_report/`` regenerates under
test).  Everything that could wobble is pinned: numbers are formatted
through :func:`fmt_num` (``%g``-style, locale-free), element attributes
are emitted in call order, and nothing reads the clock or any global
state.

Colour semantics come from :data:`repro.viz.heatmap.MARKER_COLORS` —
the same ``+``/``o``/``!`` traffic-light mapping the ASCII renderers
use — so an SVG heatmap and its ASCII sibling always agree on which
cells are good/degraded/bad.
"""

from repro.viz.heatmap import MARKER_COLORS

#: Font stack used for every text element.
FONT = "Helvetica, Arial, sans-serif"

#: Neutral chart chrome.
AXIS_COLOR = "#444444"
GRID_COLOR = "#dddddd"
TEXT_COLOR = "#222222"
MUTED_COLOR = "#777777"
PAPER_COLOR = "#555555"  # digitized paper-value overlays

#: Fill used for heatmap cells with no marker (missing / neutral data).
NEUTRAL_FILL = "#f4f4f4"

#: Categorical series colours for line charts (down/up, SD/HD, ...).
SERIES_COLORS = ("#1565c0", "#c62828", "#2e7d32", "#6a1b9a")


def fmt_num(value):
    """Format a coordinate/number deterministically (no trailing zeros)."""
    if isinstance(value, float):
        text = "%.6g" % value
        return text
    return str(value)


def escape(text):
    """Escape a string for use in SVG text content or attributes."""
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


class Svg:
    """Accumulates SVG elements and serializes a standalone document."""

    def __init__(self, width, height):
        self.width = width
        self.height = height
        self._parts = []

    # -- primitives -----------------------------------------------------
    def _tag(self, name, text=None, **attrs):
        rendered = "".join(
            ' %s="%s"' % (key.replace("_", "-"), escape(value))
            for key, value in attrs.items() if value is not None)
        if text is None:
            self._parts.append("<%s%s/>" % (name, rendered))
        else:
            self._parts.append("<%s%s>%s</%s>"
                               % (name, rendered, escape(text), name))

    def rect(self, x, y, width, height, fill, stroke=None, stroke_width=None,
             rx=None):
        self._tag("rect", x=fmt_num(x), y=fmt_num(y), width=fmt_num(width),
                  height=fmt_num(height), fill=fill, stroke=stroke,
                  stroke_width=(fmt_num(stroke_width)
                                if stroke_width is not None else None),
                  rx=(fmt_num(rx) if rx is not None else None))

    def line(self, x1, y1, x2, y2, stroke, width=1.0, dash=None):
        self._tag("line", x1=fmt_num(x1), y1=fmt_num(y1), x2=fmt_num(x2),
                  y2=fmt_num(y2), stroke=stroke, stroke_width=fmt_num(width),
                  stroke_dasharray=dash)

    def polyline(self, points, stroke, width=1.5):
        encoded = " ".join("%s,%s" % (fmt_num(x), fmt_num(y))
                           for x, y in points)
        self._tag("polyline", points=encoded, fill="none", stroke=stroke,
                  stroke_width=fmt_num(width),
                  stroke_linejoin="round")

    def polygon(self, points, fill, opacity=None):
        encoded = " ".join("%s,%s" % (fmt_num(x), fmt_num(y))
                           for x, y in points)
        self._tag("polygon", points=encoded, fill=fill,
                  fill_opacity=(fmt_num(opacity)
                                if opacity is not None else None),
                  stroke="none")

    def circle(self, cx, cy, r, fill):
        self._tag("circle", cx=fmt_num(cx), cy=fmt_num(cy), r=fmt_num(r),
                  fill=fill)

    def text(self, x, y, content, size=12, anchor="start", fill=TEXT_COLOR,
             weight=None, style=None):
        self._tag("text", text=content, x=fmt_num(x), y=fmt_num(y),
                  font_family=FONT, font_size=fmt_num(size),
                  text_anchor=anchor, fill=fill, font_weight=weight,
                  font_style=style)

    # -- document -------------------------------------------------------
    def to_string(self):
        header = ('<svg xmlns="http://www.w3.org/2000/svg" '
                  'width="%s" height="%s" viewBox="0 0 %s %s">'
                  % (fmt_num(self.width), fmt_num(self.height),
                     fmt_num(self.width), fmt_num(self.height)))
        body = "\n".join("  " + part for part in self._parts)
        return "%s\n%s\n</svg>\n" % (header, body)


# ---------------------------------------------------------------------------
# Heatmaps (the paper's dominant figure shape).
# ---------------------------------------------------------------------------
#: Heatmap cell geometry (pixels).
CELL_W = 86
CELL_H = 40
LABEL_W = 130
TITLE_H = 34
HEADER_H = 24
LEGEND_H = 26
PANEL_GAP = 18
MARGIN = 12


def _marker_colors(marker):
    """(fill, text colour) for one quality marker; neutral when unknown."""
    if marker in MARKER_COLORS:
        __, fill, text_color = MARKER_COLORS[marker]
        return fill, text_color
    return NEUTRAL_FILL, MUTED_COLOR


_LEGEND_NOTE = "small grey value = digitized paper value"


def _legend_extent():
    """Pixel width of the legend row (must fit inside the SVG width)."""
    x = MARGIN
    for marker in "+o!":
        label = MARKER_COLORS[marker][0]
        x += 19 + 8 * len(label) + 18
    return x + 5.2 * len(_LEGEND_NOTE)


def heatmap_panels(title, panels, legend=True):
    """Render one or more labelled heatmap panels as a single SVG.

    ``panels`` is a list of ``(panel title, row labels, col labels,
    cell_fn)``; ``cell_fn(row, col)`` returns ``None`` (no data) or a
    ``(text, marker, subtext)`` triple — ``marker`` selects the
    traffic-light fill (:data:`repro.viz.heatmap.MARKER_COLORS`) and
    ``subtext`` (may be None) is drawn small and grey under the value,
    which the report uses for the digitized paper value.
    """
    width = (MARGIN * 2
             + max(LABEL_W + len(panel[2]) * CELL_W for panel in panels))
    if legend:
        # Narrow heatmaps must not clip the legend caption.
        width = max(width, _legend_extent() + MARGIN)
    height = MARGIN * 2 + TITLE_H
    for panel in panels:
        height += HEADER_H + len(panel[1]) * CELL_H + PANEL_GAP + 20
    if legend:
        height += LEGEND_H
    svg = Svg(width, height)
    svg.rect(0, 0, width, height, fill="#ffffff")
    svg.text(MARGIN, MARGIN + 16, title, size=15, weight="bold")
    y = MARGIN + TITLE_H
    for panel_title, row_labels, col_labels, cell_fn in panels:
        svg.text(MARGIN, y + 12, panel_title, size=12, weight="bold",
                 fill=AXIS_COLOR)
        y += 20
        # Column headers.
        for col_index, col in enumerate(col_labels):
            x = MARGIN + LABEL_W + col_index * CELL_W + CELL_W / 2.0
            svg.text(x, y + HEADER_H - 8, str(col), size=11,
                     anchor="middle", fill=AXIS_COLOR)
        y += HEADER_H
        for row_index, row in enumerate(row_labels):
            row_y = y + row_index * CELL_H
            svg.text(MARGIN + LABEL_W - 8, row_y + CELL_H / 2.0 + 4,
                     str(row), size=11, anchor="end", fill=AXIS_COLOR)
            for col_index, col in enumerate(col_labels):
                x = MARGIN + LABEL_W + col_index * CELL_W
                cell = cell_fn(row, col)
                if cell is None:
                    svg.rect(x, row_y, CELL_W - 2, CELL_H - 2,
                             fill=NEUTRAL_FILL, stroke=GRID_COLOR,
                             stroke_width=1)
                    continue
                text, marker, subtext = cell
                fill, text_color = _marker_colors(marker)
                svg.rect(x, row_y, CELL_W - 2, CELL_H - 2, fill=fill,
                         stroke=GRID_COLOR, stroke_width=1)
                value_y = (row_y + CELL_H / 2.0
                           + (0 if subtext else 4))
                svg.text(x + CELL_W / 2.0 - 1, value_y, text, size=12,
                         anchor="middle", fill=text_color, weight="bold")
                if subtext:
                    svg.text(x + CELL_W / 2.0 - 1, row_y + CELL_H - 8,
                             subtext, size=9, anchor="middle",
                             fill=PAPER_COLOR)
        y += len(row_labels) * CELL_H + PANEL_GAP
    if legend:
        x = MARGIN
        for marker in "+o!":
            label, fill, text_color = MARKER_COLORS[marker]
            svg.rect(x, y + 4, 14, 14, fill=fill, stroke=GRID_COLOR,
                     stroke_width=1)
            svg.text(x + 19, y + 15, label, size=11, fill=AXIS_COLOR)
            x += 19 + 8 * len(label) + 18
        svg.text(x, y + 15, _LEGEND_NOTE, size=10, fill=MUTED_COLOR,
                 style="italic")
    return svg.to_string()


# ---------------------------------------------------------------------------
# Line charts (Figure 5's utilization-vs-buffer shape).
# ---------------------------------------------------------------------------
PLOT_W = 460
PLOT_H = 260
PLOT_LEFT = 64
PLOT_TOP = 46


def line_chart(title, x_labels, series, y_label="", y_range=None,
               y_ticks=None):
    """A categorical-x line chart.

    ``series`` is a list of ``(label, values, band)`` where ``values``
    aligns with ``x_labels`` (None for missing points) and ``band`` is
    an optional aligned list of ``(low, high)`` pairs drawn as a
    translucent quartile band.  ``y_range`` defaults to the data hull.
    """
    width = PLOT_LEFT + PLOT_W + 24
    height = PLOT_TOP + PLOT_H + 64
    svg = Svg(width, height)
    svg.rect(0, 0, width, height, fill="#ffffff")
    svg.text(MARGIN, MARGIN + 16, title, size=15, weight="bold")

    flat = [v for __, values, band in series for v in values
            if v is not None]
    for __, __, band in series:
        if band:
            flat.extend(v for pair in band if pair is not None
                        for v in pair)
    if y_range is None:
        low, high = (min(flat), max(flat)) if flat else (0.0, 1.0)
        if low == high:
            low, high = low - 0.5, high + 0.5
        pad = (high - low) * 0.08
        y_range = (low - pad, high + pad)
    y_low, y_high = y_range

    def x_pos(index):
        step = PLOT_W / float(max(len(x_labels), 1))
        return PLOT_LEFT + step * (index + 0.5)

    def y_pos(value):
        span = float(y_high - y_low) or 1.0
        return PLOT_TOP + PLOT_H * (1.0 - (value - y_low) / span)

    # Frame, grid and ticks.
    svg.rect(PLOT_LEFT, PLOT_TOP, PLOT_W, PLOT_H, fill="none",
             stroke=AXIS_COLOR, stroke_width=1)
    ticks = y_ticks if y_ticks is not None else [
        y_low + (y_high - y_low) * k / 4.0 for k in range(5)]
    for tick in ticks:
        y = y_pos(tick)
        svg.line(PLOT_LEFT, y, PLOT_LEFT + PLOT_W, y, stroke=GRID_COLOR)
        svg.text(PLOT_LEFT - 6, y + 4, fmt_num(round(tick, 4)), size=10,
                 anchor="end", fill=AXIS_COLOR)
    for index, label in enumerate(x_labels):
        svg.text(x_pos(index), PLOT_TOP + PLOT_H + 16, str(label), size=10,
                 anchor="middle", fill=AXIS_COLOR)
    if y_label:
        svg.text(MARGIN + 2, PLOT_TOP - 10, y_label, size=11,
                 fill=AXIS_COLOR)

    # Bands first (under the lines), then lines and markers.
    for order, (label, values, band) in enumerate(series):
        color = SERIES_COLORS[order % len(SERIES_COLORS)]
        if band:
            upper = [(x_pos(i), y_pos(pair[1]))
                     for i, pair in enumerate(band) if pair is not None]
            lower = [(x_pos(i), y_pos(pair[0]))
                     for i, pair in enumerate(band) if pair is not None]
            if upper and lower:
                svg.polygon(upper + lower[::-1], fill=color, opacity=0.15)
    legend_x = PLOT_LEFT + 8
    for order, (label, values, band) in enumerate(series):
        color = SERIES_COLORS[order % len(SERIES_COLORS)]
        points = [(x_pos(i), y_pos(v)) for i, v in enumerate(values)
                  if v is not None]
        if len(points) > 1:
            svg.polyline(points, stroke=color, width=2)
        for x, y in points:
            svg.circle(x, y, 3, fill=color)
        svg.line(legend_x, PLOT_TOP + PLOT_H + 38, legend_x + 18,
                 PLOT_TOP + PLOT_H + 38, stroke=color, width=2)
        svg.text(legend_x + 23, PLOT_TOP + PLOT_H + 42, label, size=11,
                 fill=AXIS_COLOR)
        legend_x += 23 + 7 * len(label) + 22
    return svg.to_string()


# ---------------------------------------------------------------------------
# Tables (Tables 1 and 2).
# ---------------------------------------------------------------------------
ROW_H = 26


def table(title, headers, rows, note=None):
    """An aligned table: ``headers`` strings, ``rows`` of cell strings.

    Column widths derive from content length (monospace-ish estimate);
    a ``note`` line is rendered small and muted under the table.
    """
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = []
    for index, header in enumerate(headers):
        cells = [len(header)] + [len(row[index]) for row in str_rows]
        widths.append(max(cells) * 7.2 + 18)
    width = MARGIN * 2 + sum(widths)
    height = (MARGIN * 2 + TITLE_H + ROW_H * (len(str_rows) + 1)
              + (22 if note else 0))
    svg = Svg(width, height)
    svg.rect(0, 0, width, height, fill="#ffffff")
    svg.text(MARGIN, MARGIN + 16, title, size=15, weight="bold")
    y = MARGIN + TITLE_H
    svg.rect(MARGIN, y, sum(widths), ROW_H, fill="#eceff1")
    x = MARGIN
    for index, header in enumerate(headers):
        svg.text(x + 9, y + 17, header, size=11, weight="bold",
                 fill=AXIS_COLOR)
        x += widths[index]
    y += ROW_H
    for row_index, row in enumerate(str_rows):
        if row_index % 2:
            svg.rect(MARGIN, y, sum(widths), ROW_H, fill="#fafafa")
        x = MARGIN
        for index, cell in enumerate(row):
            svg.text(x + 9, y + 17, cell, size=11)
            x += widths[index]
        y += ROW_H
    svg.line(MARGIN, y, MARGIN + sum(widths), y, stroke=AXIS_COLOR)
    if note:
        svg.text(MARGIN, y + 16, note, size=10, fill=MUTED_COLOR,
                 style="italic")
    return svg.to_string()
