"""Reproduction reports: SVG paper figures + machine-checked fidelity.

This package answers "does this reproduction actually match the paper?"
without anyone eyeballing ASCII heatmaps.  It has three layers:

:mod:`repro.report.svg`
    Dependency-free deterministic SVG primitives (heatmaps, line
    charts, tables) sharing the traffic-light colour semantics of the
    ASCII renderers (:data:`repro.viz.heatmap.MARKER_COLORS`).
:mod:`repro.report.figures`
    One SVG builder per paper artifact (Figures 4–11, Tables 1–2),
    drawing straight from :class:`repro.results.set.ResultSet`s with
    the digitized paper value overlaid per cell.
:mod:`repro.report.fidelity`
    Per-figure scoring against :data:`repro.core.paper_data.DIGITIZED`
    — rank correlation along the buffer axis, trend agreement at the
    paper's highlighted sizes, max absolute MOS/SSIM/PLT deviation —
    graded into a ``PASS``/``WARN``/``FAIL``/``SKIP`` verdict.

:func:`repro.report.build.generate_report` ties them together into a
self-contained ``index.md`` + SVGs + ``fidelity.json`` directory; the
CLI front end is ``python -m repro report`` and the stable programmatic
entry point is :func:`repro.api.generate_report`.  See
``docs/REPORTING.md`` for the workflow and threshold calibration.
"""

from repro.report.build import (
    SAMPLE_FIGURES,
    SAMPLE_OVERRIDES,
    SCHEMA_VERSION,
    generate_report,
)
from repro.report.fidelity import (
    CHECKS,
    FAIL,
    PASS,
    SKIP,
    WARN,
    FigureCheck,
    FigureFidelity,
    MonotoneSpec,
    SeriesSpec,
    Thresholds,
    evaluate,
    spearman,
)
from repro.report.figures import REPORT_FIGURES, ReportFigure, figure_names

__all__ = [
    "CHECKS",
    "FAIL",
    "FigureCheck",
    "FigureFidelity",
    "MonotoneSpec",
    "PASS",
    "REPORT_FIGURES",
    "ReportFigure",
    "SAMPLE_FIGURES",
    "SAMPLE_OVERRIDES",
    "SCHEMA_VERSION",
    "SKIP",
    "SeriesSpec",
    "Thresholds",
    "WARN",
    "evaluate",
    "figure_names",
    "generate_report",
    "spearman",
]
