"""Stable public facade: run sweeps, get typed :class:`ResultSet`s.

This module is the one entry point everything user-facing goes through —
the CLI, the benchmarks, the examples and downstream analysis code::

    from repro import api

    results = api.run_sweep("fig7b")                 # ResultSet
    results.pivot("scenario", "buffer", "talks")     # heatmap dict
    results.to_csv("fig7b.csv")

    for record in api.iter_sweep("fig5"):            # streaming
        print(record.key, record.summary())

    cached = api.load_sweep("fig5")                  # cache-only, no sims

    api.generate_report(out_dir="report")            # SVG figures +
                                                     # fidelity verdicts

Sweeps are named registry entries (``python -m repro list``) or explicit
:class:`repro.core.registry.SweepSpec` objects (e.g. from
:func:`repro.core.registry.adhoc_sweep`).  ``overrides`` narrows or
retunes a sweep's axes without editing the registry — the same knobs the
``run``/``export`` CLI flags expose.  Results come back as typed records
in a :class:`repro.results.set.ResultSet`; the payload wire format and
cache schema underneath are exactly the runner's, so facade runs share
cache entries bit-identically with every other consumer.
"""

from dataclasses import replace

from repro.core import registry
from repro.core.registry import SweepSpec, resolve_scale
from repro.results.set import ResultSet
from repro.runner import GridRunner
from repro.runner.cache import ResultCache
from repro.runner.task import DISCIPLINES


def resolve_spec(name_or_spec):
    """A :class:`SweepSpec` from a registry name (or pass one through)."""
    if isinstance(name_or_spec, SweepSpec):
        return name_or_spec
    return registry.get(name_or_spec)


def apply_overrides(spec, scale=None, workloads=None, buffers=None,
                    duration=None, warmup=None, seed=None,
                    disciplines=None):
    """Resolve ``spec``'s axes at ``scale`` and apply ad-hoc overrides.

    ``workloads`` restricts the scenario axis to the given cell-key
    labels; ``buffers`` replaces the buffer axis (packet counts or
    ``(down, up)`` pairs); ``duration``/``warmup`` are literal simulated
    seconds (a duration override bypasses scale stretching);
    ``disciplines`` replaces the queue-discipline axis.  Unknown
    workload labels or disciplines raise ValueError.  Overridden runs
    use different cache keys than the registered grid, by design.
    """
    scale = resolve_scale() if scale is None else scale
    scenarios = spec.scenario_axis(scale)
    buffer_axis = spec.buffer_axis(scale)
    if workloads:
        wanted = tuple(workloads)
        unknown = set(wanted) - {s.key for s in scenarios}
        if unknown:
            raise ValueError("unknown workload label(s) %s (have: %s)" % (
                ", ".join(sorted(unknown)),
                ", ".join(s.key for s in scenarios)))
        scenarios = tuple(s for s in scenarios if s.key in wanted)
    if buffers:
        buffer_axis = tuple(tuple(b) if isinstance(b, list) else b
                            for b in buffers)
    changes = {"scenarios": scenarios, "scenarios_small": None,
               "buffers": buffer_axis, "buffers_small": None}
    if duration is not None:
        # A literal window at any scale: the floor alone carries the
        # value, so resolved_duration == duration even at REPRO_SCALE > 1.
        changes["duration"] = 0.0
        changes["duration_min"] = duration
    if warmup is not None:
        changes["warmup"] = warmup
    if seed is not None:
        changes["seed"] = seed
    if disciplines:
        disciplines = tuple(disciplines)
        unknown = set(disciplines) - set(DISCIPLINES)
        if unknown:
            raise ValueError("unknown discipline(s) %s (have: %s)" % (
                ", ".join(sorted(unknown)), ", ".join(DISCIPLINES)))
        changes["disciplines"] = disciplines
    return replace(spec, **changes)


def _prepare(name_or_spec, scale, overrides):
    spec = resolve_spec(name_or_spec)
    scale = resolve_scale() if scale is None else scale
    if overrides:
        spec = apply_overrides(spec, scale=scale, **overrides)
    return spec, scale


def iter_sweep(name_or_spec, *, scale=None, overrides=None, runner=None):
    """Stream one sweep's records as cells complete.

    Yields typed :mod:`repro.results.record` values (cache hits first,
    then pool completions), each carrying its sweep cell ``key`` and
    task ``index``.  Feed the stream to
    :meth:`repro.results.set.ResultSet.from_stream` to collect, or to a
    :class:`repro.results.set.StreamAggregator` for constant-memory
    aggregation over huge grids.
    """
    spec, scale = _prepare(name_or_spec, scale, overrides)
    runner = runner or GridRunner()
    tasks = spec.tasks(scale)
    keys = spec.cells(scale)
    for __, record in runner.iter_run(tasks, keys=keys):
        yield record


def run_sweep(name_or_spec, *, scale=None, overrides=None, runner=None):
    """Execute one sweep; returns a :class:`ResultSet` in task order.

    ``runner`` defaults to a fresh env-driven
    :class:`repro.runner.GridRunner` (parallel + cached).  The result
    equals collecting :func:`iter_sweep` — ``run`` is just the batch
    spelling.
    """
    return ResultSet.from_stream(
        iter_sweep(name_or_spec, scale=scale, overrides=overrides,
                   runner=runner))


def load_sweep(name_or_spec, *, scale=None, overrides=None, cache=None,
               strict=False):
    """Build a :class:`ResultSet` from cached cells only — no simulation.

    Cells missing from the cache are skipped (``strict=False``), or
    raise KeyError naming the first missing cell (``strict=True``).
    Useful for re-analyzing or exporting finished grids without paying
    for a runner, e.g. on a machine that only holds the cache.
    """
    spec, scale = _prepare(name_or_spec, scale, overrides)
    cache = cache or ResultCache()
    records = []
    from repro.results.record import record_from_payload

    for index, (task, key) in enumerate(zip(spec.tasks(scale),
                                            spec.cells(scale))):
        payload = cache.get(task)
        if payload is None:
            if strict:
                raise KeyError("cell %s of sweep %r is not cached"
                               % ("/".join(str(p) for p in key), spec.name))
            continue
        records.append(record_from_payload(task, payload, key=key,
                                           index=index))
    return ResultSet(records)


def generate_report(names=None, out_dir="report", **kwargs):
    """Build the SVG reproduction report (stable facade entry point).

    Thin passthrough to :func:`repro.report.build.generate_report` —
    ``index.md`` + one SVG per paper figure + ``fidelity.json`` with
    PASS/WARN/FAIL verdicts against the digitized paper data; accepts
    the same ``cached_only``/``scale``/``runner``/``sample`` keywords.
    Imported lazily so ``repro.api`` stays cheap for runner workers.
    """
    from repro.report.build import generate_report as _generate

    return _generate(names, out_dir, **kwargs)
