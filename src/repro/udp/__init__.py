"""UDP sockets and RTP framing for the media applications."""

from repro.udp.rtp import RtpPacket, RtpReceiver, RtpSender
from repro.udp.socket import UdpSocket

__all__ = ["UdpSocket", "RtpPacket", "RtpSender", "RtpReceiver"]
