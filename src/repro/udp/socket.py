"""Minimal UDP socket bound to a node port."""

from repro.sim.packet import IPV4_HEADER, UDP_HEADER, Packet, udp_wire_size

_UDP_OVERHEAD = IPV4_HEADER + UDP_HEADER


class UdpSocket:
    """A bound UDP endpoint.

    Parameters
    ----------
    sim, node:
        Where the socket lives.
    port:
        Local port; an ephemeral one is allocated when omitted.
    on_datagram:
        ``fn(socket, packet)`` callback for received datagrams.
    """

    __slots__ = ("sim", "node", "port", "on_datagram", "sent_datagrams",
                 "sent_bytes", "received_datagrams", "received_bytes",
                 "_closed")

    def __init__(self, sim, node, port=None, on_datagram=None):
        self.sim = sim
        self.node = node
        self.port = node.allocate_port() if port is None else port
        self.on_datagram = on_datagram
        self.sent_datagrams = 0
        self.sent_bytes = 0
        self.received_datagrams = 0
        self.received_bytes = 0
        self._closed = False
        node.register_udp(self.port, self)

    def sendto(self, payload_len, dst_addr, dst_port, payload=None):
        """Send a datagram of ``payload_len`` application bytes.

        Returns False if a queue along the first hop dropped it.
        """
        if self._closed:
            raise RuntimeError("sendto() on closed socket")
        node = self.node
        packet = Packet.alloc(
            node.addr,               # src
            dst_addr,
            self.port,               # sport
            dst_port,
            "udp",
            _UDP_OVERHEAD + payload_len,  # udp_wire_size()
            0,                       # seq
            0,                       # ack_no
            0,                       # flags
            payload_len,
            0.0,                     # ts
            -1.0,                    # ts_echo
            payload,
            self.sim.now,            # created
        )
        self.sent_datagrams += 1
        self.sent_bytes += payload_len
        return node.send(packet)

    def handle_packet(self, packet):
        """Entry point from the node's UDP demultiplexer."""
        self.received_datagrams += 1
        self.received_bytes += packet.payload_len
        if self.on_datagram is not None:
            self.on_datagram(self, packet)

    def close(self):
        """Unbind the port."""
        if not self._closed:
            self._closed = True
            self.node.unregister_udp(self.port)

    def __repr__(self):
        return "UdpSocket(%s:%d)" % (self.node.name, self.port)
