"""Minimal UDP socket bound to a node port."""

from repro.sim.packet import Packet, udp_wire_size


class UdpSocket:
    """A bound UDP endpoint.

    Parameters
    ----------
    sim, node:
        Where the socket lives.
    port:
        Local port; an ephemeral one is allocated when omitted.
    on_datagram:
        ``fn(socket, packet)`` callback for received datagrams.
    """

    def __init__(self, sim, node, port=None, on_datagram=None):
        self.sim = sim
        self.node = node
        self.port = node.allocate_port() if port is None else port
        self.on_datagram = on_datagram
        self.sent_datagrams = 0
        self.sent_bytes = 0
        self.received_datagrams = 0
        self.received_bytes = 0
        self._closed = False
        node.register_udp(self.port, self)

    def sendto(self, payload_len, dst_addr, dst_port, payload=None):
        """Send a datagram of ``payload_len`` application bytes.

        Returns False if a queue along the first hop dropped it.
        """
        if self._closed:
            raise RuntimeError("sendto() on closed socket")
        packet = Packet(
            src=self.node.addr,
            dst=dst_addr,
            sport=self.port,
            dport=dst_port,
            proto="udp",
            size=udp_wire_size(payload_len),
            payload_len=payload_len,
            payload=payload,
            created=self.sim.now,
        )
        self.sent_datagrams += 1
        self.sent_bytes += payload_len
        return self.node.send(packet)

    def handle_packet(self, packet):
        """Entry point from the node's UDP demultiplexer."""
        self.received_datagrams += 1
        self.received_bytes += packet.payload_len
        if self.on_datagram is not None:
            self.on_datagram(self, packet)

    def close(self):
        """Unbind the port."""
        if not self._closed:
            self._closed = True
            self.node.unregister_udp(self.port)

    def __repr__(self):
        return "UdpSocket(%s:%d)" % (self.node.name, self.port)
