"""RTP framing over UDP (RFC 3550 subset).

The VoIP and IPTV applications send media in RTP packets; the receiver
side reconstructs the media timeline from sequence numbers and RTP
timestamps and computes the RFC 3550 interarrival jitter estimate, which
feeds the QoS reporting.
"""

from repro.sim.packet import RTP_HEADER


class RtpPacket:
    """Application payload describing one RTP packet.

    ``media`` is an opaque object identifying the carried media unit(s) —
    a speech frame index for VoIP, a list of (frame, slice) coordinates
    for video.
    """

    __slots__ = ("seq", "timestamp", "marker", "media", "sent_at")

    def __init__(self, seq, timestamp, marker=False, media=None, sent_at=0.0):
        self.seq = seq
        self.timestamp = timestamp
        self.marker = marker
        self.media = media
        self.sent_at = sent_at

    def __repr__(self):
        return "RtpPacket(seq=%d, ts=%.4f, marker=%s)" % (
            self.seq,
            self.timestamp,
            self.marker,
        )


class RtpSender:
    """Sequencing/timestamping wrapper around a UDP socket."""

    def __init__(self, sim, node, dst_addr, dst_port, local_port=None):
        from repro.udp.socket import UdpSocket

        self.sim = sim
        self.socket = UdpSocket(sim, node, port=local_port)
        self.dst_addr = dst_addr
        self.dst_port = dst_port
        self.next_seq = 0

    def send(self, payload_bytes, timestamp, media=None, marker=False):
        """Send one RTP packet; returns (packet, accepted)."""
        seq = self.next_seq
        self.next_seq = seq + 1
        rtp = RtpPacket(seq, timestamp, marker, media, self.sim.now)
        accepted = self.socket.sendto(
            RTP_HEADER + payload_bytes, self.dst_addr, self.dst_port, rtp
        )
        return rtp, accepted

    def close(self):
        self.socket.close()


class RtpReceiver:
    """Collects RTP arrivals and computes reception statistics.

    Attributes
    ----------
    arrivals:
        List of ``(rtp_packet, arrival_time)`` in arrival order.
    jitter:
        RFC 3550 interarrival jitter estimate (seconds).
    """

    def __init__(self, sim, node, port, on_packet=None):
        from repro.udp.socket import UdpSocket

        self.sim = sim
        self.socket = UdpSocket(sim, node, port=port, on_datagram=self._on_datagram)
        self.on_packet = on_packet
        self.arrivals = []
        self.received = 0
        self.highest_seq = -1
        self.jitter = 0.0
        self._last_transit = None

    def _on_datagram(self, socket, packet):
        rtp = packet.payload
        if rtp is None:
            return
        now = self.sim.now
        self.received += 1
        if rtp.seq > self.highest_seq:
            self.highest_seq = rtp.seq
        transit = now - rtp.sent_at
        if self._last_transit is not None:
            deviation = abs(transit - self._last_transit)
            self.jitter += (deviation - self.jitter) / 16.0  # RFC 3550
        self._last_transit = transit
        self.arrivals.append((rtp, now))
        if self.on_packet is not None:
            self.on_packet(rtp, now)

    @property
    def expected(self):
        """Packets expected so far, from the highest sequence seen."""
        return self.highest_seq + 1

    @property
    def loss_rate(self):
        """Fraction of expected packets never received."""
        if self.expected <= 0:
            return 0.0
        return max(0.0, 1.0 - self.received / self.expected)

    def close(self):
        self.socket.close()
