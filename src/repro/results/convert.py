"""Canonical payload conversions shared by every results consumer.

This module is the single home of the payload→JSON plumbing that used to
be copied across the runner (``execute.jsonify``) and the CLI
(``_jsonable_result`` / ``_key_str``).  Everything here is dependency-
light and picklable so worker processes can import it cheaply.

A *payload* is the JSON wire format of one grid cell: pure JSON types,
bit-identical whether it comes straight from a worker or back out of the
on-disk cache.  Nothing in this module may change that format — the
golden-trace harness hashes it.
"""

from dataclasses import asdict, is_dataclass


def jsonify(value):
    """Convert a cell result payload to pure JSON types.

    Numpy scalars become Python floats/ints and tuples become lists, so a
    payload is bit-identical whether it comes straight from a worker or
    back out of the JSON cache.
    """
    # Exact type checks: np.float64 subclasses float but must still be
    # converted so fresh and cache-loaded payloads are indistinguishable.
    if value is None or type(value) in (bool, int, float, str):
        return value
    if isinstance(value, dict):
        return {key: jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(item) for item in value]
    import numpy as np

    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.ndarray):
        return [jsonify(item) for item in value.tolist()]
    raise TypeError("cell payload is not JSON-serializable: %r" % (value,))


def jsonable_payload(payload):
    """A payload (or revived study value) as plain JSON types."""
    if is_dataclass(payload) and not isinstance(payload, type):
        return jsonify(asdict(payload))
    return jsonify(payload)


def key_str(key):
    """Render a cell key tuple as the CLI's ``part/part/...`` string."""
    return "/".join(str(part) for part in key)


def format_buffer(buffer_packets):
    """Render a buffer size: ``"64"``, or ``"64:8"`` for per-direction."""
    if isinstance(buffer_packets, (tuple, list)):
        return ":".join(str(part) for part in buffer_packets)
    return str(buffer_packets)


def flatten_metrics(payload, prefix=""):
    """Flatten a payload's scalar numeric entries into a ``{name: value}``
    dict, joining nested dict keys with ``.`` (e.g. ``delay.talks``).

    Lists (per-second samples, PLT series) and strings are not metrics;
    they stay available on the record's ``payload``.
    """
    metrics = {}
    for name, value in payload.items():
        full = "%s%s" % (prefix, name)
        if isinstance(value, dict):
            metrics.update(flatten_metrics(value, prefix=full + "."))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            metrics[full] = value
    return metrics
