"""Unified typed results layer.

Every grid cell's JSON payload (the wire format the runner produces and
caches — untouched by this package) is wrapped in a frozen typed record
(:mod:`repro.results.record`), and collections of records form a
queryable, exportable :class:`ResultSet` (:mod:`repro.results.set`).
:mod:`repro.results.convert` holds the canonical payload→JSON plumbing
that used to be duplicated across the runner and the CLI.

The stable entry points for running sweeps and obtaining ``ResultSet``s
live one level up, in :mod:`repro.api`.
"""

from repro.results.convert import (
    flatten_metrics,
    format_buffer,
    jsonable_payload,
    jsonify,
    key_str,
)
from repro.results.record import (
    RECORD_TYPES,
    CellResult,
    QosResult,
    VideoResult,
    VoipResult,
    WebResult,
    record_from_payload,
    revive_qos,
    summarize,
)
from repro.results.set import ResultSet, StreamAggregator, aggregate_stream

__all__ = [
    "CellResult",
    "QosResult",
    "RECORD_TYPES",
    "ResultSet",
    "StreamAggregator",
    "VideoResult",
    "VoipResult",
    "WebResult",
    "aggregate_stream",
    "flatten_metrics",
    "format_buffer",
    "jsonable_payload",
    "jsonify",
    "key_str",
    "record_from_payload",
    "revive_qos",
    "summarize",
]
