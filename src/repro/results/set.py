"""Columnar result collections and streaming aggregation.

A :class:`ResultSet` is an ordered list of typed records (see
:mod:`repro.results.record`) with a lazily-built column index, so
cross-sweep analysis — the paper's whole point — is a handful of
``filter``/``group_by``/``pivot`` calls instead of hand-rolled dict
plumbing at every call site.

For grids too large to hold in memory, :class:`StreamAggregator` folds
the records of :meth:`repro.runner.grid.GridRunner.iter_run` into
per-group running statistics (count/sum/mean/min/max) in constant
memory; :meth:`ResultSet.from_stream` is the collecting counterpart and
reproduces batch :meth:`~repro.runner.grid.GridRunner.run` results
exactly.
"""

import csv
import io
import json

from repro.results.record import CellResult, record_from_payload


def _unwrap(item):
    """Accept both bare records and the (task, record) pairs iter_run yields."""
    if isinstance(item, CellResult):
        return item
    __, record = item
    return record


class ResultSet:
    """An ordered, queryable collection of cell records."""

    __slots__ = ("_records", "_columns", "_by_key")

    def __init__(self, records=()):
        self._records = [_unwrap(record) for record in records]
        self._columns = {}  # lazy column cache: name -> list of values
        self._by_key = None  # lazy cell-key index

    # -- construction ----------------------------------------------------
    @classmethod
    def from_payloads(cls, tasks, payloads, keys=None):
        """Build records from aligned task/payload lists (batch results)."""
        tasks = list(tasks)
        if keys is None:
            keys = [None] * len(tasks)
        return cls(record_from_payload(task, payload, key=key, index=index)
                   for index, (task, payload, key)
                   in enumerate(zip(tasks, payloads, keys)))

    @classmethod
    def from_stream(cls, stream):
        """Collect a record stream (e.g. ``GridRunner.iter_run``).

        Records arrive in completion order; when they carry task indices
        (every runner/facade stream does) the set is re-ordered to task
        order, so the result equals the batch ``run()`` exactly.
        """
        records = [_unwrap(item) for item in stream]
        if records and all(record.index is not None for record in records):
            records.sort(key=lambda record: record.index)
        return cls(records)

    # -- basic protocol --------------------------------------------------
    @property
    def records(self):
        return list(self._records)

    def __len__(self):
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def __eq__(self, other):
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self._records == other._records

    def __getitem__(self, selector):
        """``rs[2]``/slices index by position; anything else is a cell key."""
        if isinstance(selector, int):
            return self._records[selector]
        if isinstance(selector, slice):
            return ResultSet(self._records[selector])
        return self._key_index()[selector]

    def __contains__(self, key):
        return key in self._key_index()

    def keys(self):
        """Cell keys in record order (requires sweep-built records)."""
        return [record.key for record in self._records]

    def _key_index(self):
        if self._by_key is None:
            index = {}
            for record in self._records:
                if record.key is None:
                    raise KeyError(
                        "records carry no cell keys — build the set "
                        "through repro.api.run_sweep (or pass keys= to "
                        "from_payloads) to index by key")
                index[record.key] = record
            self._by_key = index
        return self._by_key

    # -- columnar access -------------------------------------------------
    def column(self, name):
        """All values of one column (axis, param or metric), in order."""
        if name not in self._columns:
            self._columns[name] = [record.value(name)
                                   for record in self._records]
        return list(self._columns[name])

    def value_map(self, column, **filters):
        """``{cell key: column value}`` for records matching ``filters``.

        The grid shape the report layer consumes: one value per sweep
        cell key, optionally restricted by equality filters first (e.g.
        ``value_map("ssim", resolution="SD")``).  Requires sweep-built
        records (every facade result has keys); duplicate keys after
        filtering raise ValueError instead of silently overwriting.
        """
        subset = self.filter(**filters) if filters else self
        grid = {}
        for record in subset:
            if record.key is None:
                raise KeyError("records carry no cell keys — build the "
                               "set through repro.api.run_sweep")
            if record.key in grid:
                raise ValueError("duplicate cell key %r in value_map() — "
                                 "pin the remaining axes with filters"
                                 % (record.key,))
            grid[record.key] = record.value(column)
        return grid

    # -- relational verbs ------------------------------------------------
    def filter(self, predicate=None, **columns):
        """Records matching ``predicate`` and every column constraint.

        A column constraint is an equality test, or membership when the
        given value is a list/tuple/set/frozenset.
        """
        def match(record):
            if predicate is not None and not predicate(record):
                return False
            for name, wanted in columns.items():
                value = record.value(name)
                if isinstance(wanted, (list, tuple, set, frozenset)):
                    if value not in wanted:
                        return False
                elif value != wanted:
                    return False
            return True

        return ResultSet(record for record in self._records
                         if match(record))

    def group_by(self, *names):
        """``{group value(s): ResultSet}`` in first-seen order."""
        groups = {}
        for record in self._records:
            value = tuple(record.value(name) for name in names)
            if len(names) == 1:
                value = value[0]
            groups.setdefault(value, []).append(record)
        return {value: ResultSet(records)
                for value, records in groups.items()}

    def aggregate(self, value, agg="mean", by=()):
        """Aggregate one column, optionally per group.

        ``agg`` is ``count``/``sum``/``mean``/``min``/``max``/``median``
        or a callable over the value list.  Returns a scalar, or a
        ``{group: scalar}`` dict when ``by`` columns are given.
        """
        if isinstance(by, str):
            by = (by,)
        if by:
            return {group: subset.aggregate(value, agg=agg)
                    for group, subset in self.group_by(*by).items()}
        values = self.column(value)
        return _AGGREGATIONS[agg](values) if not callable(agg) \
            else agg(values)

    def pivot(self, rows, cols, value, agg="mean"):
        """``{(row value, col value): aggregated value}`` — heatmap shape.

        ``rows``/``cols``/``value`` are column names; cells with several
        records (e.g. extra axes left unpinned) are reduced with ``agg``.
        """
        buckets = {}
        for record in self._records:
            cell = (record.value(rows), record.value(cols))
            buckets.setdefault(cell, []).append(record.value(value))
        reduce = _AGGREGATIONS[agg] if not callable(agg) else agg
        return {cell: reduce(values) for cell, values in buckets.items()}

    def sort(self, *names, reverse=False):
        """New set ordered by the given columns."""
        return ResultSet(sorted(
            self._records,
            key=lambda record: tuple(record.value(name) for name in names),
            reverse=reverse))

    def merge(self, *others):
        """New set with the records of ``self`` and every other set."""
        records = list(self._records)
        for other in others:
            records.extend(other)
        return ResultSet(records)

    # -- exporters -------------------------------------------------------
    def to_rows(self):
        """Flat row dicts with a consistent, first-seen column order."""
        return [record.to_row() for record in self._records]

    def _fieldnames(self, rows):
        names = []
        for row in rows:
            for name in row:
                if name not in names:
                    names.append(name)
        return names

    def to_csv(self, path=None):
        """CSV text of :meth:`to_rows` (optionally also written to ``path``).

        Floats are written with ``str()`` (which round-trips exactly in
        Python 3); columns absent from a row are left empty.
        """
        rows = self.to_rows()
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self._fieldnames(rows),
                                restval="", lineterminator="\n")
        writer.writeheader()
        writer.writerows(rows)
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text

    def to_json(self, path=None, indent=None):
        """JSON text: one object per record, payload wire format intact."""
        document = [{
            "kind": record.kind,
            "key": (list(record.key) if record.key is not None else None),
            "scenario": record.scenario,
            "buffer_packets": (list(record.buffer_packets)
                               if isinstance(record.buffer_packets, tuple)
                               else record.buffer_packets),
            "seed": record.seed,
            "discipline": record.discipline,
            "params": {name: (list(value) if isinstance(value, tuple)
                              else value)
                       for name, value in record.params_dict.items()},
            "payload": record.payload,
        } for record in self._records]
        text = json.dumps(document, indent=indent)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text

    def to_mapping(self):
        """``{cell key: study-layer value}`` — the legacy dict shape.

        QoS records revive to :class:`repro.core.experiment.QosReport`;
        the QoE kinds map to their payload dicts.  This is what the
        figure renderers and the deprecated study grid functions consume.
        """
        mapping = {}
        for record in self._records:
            if record.key is None:
                raise KeyError("records carry no cell keys — build the "
                               "set through repro.api.run_sweep")
            mapping[record.key] = (record.report if record.kind == "qos"
                                   else record.payload)
        return mapping


def _median(values):
    ordered = sorted(values)
    if not ordered:
        raise ValueError("median of an empty column")
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


_AGGREGATIONS = {
    "count": len,
    "sum": sum,
    "mean": lambda values: sum(values) / len(values),
    "min": min,
    "max": max,
    "median": _median,
}


class StreamAggregator:
    """Constant-memory running aggregation over a record stream.

    Accepts the ``(task, record)`` pairs of
    :meth:`repro.runner.grid.GridRunner.iter_run` (or bare records) and
    keeps only per-group counters — never the records — so arbitrarily
    large grids aggregate in O(groups) memory::

        agg = StreamAggregator("mos", by=("scenario",))
        agg.consume(api.iter_sweep("fig7b"))
        agg.result()  # {"noBG": {"count": ..., "mean": ..., ...}, ...}
    """

    def __init__(self, value, by=()):
        self.value = value
        self.by = (by,) if isinstance(by, str) else tuple(by)
        self._groups = {}

    def add(self, item):
        record = _unwrap(item)
        group = tuple(record.value(name) for name in self.by)
        if len(self.by) == 1:
            group = group[0]
        value = record.value(self.value)
        state = self._groups.get(group)
        if state is None:
            self._groups[group] = [1, value, value, value]
        else:
            state[0] += 1
            state[1] += value
            state[2] = min(state[2], value)
            state[3] = max(state[3], value)
        return self

    def consume(self, stream):
        for item in stream:
            self.add(item)
        return self

    def result(self):
        """``{group: {count, sum, mean, min, max}}`` (or one flat dict
        when no ``by`` columns were given).  An empty group-less stream
        reports ``count 0`` with ``mean/min/max`` of None — 'no data'
        must not read as an all-zero aggregate."""
        out = {group: {"count": count, "sum": total,
                       "mean": total / count, "min": low, "max": high}
               for group, (count, total, low, high) in self._groups.items()}
        if not self.by:
            return out.get((), {"count": 0, "sum": 0.0, "mean": None,
                                "min": None, "max": None})
        return out


def aggregate_stream(stream, value, by=()):
    """One-shot helper: fold a stream and return the aggregate result."""
    return StreamAggregator(value, by=by).consume(stream).result()
