"""Frozen typed records, one per grid-cell kind.

A record wraps one cell's JSON *payload* (the wire format produced by
:func:`repro.runner.execute.execute_task` and stored in the result
cache — this module never changes it) together with the task axes that
produced it, and gives every kind the same uniform surface:

``.scenario``
    The scenario label (``str(task.scenario)``).
``.buffer_packets``
    Packet count, or a ``(down, up)`` tuple for per-direction buffers.
``.seed`` / ``.discipline`` / ``.params``
    The remaining task axes.
``.key`` / ``.index``
    The sweep cell key and task position, when the record was built by a
    sweep-aware caller (:func:`repro.api.run_sweep`); None otherwise.
``.metrics``
    Flat ``{name: number}`` dict of every scalar metric in the payload
    (nested dicts are dot-joined, e.g. ``delay.talks``).
``.qoe``
    The cell's headline MOS-scale score, where defined (None for pure
    QoS cells).

Kind-specific conveniences: :class:`QosResult` revives the study layer's
:class:`repro.core.experiment.QosReport` (and delegates attribute access
to it), while the QoE kinds support dict-style access to their payload,
so existing ``cell["talks"]`` / ``report.up_mean_delay`` call sites keep
working against records.
"""

import json
from dataclasses import dataclass, field

from repro.results.convert import flatten_metrics, format_buffer

#: Record classes by cell kind, filled in below.
RECORD_TYPES = {}


def revive_qos(payload, buffer_packets):
    """Rebuild a :class:`repro.core.experiment.QosReport` from a qos cell
    payload — the one reviver shared by the batch runner and records."""
    from repro.core.experiment import QosReport

    fields = dict(payload)
    # JSON turned a (down, up) tuple into a list; restore from the axis.
    fields["buffer_packets"] = buffer_packets
    return QosReport(**fields)


def _register(cls):
    RECORD_TYPES[cls.kind] = cls
    return cls


@dataclass(frozen=True)
class CellResult:
    """Base record: one executed grid cell and its payload."""

    scenario: str
    buffer_packets: object  # packets: int, or a (down, up) tuple
    seed: int
    discipline: str
    params: tuple  # kind-specific parameters as a sorted item tuple
    payload: object  # the JSON wire-format payload (never mutated)
    key: tuple = None  # sweep cell key, e.g. ("long-few", 64, "codel")
    index: int = None  # position within the sweep's task list

    kind = None  # overridden per subclass

    # -- construction ---------------------------------------------------
    @classmethod
    def from_payload(cls, task, payload, key=None, index=None):
        """Build a record from a :class:`repro.runner.task.CellTask` and
        its (fresh or cache-loaded) JSON payload."""
        return cls(scenario=str(task.scenario),
                   buffer_packets=task.buffer_packets, seed=task.seed,
                   discipline=task.discipline, params=task.params,
                   payload=payload, key=key, index=index)

    # -- uniform accessors ----------------------------------------------
    @property
    def params_dict(self):
        return dict(self.params)

    @property
    def metrics(self):
        """Every scalar numeric metric of the payload, flattened.

        Memoized: the record is frozen and payloads are never mutated,
        and the ResultSet verbs (filter/pivot/sort) hit this per record
        several times.
        """
        cached = self.__dict__.get("_metrics")
        if cached is None:
            cached = flatten_metrics(self.payload)
            object.__setattr__(self, "_metrics", cached)
        return cached

    @property
    def qoe(self):
        """Headline MOS-scale score of the cell; None where undefined."""
        return None

    def value(self, name):
        """Uniform column lookup: record axes, then params, then metrics.

        ``"buffer"`` is accepted as an alias for ``buffer_packets``.
        Raises KeyError for unknown columns.
        """
        if name == "buffer":
            name = "buffer_packets"
        if name in ("kind", "scenario", "buffer_packets", "seed",
                    "discipline", "key", "index", "qoe"):
            return getattr(self, name)
        params = self.params_dict
        if name in params:
            return params[name]
        metrics = self.metrics
        if name in metrics:
            return metrics[name]
        raise KeyError("record has no column %r (have axes, params %s and "
                       "metrics %s)" % (name, sorted(params),
                                        sorted(metrics)))

    def to_row(self):
        """Flat ``{column: scalar}`` dict for tabular export.

        Axis columns first (kind/scenario/buffer/seed/discipline, plus
        the cell key when set), then params, then every metric.  Floats
        pass through unformatted — ``str()`` round-trips them exactly.
        """
        row = {
            "kind": self.kind,
            "scenario": self.scenario,
            "buffer": format_buffer(self.buffer_packets),
            "seed": self.seed,
            "discipline": self.discipline,
        }
        if self.key is not None:
            row["key"] = "/".join(str(part) for part in self.key)
        for name, value in sorted(self.params_dict.items()):
            if isinstance(value, (list, tuple)):
                value = json.dumps(list(value))
            row[name] = value
        row.update(self.metrics)
        return row

    def summary(self):
        """One-line human summary of the cell (the CLI's per-cell line)."""
        return str(self.payload)

    # -- dict-style payload access ---------------------------------------
    def __getitem__(self, name):
        return self.payload[name]

    def get(self, name, default=None):
        try:
            return self.payload.get(name, default)
        except AttributeError:
            return default

    def keys(self):
        return self.payload.keys()


@_register
@dataclass(frozen=True)
class QosResult(CellResult):
    """Background-traffic QoS cell (Table 1 / Figures 4-5)."""

    kind = "qos"

    @property
    def report(self):
        """The revived :class:`repro.core.experiment.QosReport`."""
        cached = self.__dict__.get("_report")
        if cached is None:
            cached = revive_qos(self.payload, self.buffer_packets)
            object.__setattr__(self, "_report", cached)
        return cached

    def __getattr__(self, name):
        # Delegate unknown attributes (utilizations, boxplot helpers,
        # ...) to the revived report so records are drop-in replacements
        # for QosReport at read sites.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.report, name)

    def summary(self):
        payload = self.payload
        return ("down util %5.1f%%  up util %5.1f%%  loss %5.2f%%/%5.2f%%  "
                "mean delay %4.0f/%4.0f ms" % (
                    payload["down_utilization"] * 100,
                    payload["up_utilization"] * 100,
                    payload["down_loss"] * 100, payload["up_loss"] * 100,
                    payload["down_mean_delay"] * 1000,
                    payload["up_mean_delay"] * 1000))


@_register
@dataclass(frozen=True)
class VoipResult(CellResult):
    """VoIP cell (Figures 7-8): per-direction median MOS and delay."""

    kind = "voip"

    @property
    def directions(self):
        """Call directions present in the cell, sorted."""
        return tuple(sorted(name for name, value in self.payload.items()
                            if isinstance(value, (int, float))))

    def mos(self, direction):
        """Median combined MOS of one direction."""
        return self.payload[direction]

    def delay(self, direction):
        """Median mouth-to-ear delay (seconds) of one direction."""
        return self.payload["delay"][direction]

    @property
    def qoe(self):
        """The call's governing MOS: the worse of its directions."""
        scores = [value for name, value in self.payload.items()
                  if isinstance(value, (int, float))]
        return min(scores) if scores else None

    def summary(self):
        payload = self.payload
        parts = ["%s MOS %.1f" % (direction, mos)
                 for direction, mos in sorted(payload.items())
                 if isinstance(mos, float)]
        parts += ["m2e %s %.0f ms" % (direction, delay * 1000)
                  for direction, delay in sorted(
                      payload.get("delay", {}).items())]
        return "  ".join(parts)


@_register
@dataclass(frozen=True)
class VideoResult(CellResult):
    """IPTV video cell (Figure 9): SSIM/PSNR/MOS and loss fractions."""

    kind = "video"

    @property
    def ssim(self):
        return self.payload["ssim"]

    @property
    def psnr(self):
        return self.payload["psnr"]

    @property
    def mos(self):
        return self.payload["mos"]

    @property
    def packet_loss(self):
        return self.payload["packet_loss"]

    @property
    def qoe(self):
        return self.payload["mos"]

    def summary(self):
        payload = self.payload
        return "SSIM %.2f  MOS %.1f  pkt loss %.1f%%" % (
            payload["ssim"], payload["mos"], payload["packet_loss"] * 100)


@_register
@dataclass(frozen=True)
class WebResult(CellResult):
    """Web page-load cell (Figures 10-11): PLT series and G.1030 MOS."""

    kind = "web"

    @property
    def median_plt(self):
        return self.payload["median_plt"]

    @property
    def p80_plt(self):
        return self.payload["p80_plt"]

    @property
    def plts(self):
        return self.payload["plts"]

    @property
    def mos(self):
        return self.payload["mos"]

    @property
    def qoe(self):
        return self.payload["mos"]

    def summary(self):
        payload = self.payload
        return "median PLT %.2f s  MOS %.1f" % (
            payload["median_plt"], payload["mos"])


def record_from_payload(task, payload, key=None, index=None):
    """Build the right typed record for ``task.kind`` from its payload."""
    try:
        cls = RECORD_TYPES[task.kind]
    except KeyError:
        raise ValueError("no record type for cell kind %r (have %s)"
                         % (task.kind, sorted(RECORD_TYPES))) from None
    return cls.from_payload(task, payload, key=key, index=index)


def summarize(kind, payload):
    """One-line human summary of a raw payload (record-free helper)."""
    cls = RECORD_TYPES.get(kind)
    if cls is None:
        return str(payload)
    record = cls(scenario="", buffer_packets=0, seed=0, discipline="",
                 params=(), payload=payload)
    return record.summary()
