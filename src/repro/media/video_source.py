"""Procedural video sources for the three content classes (§8.1).

The paper uses three 16-second clips chosen for different motion/detail
profiles: A) an interview scene (low motion), B) a soccer match (high
motion, fine texture), C) a movie (medium motion with a scene cut).
These generators synthesize luminance-only frames with exactly those
motion characteristics; each clip is deterministic given its class.

Resolutions are scaled down from broadcast SD/HD to keep full-reference
metrics fast while preserving the SD-vs-HD relationships (HD has ~2.3x
the pixels and double the bitrate, as in the paper).
"""

import numpy as np

#: (width, height) of the scaled-down profiles.
RESOLUTIONS = {"SD": (320, 180), "HD": (480, 270)}

#: Target bitrates (bit/s), exactly the paper's encodings.
BITRATES = {"SD": 4_000_000, "HD": 8_000_000}

FPS = 12.5
CLIP_SECONDS = 16.0


def _field_texture(rng, width, height):
    """Smooth random texture (low-pass filtered noise)."""
    noise = rng.standard_normal((height, width))
    spectrum = np.fft.rfft2(noise)
    fy = np.fft.fftfreq(height)[:, None]
    fx = np.fft.rfftfreq(width)[None, :]
    lowpass = 1.0 / (1.0 + ((fx ** 2 + fy ** 2) * 400.0))
    textured = np.fft.irfft2(spectrum * lowpass, s=(height, width))
    textured -= textured.min()
    peak = textured.max()
    if peak > 0:
        textured /= peak
    return textured


def _blob(xx, yy, cx, cy, radius, amplitude):
    return amplitude * np.exp(-(((xx - cx) ** 2 + (yy - cy) ** 2)
                                / (2.0 * radius ** 2)))


def generate_clip(clip, resolution="SD", n_frames=None, fps=FPS):
    """Generate one clip as a float32 array [frames, height, width] in [0,1].

    ``clip`` is ``"A"`` (interview), ``"B"`` (soccer) or ``"C"`` (movie).
    """
    width, height = RESOLUTIONS[resolution]
    if n_frames is None:
        n_frames = int(CLIP_SECONDS * fps)
    rng = np.random.default_rng({"A": 11, "B": 22, "C": 33}[clip])
    background = _field_texture(rng, width, height)
    yy, xx = np.mgrid[0:height, 0:width].astype(np.float64)
    frames = np.empty((n_frames, height, width), dtype=np.float32)

    if clip == "A":
        # Interview: static backdrop, one slowly swaying head-and-shoulders
        # blob, tiny sensor noise.
        for f in range(n_frames):
            t = f / fps
            frame = 0.35 + 0.25 * background
            cx = width * (0.5 + 0.02 * np.sin(2 * np.pi * 0.2 * t))
            cy = height * (0.45 + 0.01 * np.sin(2 * np.pi * 0.13 * t))
            frame += _blob(xx, yy, cx, cy, height * 0.18, 0.45)
            frame += _blob(xx, yy, cx, cy + height * 0.35, height * 0.3, 0.25)
            frame += 0.01 * rng.standard_normal((height, width))
            frames[f] = np.clip(frame, 0.0, 1.0)
    elif clip == "B":
        # Soccer: fast global pan over a textured pitch plus fast players.
        players = [(rng.uniform(0, 1), rng.uniform(0, 1),
                    rng.uniform(-0.3, 0.3), rng.uniform(-0.2, 0.2))
                   for __ in range(8)]
        for f in range(n_frames):
            t = f / fps
            shift = int((t * 0.35 * width)) % width
            frame = 0.3 + 0.4 * np.roll(background, shift, axis=1)
            for px, py, vx, vy in players:
                cx = ((px + vx * t) % 1.0) * width
                cy = ((py + vy * t) % 1.0) * height
                frame += _blob(xx, yy, cx, cy, height * 0.04, 0.5)
            ball_x = ((0.1 + 0.45 * t) % 1.0) * width
            ball_y = height * (0.5 + 0.3 * np.sin(2 * np.pi * 0.7 * t))
            frame += _blob(xx, yy, ball_x, ball_y, height * 0.015, 0.7)
            frames[f] = np.clip(frame, 0.0, 1.0)
    else:
        # Movie: medium pan, two drifting subjects, hard scene cut halfway.
        alt_background = _field_texture(rng, width, height)
        for f in range(n_frames):
            t = f / fps
            if f < n_frames // 2:
                shift = int(t * 0.08 * width)
                frame = 0.3 + 0.35 * np.roll(background, shift, axis=1)
                frame += _blob(xx, yy, width * (0.3 + 0.05 * t),
                               height * 0.5, height * 0.12, 0.4)
            else:
                shift = int(t * 0.05 * width)
                frame = 0.25 + 0.4 * np.roll(alt_background, -shift, axis=0)
                frame += _blob(xx, yy, width * 0.6,
                               height * (0.4 + 0.04 * np.sin(2 * np.pi * t)),
                               height * 0.15, 0.45)
            frame += 0.005 * rng.standard_normal((height, width))
            frames[f] = np.clip(frame, 0.0, 1.0)
    return frames
