"""H.264-like slice-structured codec model (§8.1).

The paper encodes each clip with H.264 using 32 slices per frame "to
keep errors localized".  What the QoE outcome depends on is captured
here without entropy coding:

* GOP structure: one I frame then P frames (predicted from the previous
  reconstructed frame);
* each frame split into 32 horizontal slices, the unit of loss;
* a rate model assigning bytes per frame/slice to hit the target
  bitrate, with I frames ~4x the size of P frames;
* a decoder with standard error concealment: a missing slice is frozen
  from the previous decoded frame; a received P slice on top of a
  corrupted reference inherits (attenuated) propagation error until the
  next I frame refreshes it.
"""

import numpy as np

from repro.media.video_source import BITRATES, FPS

SLICES_PER_FRAME = 32
GOP_SIZE = 12  # ~1 s at 12.5 fps
I_TO_P_RATIO = 4.0

#: Fraction of reference error a received P slice inherits (leaky
#: motion-compensated prediction; ~1 means errors persist until the next
#: I frame, as they do in practice without intra refresh).
PROPAGATION = 1.0

#: Vertical reach (rows) of motion compensation: received P slices pull
#: reference pixels from up to this far into neighbouring slices, which
#: spreads corruption spatially frame over frame.  This is why percent-
#: level slice loss saturates real H.264 SSIM near 0.4-0.5 (Figure 9).
MOTION_REACH = 10

#: Horizontal displacement (pixels) of the concealment patch.  Real
#: decoders conceal with motion-compensated copies whose vectors are
#: guesses; the misalignment is what destroys local structure and drives
#: SSIM down (the paper sees ~0.45-0.55 at percent-level loss).
CONCEAL_SHIFT = 14

#: Brightness error of the concealment patch (lost DC coefficients).
CONCEAL_DC_SHIFT = 0.06


def frame_types(n_frames, gop=GOP_SIZE):
    """'I'/'P' type per frame."""
    return ["I" if index % gop == 0 else "P" for index in range(n_frames)]


def frame_bytes(resolution, n_frames, fps=FPS, gop=GOP_SIZE):
    """Byte budget per frame meeting the profile's target bitrate.

    Within a GOP the I frame gets ``I_TO_P_RATIO`` times a P frame's
    bytes; totals match ``bitrate * duration``.
    """
    bitrate = BITRATES[resolution]
    bytes_per_gop = bitrate / 8.0 * gop / fps
    p_bytes = bytes_per_gop / (I_TO_P_RATIO + (gop - 1))
    i_bytes = I_TO_P_RATIO * p_bytes
    return [int(i_bytes) if t == "I" else int(p_bytes)
            for t in frame_types(n_frames, gop)]


def slice_rows(height, slice_index, n_slices=SLICES_PER_FRAME):
    """Row range (start, stop) of one horizontal slice."""
    start = (height * slice_index) // n_slices
    stop = (height * (slice_index + 1)) // n_slices
    return start, max(stop, start + 1)


def decode(reference, received, gop=GOP_SIZE, propagation=PROPAGATION,
           conceal_shift=CONCEAL_SHIFT, conceal_dc=CONCEAL_DC_SHIFT,
           motion_reach=MOTION_REACH):
    """Decode a received stream with error concealment.

    Parameters
    ----------
    reference:
        [frames, height, width] clean decoded frames (the sender-side
        reconstruction — the SSIM reference).
    received:
        Boolean [frames, slices] matrix: slice arrived completely and on
        time.

    A lost slice is concealed with a *displaced* copy of the co-located
    region of the previous decoded frame (wrong motion vectors) plus a
    DC error; a received P slice whose reference region is corrupted
    inherits the error attenuated by ``propagation`` until the next I
    frame.  Returns the decoded frames.
    """
    n_frames, height, __ = reference.shape
    types = frame_types(n_frames, gop)
    decoded = np.empty_like(reference)
    previous = np.full_like(reference[0], 0.5)  # decoder start-up grey
    for f in range(n_frames):
        current = np.empty_like(previous)
        if types[f] == "P" and f > 0:
            # Reference error of the previous reconstruction, dilated
            # vertically by the motion search range: P slices inherit
            # corruption from neighbouring slices at full amplitude
            # (motion vectors drag bad pixels in, they don't average
            # them away).  This is what makes percent-level slice loss
            # saturate SSIM near 0.4-0.5 within a GOP, as in Figure 9.
            error = previous - reference[f - 1]
            up = np.roll(error, motion_reach, axis=0)
            down = np.roll(error, -motion_reach, axis=0)
            spread_error = np.where(np.abs(up) > np.abs(error), up, error)
            spread_error = np.where(np.abs(down) > np.abs(spread_error),
                                    down, spread_error)
        else:
            spread_error = None
        for s in range(SLICES_PER_FRAME):
            start, stop = slice_rows(height, s)
            if received[f][s]:
                if spread_error is None:
                    current[start:stop] = reference[f][start:stop]
                else:
                    current[start:stop] = (
                        reference[f][start:stop]
                        + propagation * spread_error[start:stop])
            else:
                patch = np.roll(previous[start:stop], conceal_shift, axis=1)
                current[start:stop] = patch + conceal_dc
        np.clip(current, 0.0, 1.0, out=current)
        decoded[f] = current
        previous = current
    return decoded
