"""Receiver-side playout (jitter) buffer with loss concealment.

VoIP receivers delay playout by a fixed offset from the first arrival so
that network jitter does not interrupt the stream; packets arriving
after their scheduled playout instant are as good as lost.  Lost or late
frames are concealed G.711-Appendix-I style: repeat the last good frame
with decaying amplitude, then mute.

The buffer also reports the *mouth-to-ear* delay (network + buffering +
codec), which feeds the E-model delay impairment (z2).
"""

from dataclasses import dataclass, field

import numpy as np

#: One-way codec + packetization overhead added to the mouth-to-ear
#: delay (G.711 frame assembly plus device processing).
CODEC_DELAY = 0.025


@dataclass
class PlayoutResult:
    """Outcome of playing one call's worth of frames."""

    statuses: list  # per frame: "ok" | "late" | "lost"
    mouth_to_ear_delay: float  # mean, seconds
    playout_delay: float
    frames: int = 0
    ok: int = 0
    late: int = 0
    lost: int = 0
    arrival_delays: list = field(default_factory=list)

    @property
    def effective_loss_rate(self):
        """Fraction of frames not played (lost or late)."""
        if self.frames == 0:
            return 0.0
        return (self.late + self.lost) / self.frames


class PlayoutBuffer:
    """Fixed-delay playout schedule anchored at the first arrival.

    Parameters
    ----------
    frame_duration:
        Media frame spacing (20 ms for G.711 at 50 pps).
    playout_delay:
        Buffering applied to the first received frame; later frames play
        at ``first_arrival + playout_delay + k * frame_duration``.
    """

    def __init__(self, frame_duration=0.020, playout_delay=0.060):
        self.frame_duration = frame_duration
        self.playout_delay = playout_delay

    def schedule(self, arrivals, n_frames, send_times):
        """Classify every frame of a stream.

        ``arrivals`` maps frame index -> arrival time (first arrival wins
        for duplicates); ``send_times`` maps frame index -> send time.
        """
        statuses = []
        ok = late = lost = 0
        delays = []
        if arrivals:
            first_index = min(arrivals)
            anchor = (arrivals[first_index]
                      - first_index * self.frame_duration
                      + self.playout_delay)
        else:
            anchor = None
        mouth_to_ear = []
        for index in range(n_frames):
            arrival = arrivals.get(index)
            if arrival is None:
                statuses.append("lost")
                lost += 1
                continue
            playout_at = anchor + index * self.frame_duration
            delays.append(arrival - send_times[index])
            if arrival <= playout_at + 1e-12:
                statuses.append("ok")
                ok += 1
                mouth_to_ear.append(playout_at - send_times[index])
            else:
                statuses.append("late")
                late += 1
        mean_m2e = (float(np.mean(mouth_to_ear)) + CODEC_DELAY
                    if mouth_to_ear else self.playout_delay + CODEC_DELAY)
        return PlayoutResult(
            statuses=statuses,
            mouth_to_ear_delay=mean_m2e,
            playout_delay=self.playout_delay,
            frames=n_frames,
            ok=ok,
            late=late,
            lost=lost,
            arrival_delays=delays,
        )


class AdaptivePlayoutBuffer(PlayoutBuffer):
    """Playout buffer that sizes its delay from the observed jitter.

    Real VoIP clients (including the paper's PjSIP) adapt the playout
    delay to network conditions.  This variant inspects the relative
    arrival jitter of the stream and sets the delay to the given
    percentile of it (plus headroom), clamped to sane bounds — trading
    a little extra mouth-to-ear delay for far fewer late losses on jittery
    paths.
    """

    def __init__(self, frame_duration=0.020, percentile=95.0,
                 headroom=0.010, min_delay=0.040, max_delay=0.400):
        super().__init__(frame_duration, playout_delay=min_delay)
        self.percentile = percentile
        self.headroom = headroom
        self.min_delay = min_delay
        self.max_delay = max_delay

    def schedule(self, arrivals, n_frames, send_times):
        if arrivals:
            relative = [
                arrivals[index] - send_times[index]
                for index in arrivals
                if index in send_times
            ]
            if relative:
                base = min(relative)
                jitter = float(np.percentile(
                    [delay - base for delay in relative], self.percentile))
                self.playout_delay = min(
                    self.max_delay,
                    max(self.min_delay, jitter + self.headroom))
        return super().schedule(arrivals, n_frames, send_times)


def reconstruct_signal(reference_frames, statuses, decay=0.5, mute_after=3):
    """Rebuild the played signal applying concealment.

    ``reference_frames`` is the list of decoded (codec round-tripped)
    frames the sender emitted; frames whose status is not ``"ok"`` are
    concealed by repeating the last good frame attenuated by ``decay``
    per consecutive loss, muted after ``mute_after`` repeats.
    """
    pieces = []
    last_good = None
    consecutive = 0
    for frame, status in zip(reference_frames, statuses):
        if status == "ok":
            pieces.append(frame)
            last_good = frame
            consecutive = 0
        else:
            consecutive += 1
            if last_good is None or consecutive > mute_after:
                pieces.append(np.zeros_like(frame))
            else:
                pieces.append(last_good * (decay ** consecutive))
    if not pieces:
        return np.zeros(0)
    return np.concatenate(pieces)
