"""MPEG-2 Transport Stream packetization (§8.1).

IPTV streams are carried as MPEG-TS over RTP/UDP: the elementary stream
is chopped into 188-byte TS cells and seven cells ride in each RTP
packet (1316-byte payloads).  This module computes, for a sequence of
frame/slice byte sizes, which RTP packet carries which slice bytes — the
mapping the receiver needs to decide whether a slice survived.
"""

from dataclasses import dataclass

TS_CELL_BYTES = 188
CELLS_PER_PACKET = 7
PACKET_PAYLOAD_BYTES = TS_CELL_BYTES * CELLS_PER_PACKET  # 1316


@dataclass(frozen=True)
class PacketPlan:
    """One RTP packet's content: payload size and the slices it carries."""

    index: int
    payload_bytes: int
    slices: tuple  # ((frame, slice), ...) touched by this packet


def packetize(slice_bytes):
    """Map slices to RTP packets.

    ``slice_bytes`` is a list of ``((frame, slice), nbytes)`` in stream
    order.  Returns a list of :class:`PacketPlan` — consecutive slices
    share packets, exactly like TS cells packed back to back.
    """
    plans = []
    current_slices = []
    current_fill = 0
    index = 0

    def flush():
        nonlocal current_slices, current_fill, index
        if current_fill == 0:
            return
        plans.append(PacketPlan(index=index,
                                payload_bytes=current_fill,
                                slices=tuple(current_slices)))
        index += 1
        current_slices = []
        current_fill = 0

    for key, nbytes in slice_bytes:
        remaining = nbytes
        while remaining > 0:
            if current_fill == PACKET_PAYLOAD_BYTES:
                flush()
            space = PACKET_PAYLOAD_BYTES - current_fill
            chunk = min(space, remaining)
            if not current_slices or current_slices[-1] != key:
                current_slices.append(key)
            current_fill += chunk
            remaining -= chunk
    flush()
    return plans


def slice_packet_map(plans):
    """Invert the plan: ``{(frame, slice): [packet indices]}``."""
    mapping = {}
    for plan in plans:
        for key in plan.slices:
            mapping.setdefault(key, []).append(plan.index)
    return mapping
