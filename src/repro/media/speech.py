"""Synthetic speech-like test samples.

The paper streams the 20 eight-second Dutch samples of ITU-T P.862
Annex A.  That corpus is licensed, so we synthesize speech-*like*
signals with the statistics the quality models care about: alternating
voiced segments (harmonic stacks under a formant envelope with a moving
pitch), unvoiced fricative-like noise bursts and silent pauses, at the
G.711 sampling rate of 8 kHz.

Each sample is seeded, so "sample k of speaker s" is a stable reference
signal across runs, mirroring the fixed ITU corpus.
"""

import numpy as np

SAMPLE_RATE = 8000
SAMPLE_SECONDS = 8.0

#: Speech band of interest (narrow-band telephony).
_MIN_F0, _MAX_F0 = 90.0, 240.0


def _voiced_segment(rng, n, f0_base, formants):
    """A vowel-ish harmonic stack with vibrato and a formant envelope."""
    t = np.arange(n) / SAMPLE_RATE
    # Slow pitch drift plus a touch of vibrato.
    f0 = f0_base * (1.0 + 0.04 * np.sin(2 * np.pi * 3.0 * t)
                    + 0.10 * (t / max(t[-1], 1e-9)) * rng.uniform(-1, 1))
    phase = 2 * np.pi * np.cumsum(f0) / SAMPLE_RATE
    signal = np.zeros(n)
    max_harmonic = int(3400.0 / f0_base)
    for harmonic in range(1, max(2, max_harmonic)):
        freq = harmonic * f0_base
        if freq > 3600.0:
            break
        # Formant envelope: sum of Gaussian resonances.
        gain = sum(
            amp * np.exp(-0.5 * ((freq - center) / width) ** 2)
            for center, width, amp in formants
        )
        gain += 0.02  # spectral floor
        signal += gain * np.sin(harmonic * phase + rng.uniform(0, 2 * np.pi))
    return signal


def _unvoiced_segment(rng, n):
    """Fricative-like shaped noise (high-pass tilted)."""
    noise = rng.standard_normal(n)
    spectrum = np.fft.rfft(noise)
    freqs = np.fft.rfftfreq(n, 1.0 / SAMPLE_RATE)
    tilt = np.clip((freqs - 1000.0) / 2500.0, 0.05, 1.0)
    return np.fft.irfft(spectrum * tilt, n)


def _envelope(rng, n):
    """Attack / sustain / decay amplitude contour."""
    attack = max(1, int(n * rng.uniform(0.05, 0.2)))
    decay = max(1, int(n * rng.uniform(0.1, 0.3)))
    env = np.ones(n)
    env[:attack] = np.linspace(0.0, 1.0, attack)
    env[n - decay:] = np.linspace(1.0, 0.0, decay)
    return env


def synthesize_speech(seed, duration=SAMPLE_SECONDS, rate=SAMPLE_RATE,
                      rms_level=2600.0):
    """Synthesize one speech-like sample as float64 PCM at int16 scale.

    ``seed`` selects the "speaker and sentence"; ``rms_level`` targets
    the active-speech level (~-22 dBov, typical for the ITU corpus).
    """
    if rate != SAMPLE_RATE:
        raise ValueError("speech synthesis is fixed at 8 kHz")
    rng = np.random.default_rng(seed)
    total = int(duration * rate)
    f0_base = rng.uniform(_MIN_F0, _MAX_F0)
    formants = [
        (rng.uniform(300, 900), rng.uniform(80, 200), rng.uniform(0.8, 1.2)),
        (rng.uniform(900, 2200), rng.uniform(120, 300), rng.uniform(0.4, 0.8)),
        (rng.uniform(2200, 3300), rng.uniform(150, 350), rng.uniform(0.15, 0.4)),
    ]
    out = np.zeros(total)
    cursor = 0
    while cursor < total:
        kind = rng.choice(["voiced", "unvoiced", "pause"],
                          p=[0.55, 0.25, 0.20])
        seg_len = int(rng.uniform(0.08, 0.40) * rate)
        seg_len = min(seg_len, total - cursor)
        if seg_len <= 8:
            break
        if kind == "voiced":
            segment = _voiced_segment(rng, seg_len, f0_base, formants)
        elif kind == "unvoiced":
            segment = _unvoiced_segment(rng, seg_len) * 0.4
        else:
            segment = np.zeros(seg_len)
        if kind != "pause":
            segment *= _envelope(rng, seg_len)
        out[cursor:cursor + seg_len] = segment
        cursor += seg_len

    active = out[np.abs(out) > 1e-9]
    if active.size:
        rms = np.sqrt(np.mean(active ** 2))
        if rms > 0:
            out *= rms_level / rms
    return np.clip(out, -32768, 32767)


def speech_corpus(count=20, duration=SAMPLE_SECONDS):
    """The study's sample set: ``count`` seeded samples (ITU uses 20)."""
    return [synthesize_speech(seed=1000 + index, duration=duration)
            for index in range(count)]
