"""G.711 A-law (PCMA) codec — the narrow-band codec of the paper's calls.

Vectorized clean-room implementation of the ITU-T G.711 A-law companding
tables: 13-bit linear PCM mapped to 8-bit log-companded bytes across 8
segments.  Round-tripping speech through it yields the familiar ~38 dB
SNR, so the codec contributes the same (negligible relative to packet
loss) distortion as in the real system.
"""

import numpy as np

_SEG_END = np.array(
    [0xFF, 0x1FF, 0x3FF, 0x7FF, 0xFFF, 0x1FFF, 0x3FFF, 0x7FFF], dtype=np.int32
)


def alaw_encode(pcm):
    """Encode int16 PCM samples to A-law bytes (uint8).

    Accepts any integer/float array; values are clipped to int16 range.
    """
    pcm = np.asarray(pcm)
    pcm = np.clip(np.round(pcm), -32768, 32767).astype(np.int32)
    sign_mask = np.where(pcm >= 0, 0xD5, 0x55).astype(np.uint8)
    magnitude = np.abs(pcm)
    np.clip(magnitude, 0, 0x7FFF, out=magnitude)

    # Segment number: index of the first segment end >= magnitude.
    segment = np.searchsorted(_SEG_END, magnitude)
    low = magnitude >> 4  # segment 0 encoding (linear region)
    shifted = (magnitude >> (segment + 3)) & 0x0F
    high = (segment << 4) | shifted
    aval = np.where(magnitude < 256, low, high).astype(np.uint8)
    return aval ^ sign_mask


def alaw_decode(alaw):
    """Decode A-law bytes back to int16 PCM samples."""
    alaw = np.asarray(alaw, dtype=np.uint8).astype(np.int32)
    sign = np.where((alaw & 0x80) != 0, 1, -1)
    value = alaw ^ 0x55
    value &= 0x7F
    mantissa = (value & 0x0F) << 4
    segment = (value & 0x70) >> 4
    decoded = np.where(
        segment == 0,
        mantissa + 8,
        (mantissa + 0x108) << np.maximum(segment - 1, 0),
    )
    return (sign * decoded).astype(np.int16)


def codec_round_trip(pcm):
    """Encode + decode, returning the companded signal (float64)."""
    return alaw_decode(alaw_encode(pcm)).astype(np.float64)


def snr_db(reference, degraded):
    """Signal-to-noise ratio of ``degraded`` against ``reference``."""
    reference = np.asarray(reference, dtype=np.float64)
    degraded = np.asarray(degraded, dtype=np.float64)
    noise = reference - degraded
    signal_power = np.mean(reference ** 2)
    noise_power = np.mean(noise ** 2)
    if noise_power == 0:
        return float("inf")
    return 10.0 * np.log10(signal_power / noise_power)
