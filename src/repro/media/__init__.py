"""Signal-level media substrate.

* :mod:`repro.media.g711` — real G.711 A-law (PCMA) codec.
* :mod:`repro.media.speech` — synthetic 8 s speech-like test samples
  standing in for the ITU P.862 Annex A corpus.
* :mod:`repro.media.playout` — receiver playout (jitter) buffer with
  packet-loss concealment and signal reconstruction.
* :mod:`repro.media.video_source` — procedural video clips (interview /
  soccer / movie content classes).
* :mod:`repro.media.codec` — H.264-like slice codec with temporal error
  propagation and concealment.
* :mod:`repro.media.mpegts` — MPEG-2 TS packetization (188-byte cells,
  7 per RTP packet).
"""

from repro.media.g711 import alaw_decode, alaw_encode
from repro.media.playout import PlayoutBuffer, PlayoutResult
from repro.media.speech import SAMPLE_RATE, synthesize_speech

__all__ = [
    "alaw_encode",
    "alaw_decode",
    "PlayoutBuffer",
    "PlayoutResult",
    "SAMPLE_RATE",
    "synthesize_speech",
]
