"""Executable bodies of grid cells.

:func:`execute_task` runs one :class:`repro.runner.task.CellTask` and
returns a JSON-ready payload; :func:`revive` turns a payload (fresh or
cache-loaded) back into the value the study layer expects.  Everything
here is module-level and picklable so the grid runner can ship tasks to
worker processes.  Study-layer imports happen lazily inside the
executors to keep ``repro.runner`` import-light and cycle-free.

Cells run with the cyclic garbage collector paused: the sim core is
careful about reference cycles (packets are pooled, events are plain
lists) and gen-0 scans over a large live heap cost several percent of
every cell.  The pause cannot change results — collection timing has no
observable effect on the simulation — and collection happens naturally
once the payload is built.
"""

import gc
from dataclasses import asdict

# Canonical payload→JSON conversion lives in repro.results.convert;
# re-exported here because workers and older call sites import it from
# the execution module.
from repro.results.convert import jsonify


def queue_factory_for(discipline):
    """Map a discipline name to a ``capacity_packets -> Queue`` factory.

    ``"droptail"`` returns None so networks keep their default factory.
    """
    if discipline in (None, "droptail"):
        return None
    if discipline == "red":
        from repro.sim.queues import REDQueue

        return lambda capacity: REDQueue(capacity_packets=capacity)
    if discipline == "codel":
        from repro.sim.queues import CoDelQueue

        return lambda capacity: CoDelQueue(capacity_packets=capacity)
    raise ValueError("unknown queue discipline %r" % (discipline,))


# ---------------------------------------------------------------------------
# Per-kind executors: CellTask -> JSON-ready payload.
# ---------------------------------------------------------------------------
def _run_qos(task):
    from repro.core.experiment import run_qos_cell

    report = run_qos_cell(
        task.scenario, task.buffer_packets, warmup=task.warmup,
        duration=task.duration, seed=task.seed,
        queue_factory=queue_factory_for(task.discipline))
    return asdict(report)


def _run_voip(task):
    import numpy as np

    from repro.core.voip_study import median_mos, run_voip_cell

    params = task.params_dict
    directions = tuple(params.get("directions", ("talks", "listens")))
    scores = run_voip_cell(
        task.scenario, task.buffer_packets, calls=params.get("calls", 2),
        warmup=task.warmup, seed=task.seed, duration=task.duration,
        directions=directions,
        queue_factory=queue_factory_for(task.discipline))
    payload = {direction: median_mos(score_list)
               for direction, score_list in scores.items()}
    # Median mouth-to-ear delay (seconds) per direction: the AQM and
    # bufferbloat sweeps assert on the standing queue, not just MOS.
    payload["delay"] = {
        direction: (float(np.median([score.mouth_to_ear_delay
                                     for score in score_list]))
                    if score_list else 0.0)
        for direction, score_list in scores.items()}
    return payload


def _run_video(task):
    from repro.core.video_study import run_video_cell

    params = task.params_dict
    return run_video_cell(
        task.scenario, task.buffer_packets,
        resolution=params.get("resolution", "SD"),
        clip=params.get("clip", "C"), duration=task.duration,
        warmup=task.warmup, seed=task.seed, arq=params.get("arq", False),
        queue_factory=queue_factory_for(task.discipline))


def _run_web(task):
    from repro.core.web_study import run_web_cell

    params = task.params_dict
    return run_web_cell(
        task.scenario, task.buffer_packets,
        fetches=params.get("fetches", 10), warmup=task.warmup,
        seed=task.seed, queue_factory=queue_factory_for(task.discipline))


_EXECUTORS = {
    "qos": _run_qos,
    "voip": _run_voip,
    "video": _run_video,
    "web": _run_web,
}


def execute_task(task):
    """Run one cell simulation and return its JSON-ready payload."""
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        return jsonify(_EXECUTORS[task.kind](task))
    finally:
        if was_enabled:
            gc.enable()


# ---------------------------------------------------------------------------
# Revivers: payload -> the value the study layer consumes.
# ---------------------------------------------------------------------------
def revive(task, payload):
    """Rebuild the study-layer result object from a cell payload."""
    if task.kind == "qos":
        from repro.results.record import revive_qos

        return revive_qos(payload, task.buffer_packets)
    return payload
