"""Parallel grid execution with result caching and progress reporting.

The paper's artifacts are grids of independent (scenario x buffer x
seed) cells, so :class:`GridRunner` fans them out over a process pool.
Each cell builds its own :class:`repro.sim.engine.Simulator` and derives
all randomness from its task's seed, so results are bit-identical to a
serial run regardless of worker count or completion order.  Finished
cells land in a JSON cache keyed by task content hash; repeat runs skip
their simulations entirely.
"""

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed

from repro.runner.cache import ResultCache
from repro.runner.execute import execute_task, revive


def resolve_workers(workers=None):
    """Worker count: explicit arg > ``REPRO_WORKERS`` env > cpu count."""
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "")
        if env:
            try:
                workers = int(env)
            except ValueError:
                workers = None
        if workers is None:
            workers = os.cpu_count() or 1
    return max(1, int(workers))


def _progress_enabled_by_env():
    return os.environ.get("REPRO_PROGRESS", "0").lower() not in (
        "0", "", "false", "no", "off")


class GridRunner:
    """Run a list of :class:`repro.runner.task.CellTask` cells.

    Parameters
    ----------
    workers:
        Process count; None reads ``REPRO_WORKERS`` and falls back to
        ``os.cpu_count()``.  ``workers=1`` runs serially in-process (no
        pool), which keeps tracebacks and debuggers usable.
    cache:
        A :class:`repro.runner.cache.ResultCache`; None builds the
        default one.  Pass ``use_cache=False`` to disable caching.
    progress:
        Emit per-cell progress/ETA lines; None reads ``REPRO_PROGRESS``.
    """

    def __init__(self, workers=None, cache=None, use_cache=True,
                 progress=None, log=None):
        self.workers = resolve_workers(workers)
        self.cache = (cache or ResultCache()) if use_cache else None
        self.progress = (_progress_enabled_by_env() if progress is None
                         else progress)
        self._log = log or (lambda message: print(
            message, file=sys.stderr, flush=True))
        #: Statistics of the most recent :meth:`run` call.
        self.last_stats = {}

    # ------------------------------------------------------------------
    def run(self, tasks):
        """Execute every task; returns results aligned with ``tasks``."""
        tasks = list(tasks)
        payloads = [None] * len(tasks)

        pending = []
        for index, task in enumerate(tasks):
            payload = self.cache.get(task) if self._caching else None
            if payload is None:
                pending.append(index)
            else:
                payloads[index] = payload
        cached = len(tasks) - len(pending)

        self._say("running %d cells (%d cached) on %d worker%s" % (
            len(tasks), cached, self.workers,
            "" if self.workers == 1 else "s"))
        started = time.monotonic()
        if self.workers == 1 or len(pending) <= 1:
            for done, index in enumerate(pending, start=1):
                payloads[index] = execute_task(tasks[index])
                self._finish(tasks[index], payloads[index],
                             done, len(pending), started)
        elif pending:
            pool_size = min(self.workers, len(pending))
            failure = None
            done = 0
            with ProcessPoolExecutor(max_workers=pool_size) as pool:
                futures = {pool.submit(execute_task, tasks[index]): index
                           for index in pending}
                for future in as_completed(futures):
                    index = futures[future]
                    try:
                        payloads[index] = future.result()
                    except BaseException as exc:
                        # Keep draining so sibling cells that already
                        # finished still reach the cache; re-raise after.
                        if failure is None:
                            failure = exc
                        continue
                    done += 1
                    self._finish(tasks[index], payloads[index],
                                 done, len(pending), started)
            if failure is not None:
                raise failure

        self.last_stats = {
            "cells": len(tasks),
            "cached": cached,
            "computed": len(pending),
            "workers": self.workers,
            "elapsed": time.monotonic() - started,
        }
        return [revive(task, payload)
                for task, payload in zip(tasks, payloads)]

    # ------------------------------------------------------------------
    @property
    def _caching(self):
        return self.cache is not None and self.cache.enabled

    def _finish(self, task, payload, done, total, started):
        if self._caching:
            self.cache.put(task, payload)
        if done and total:
            elapsed = time.monotonic() - started
            eta = elapsed / done * (total - done)
            self._say("cell %d/%d done (%s) elapsed %.1fs eta %.1fs"
                      % (done, total, task.label, elapsed, eta))

    def _say(self, message):
        if self.progress:
            self._log("[gridrunner] " + message)
