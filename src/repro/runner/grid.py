"""Parallel grid execution with result caching and progress reporting.

The paper's artifacts are grids of independent (scenario x buffer x
seed) cells, so :class:`GridRunner` fans them out over a process pool.
Each cell builds its own :class:`repro.sim.engine.Simulator` and derives
all randomness from its task's seed, so results are bit-identical to a
serial run regardless of worker count or completion order.  Finished
cells land in a JSON cache keyed by task content hash; repeat runs skip
their simulations entirely.
"""

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed

from repro.results.record import record_from_payload
from repro.runner.cache import ResultCache
from repro.runner.execute import execute_task, revive


def resolve_workers(workers=None):
    """Worker count: explicit arg > ``REPRO_WORKERS`` env > cpu count."""
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "")
        if env:
            try:
                workers = int(env)
            except ValueError:
                workers = None
        if workers is None:
            workers = os.cpu_count() or 1
    return max(1, int(workers))


def _progress_enabled_by_env():
    return os.environ.get("REPRO_PROGRESS", "0").lower() not in (
        "0", "", "false", "no", "off")


class GridRunner:
    """Run a list of :class:`repro.runner.task.CellTask` cells.

    Parameters
    ----------
    workers:
        Process count; None reads ``REPRO_WORKERS`` and falls back to
        ``os.cpu_count()``.  ``workers=1`` runs serially in-process (no
        pool), which keeps tracebacks and debuggers usable.
    cache:
        A :class:`repro.runner.cache.ResultCache`; None builds the
        default one.  Pass ``use_cache=False`` to disable caching.
    progress:
        Emit per-cell progress/ETA lines; None reads ``REPRO_PROGRESS``.
    """

    def __init__(self, workers=None, cache=None, use_cache=True,
                 progress=None, log=None):
        self.workers = resolve_workers(workers)
        self.cache = (cache or ResultCache()) if use_cache else None
        self.progress = (_progress_enabled_by_env() if progress is None
                         else progress)
        self._log = log or (lambda message: print(
            message, file=sys.stderr, flush=True))
        #: Statistics of the most recent :meth:`run` call.
        self.last_stats = {}

    # ------------------------------------------------------------------
    def run(self, tasks):
        """Execute every task; returns results aligned with ``tasks``.

        A thin collector over :meth:`iter_run`'s payload stream: results
        are revived study-layer values (``QosReport`` for qos cells,
        payload dicts otherwise) in task order.
        """
        tasks = list(tasks)
        payloads = [None] * len(tasks)
        for index, payload in self._iter_payloads(tasks):
            payloads[index] = payload
        return [revive(task, payload)
                for task, payload in zip(tasks, payloads)]

    def iter_run(self, tasks, keys=None):
        """Yield ``(task, record)`` pairs as cells complete.

        Cache hits stream first (in task order), then computed cells in
        completion order — so incremental consumers (progress UIs,
        :class:`repro.results.set.StreamAggregator`) see results as soon
        as they exist, in constant memory.  Records are typed
        :mod:`repro.results.record` values; ``keys`` optionally supplies
        the sweep cell key stored on each record, aligned with
        ``tasks``.  Each record carries its task ``index``, so
        :meth:`repro.results.set.ResultSet.from_stream` reproduces batch
        :meth:`run` ordering exactly.

        Failure semantics match :meth:`run`: on a worker failure the
        remaining in-flight siblings are still drained (and yielded),
        then the first failure is re-raised; ``last_stats`` is populated
        (with ``failed=True``) either way.  ``last_stats`` is written
        when the stream is fully consumed.
        """
        tasks = list(tasks)
        for index, payload in self._iter_payloads(tasks):
            key = keys[index] if keys is not None else None
            yield tasks[index], record_from_payload(
                tasks[index], payload, key=key, index=index)

    def _iter_payloads(self, tasks):
        """Yield ``(task index, payload)`` as cells complete.

        Cache hits stream one at a time during the scan (nothing is
        buffered, so a warm million-cell grid aggregates in constant
        memory); pending cells follow from the pool or the serial path.
        """
        started = time.monotonic()
        pending = []
        cached = 0
        done = 0

        def stats(failed=False):
            self.last_stats = {
                "cells": len(tasks),
                "cached": cached,
                "computed": done if failed else len(pending),
                "workers": self.workers,
                "elapsed": time.monotonic() - started,
                "failed": failed,
            }

        try:
            for index, task in enumerate(tasks):
                payload = self.cache.get(task) if self._caching else None
                if payload is None:
                    pending.append(index)
                else:
                    cached += 1
                    yield index, payload
            self._say("running %d cells (%d cached) on %d worker%s" % (
                len(tasks), cached, self.workers,
                "" if self.workers == 1 else "s"))
            if self.workers == 1 or len(pending) <= 1:
                for index in pending:
                    payload = execute_task(tasks[index])
                    done += 1
                    self._finish(tasks[index], payload,
                                 done, len(pending), started)
                    yield index, payload
            elif pending:
                pool_size = min(self.workers, len(pending))
                failure = None
                with ProcessPoolExecutor(max_workers=pool_size) as pool:
                    futures = {pool.submit(execute_task, tasks[index]): index
                               for index in pending}
                    try:
                        for future in as_completed(futures):
                            index = futures[future]
                            try:
                                payload = future.result()
                            except BaseException as exc:
                                # Keep draining so sibling cells that
                                # already finished still reach the cache
                                # (and the consumer); re-raise after.
                                if failure is None:
                                    failure = exc
                                continue
                            done += 1
                            self._finish(tasks[index], payload,
                                         done, len(pending), started)
                            yield index, payload
                    except GeneratorExit:
                        # The consumer abandoned the stream mid-grid:
                        # drop every queued cell so pool shutdown only
                        # waits for the handful already running.
                        for future in futures:
                            future.cancel()
                        raise
                if failure is not None:
                    raise failure
        except GeneratorExit:
            # A deliberately abandoned stream is not a failure; leave
            # last_stats untouched (it reflects fully-consumed runs).
            raise
        except BaseException:
            # Populate the stats of the partial run before re-raising so
            # callers can still report cells/cached/computed/elapsed.
            stats(failed=True)
            raise
        stats()

    # ------------------------------------------------------------------
    @property
    def _caching(self):
        return self.cache is not None and self.cache.enabled

    def _finish(self, task, payload, done, total, started):
        if self._caching:
            self.cache.put(task, payload)
        if done and total:
            elapsed = time.monotonic() - started
            eta = elapsed / done * (total - done)
            self._say("cell %d/%d done (%s) elapsed %.1fs eta %.1fs"
                      % (done, total, task.label, elapsed, eta))

    def _say(self, message):
        if self.progress:
            self._log("[gridrunner] " + message)
