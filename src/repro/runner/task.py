"""Cell task descriptions for the grid runner.

A :class:`CellTask` is the declarative unit of work of every paper grid:
one (scenario, buffer size, seed) cell plus the measurement windows and
queue discipline that fully determine its result.  Tasks are frozen,
picklable (so they can cross a process-pool boundary) and carry a stable
content hash that keys the on-disk result cache.
"""

import hashlib
import json
from dataclasses import asdict, dataclass

#: Bump when the meaning of a cached payload changes incompatibly.
#: v2: voip payloads carry a per-direction "delay" entry (seconds).
CACHE_SCHEMA_VERSION = 2

#: Cell kinds understood by :mod:`repro.runner.execute`.
KINDS = ("qos", "voip", "video", "web")

#: Queue disciplines understood by :func:`repro.runner.execute.queue_factory_for`.
DISCIPLINES = ("droptail", "red", "codel")


def _jsonable(value):
    """Make hash inputs canonical: tuples become lists, recursively."""
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    return value


@dataclass(frozen=True)
class CellTask:
    """One grid cell: everything that determines one simulation's result.

    ``params`` holds kind-specific keyword arguments (e.g. ``calls`` and
    ``directions`` for VoIP cells) as a sorted item tuple so the task
    stays hashable; build tasks through :meth:`make`, which accepts them
    as plain keywords.  ``warmup``/``duration`` are simulated seconds;
    ``buffer_packets`` is a packet count (or a per-direction pair).
    """

    kind: str
    scenario: object  # repro.core.scenarios.Scenario
    buffer_packets: object  # packets: int, or a (down, up) tuple
    seed: int = 0
    warmup: float = 5.0  # seconds (simulated) before measurement
    duration: float = 20.0  # measurement window, seconds (simulated)
    discipline: str = "droptail"
    params: tuple = ()

    @classmethod
    def make(cls, kind, scenario, buffer_packets, seed=0, warmup=5.0,
             duration=20.0, discipline="droptail", **params):
        if kind not in KINDS:
            raise ValueError("unknown cell kind %r (have %s)" % (kind, KINDS))
        if discipline not in DISCIPLINES:
            raise ValueError("unknown discipline %r (have %s)"
                             % (discipline, DISCIPLINES))
        if isinstance(buffer_packets, list):
            buffer_packets = tuple(buffer_packets)
        if kind == "web":
            # Web cells run a fixed fetch count, not a measurement window;
            # normalize the unused knob so semantically identical cells
            # share one cache key.
            duration = 0.0
        return cls(kind=kind, scenario=scenario,
                   buffer_packets=buffer_packets, seed=seed, warmup=warmup,
                   duration=duration, discipline=discipline,
                   params=tuple(sorted(params.items())))

    @property
    def params_dict(self):
        return dict(self.params)

    @property
    def label(self):
        """Short human-readable cell label for progress lines."""
        return "%s %s buf=%s seed=%d" % (
            self.kind, self.scenario, self.buffer_packets, self.seed)

    def describe(self):
        """Stable JSON-ready description of the task (the hash input)."""
        return {
            "schema": CACHE_SCHEMA_VERSION,
            "kind": self.kind,
            "scenario": _jsonable(asdict(self.scenario)),
            "buffer_packets": _jsonable(self.buffer_packets),
            "seed": self.seed,
            "warmup": self.warmup,
            "duration": self.duration,
            "discipline": self.discipline,
            "params": _jsonable(self.params_dict),
        }

    def content_hash(self):
        """Hex digest identifying the task's full configuration."""
        blob = json.dumps(self.describe(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()
