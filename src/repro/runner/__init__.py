"""Parallel experiment runner with on-disk result caching.

The paper's figures and tables are grids of independent
(scenario x buffer size x seed) cells.  This package declares those
cells (:class:`CellTask`), executes them over a process pool with a
serial fallback (:class:`GridRunner`) and memoizes finished cells in a
JSON cache under ``.repro_cache/`` (:class:`ResultCache`) keyed by task
content hash plus a fingerprint of the package sources.

Knobs (environment variables):

* ``REPRO_WORKERS`` — worker process count (default: all cores).
* ``REPRO_CACHE`` — set to ``0`` to disable the result cache.
* ``REPRO_CACHE_DIR`` — cache directory (default ``.repro_cache``).
* ``REPRO_PROGRESS`` — set to ``1`` for per-cell progress/ETA lines.
"""

from repro.runner.cache import ResultCache, code_fingerprint
from repro.runner.execute import execute_task, revive
from repro.runner.grid import GridRunner, resolve_workers
from repro.runner.task import CellTask

__all__ = [
    "CellTask",
    "GridRunner",
    "ResultCache",
    "code_fingerprint",
    "execute_task",
    "resolve_workers",
    "revive",
]
