"""On-disk result cache for grid cells.

One JSON file per cell under ``.repro_cache/`` (override with the
``REPRO_CACHE_DIR`` env var; disable with ``REPRO_CACHE=0``).  The file
name is a digest of the task's content hash *and* a fingerprint of the
``repro`` package sources, so any code change — not just a task change —
invalidates stale results automatically.  Entries are written atomically
(temp file + rename); a corrupt or unreadable entry reads as a miss.
"""

import hashlib
import json
import os
import tempfile

DEFAULT_CACHE_DIR = ".repro_cache"

_FINGERPRINT = None


def code_fingerprint():
    """Digest of every ``.py`` file in the repro package (cached per process)."""
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                digest.update(os.path.relpath(path, root).encode("utf-8"))
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def cache_enabled_by_env():
    return os.environ.get("REPRO_CACHE", "1").lower() not in (
        "0", "false", "no", "off")


class ResultCache:
    """Maps :class:`repro.runner.task.CellTask` to cached result payloads."""

    def __init__(self, directory=None, enabled=None, fingerprint=None):
        if directory is None:
            directory = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        if enabled is None:
            enabled = cache_enabled_by_env()
        self.directory = directory
        self.enabled = enabled
        self._fingerprint = fingerprint

    @property
    def fingerprint(self):
        if self._fingerprint is None:
            self._fingerprint = code_fingerprint()
        return self._fingerprint

    def key(self, task):
        blob = "%s:%s" % (self.fingerprint, task.content_hash())
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def path(self, task):
        return os.path.join(self.directory, self.key(task) + ".json")

    def get(self, task):
        """Return the cached payload for ``task``, or None on a miss."""
        if not self.enabled:
            return None
        try:
            with open(self.path(task), "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        return entry.get("result")

    def put(self, task, payload):
        """Store ``payload`` (a JSON-ready dict) for ``task``."""
        if not self.enabled:
            return
        os.makedirs(self.directory, exist_ok=True)
        entry = {"task": task.describe(), "result": payload}
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=self.directory,
            suffix=".tmp", delete=False)
        try:
            with handle:
                json.dump(entry, handle)
            os.replace(handle.name, self.path(task))
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
